//! LS97-style replicated atomic register — the baseline of Table 1.
//!
//! The paper compares its storage-register costs against the classic
//! quorum-replicated register construction of Lynch & Shvartsman (FTCS
//! 1997), itself a multi-writer generalization of Attiya–Bar-Noy–Dolev.
//! This crate implements that baseline over the same simulated network so
//! the comparison is apples-to-apples:
//!
//! * **Write** (4δ): phase 1 queries a majority for the highest timestamp;
//!   phase 2 stores the value with a strictly larger timestamp at a
//!   majority.
//! * **Read** (4δ): phase 1 queries a majority for ⟨value, timestamp⟩;
//!   phase 2 *writes back* the newest value to a majority, so a later read
//!   can never observe an older value. The write-back is unconditional —
//!   LS97 has no fast single-round read, which is exactly the edge the
//!   FAB algorithm's optimistic read demonstrates in Table 1.
//!
//! The register replicates full values (m = 1): erasure coding is the FAB
//! algorithm's contribution, absent here. Partial writes are completed by
//! later reads (traditional linearizability), not rolled back — contrast
//! with the strict linearizability of `fab-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use bytes::Bytes;
use fab_simnet::{Actor, Context, SimConfig, SimTime, Simulation, TimerId, WireSize};
use fab_timestamp::{ProcessId, Timestamp, TimestampGenerator};
use std::collections::HashMap;

/// A replica-side stored value.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Stored {
    ts: Timestamp,
    value: Option<Bytes>,
}

/// Protocol messages for the replicated register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineMsg {
    /// Phase-1 read: request ⟨value, timestamp⟩.
    Query {
        /// Phase round for reply routing.
        round: u64,
    },
    /// Reply to [`BaselineMsg::Query`].
    QueryR {
        /// Echoed round.
        round: u64,
        /// Replica's stored timestamp.
        ts: Timestamp,
        /// Replica's stored value (`None` = never written).
        value: Option<Bytes>,
    },
    /// Phase-1 write: request the highest timestamp only.
    QueryTs {
        /// Phase round for reply routing.
        round: u64,
    },
    /// Reply to [`BaselineMsg::QueryTs`].
    QueryTsR {
        /// Echoed round.
        round: u64,
        /// Replica's stored timestamp.
        ts: Timestamp,
    },
    /// Phase-2 store (used by writes and read write-backs).
    Store {
        /// Phase round for reply routing.
        round: u64,
        /// Timestamp ordering this value.
        ts: Timestamp,
        /// The value to store.
        value: Option<Bytes>,
    },
    /// Acknowledgement of [`BaselineMsg::Store`].
    StoreR {
        /// Echoed round.
        round: u64,
    },
}

impl WireSize for BaselineMsg {
    fn wire_size(&self) -> usize {
        const HEADER: usize = 24;
        HEADER
            + match self {
                BaselineMsg::Query { .. } | BaselineMsg::QueryTs { .. } => 0,
                BaselineMsg::QueryR { value, .. } => 12 + value.as_ref().map_or(0, Bytes::len),
                BaselineMsg::QueryTsR { .. } => 12,
                BaselineMsg::Store { value, .. } => 12 + value.as_ref().map_or(0, Bytes::len),
                BaselineMsg::StoreR { .. } => 0,
            }
    }
}

/// Result of a baseline operation. The LS97 register never aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineResult {
    /// A read's value (`None` = register never written).
    Read(Option<Bytes>),
    /// A write completed.
    Written,
}

/// A finished baseline operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineCompletion {
    /// Operation identifier (per coordinator).
    pub op: u64,
    /// Outcome.
    pub result: BaselineResult,
    /// Invocation tick.
    pub invoked_at: u64,
    /// Completion tick.
    pub completed_at: u64,
}

#[derive(Debug, Clone)]
enum OpPhase {
    /// Read phase 1: collecting ⟨value, ts⟩.
    Query,
    /// Write phase 1: collecting ts.
    QueryTs,
    /// Phase 2: storing (result carried for completion).
    Store {
        /// The result to report when the store quorum acks.
        result: BaselineResult,
    },
}

#[derive(Debug)]
struct Op {
    id: u64,
    kind: OpKind,
    phase: OpPhase,
    round: u64,
    invoked_at: u64,
    acks: Vec<bool>,
    ack_count: usize,
    /// Highest ⟨ts, value⟩ seen in phase 1.
    best: Stored,
    retransmit: Option<TimerId>,
}

#[derive(Debug, Clone)]
enum OpKind {
    Read,
    Write { value: Bytes },
}

/// Disk-I/O counters for the baseline replica (same cost model as
/// `fab-core`: block reads/writes count, timestamps are NVRAM).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineDisk {
    /// Block reads served.
    pub reads: u64,
    /// Block writes applied.
    pub writes: u64,
}

/// One replicated-register node: replica state plus coordinator.
#[derive(Debug)]
pub struct BaselineNode {
    pid: ProcessId,
    n: usize,
    majority: usize,
    stored: Stored,
    ts_gen: TimestampGenerator,
    next_op: u64,
    next_round: u64,
    ops: HashMap<u64, Op>,
    rounds: HashMap<u64, u64>,
    retransmit_interval: u64,
    /// Completed operations awaiting harness pickup.
    pub completions: Vec<BaselineCompletion>,
    /// Disk-I/O counters.
    pub disk: BaselineDisk,
}

impl BaselineNode {
    /// Creates a node in a system of `n` replicas.
    pub fn new(pid: ProcessId, n: usize) -> Self {
        assert!(n >= 1, "need at least one replica");
        BaselineNode {
            pid,
            n,
            majority: n / 2 + 1,
            stored: Stored {
                ts: Timestamp::LOW,
                value: None,
            },
            ts_gen: TimestampGenerator::new(pid),
            next_op: 0,
            next_round: 0,
            ops: HashMap::new(),
            rounds: HashMap::new(),
            retransmit_interval: 200,
            completions: Vec::new(),
            disk: BaselineDisk::default(),
        }
    }

    /// The hosting process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Starts a read operation; returns its id.
    pub fn read(&mut self, ctx: &mut Context<'_, BaselineMsg>) -> u64 {
        self.start(ctx, OpKind::Read)
    }

    /// Starts a write operation; returns its id.
    pub fn write(&mut self, ctx: &mut Context<'_, BaselineMsg>, value: Bytes) -> u64 {
        self.start(ctx, OpKind::Write { value })
    }

    fn start(&mut self, ctx: &mut Context<'_, BaselineMsg>, kind: OpKind) -> u64 {
        self.next_op += 1;
        self.next_round += 1;
        let (id, round) = (self.next_op, self.next_round);
        let phase = match kind {
            OpKind::Read => OpPhase::Query,
            OpKind::Write { .. } => OpPhase::QueryTs,
        };
        let op = Op {
            id,
            kind,
            phase,
            round,
            invoked_at: ctx.now(),
            acks: vec![false; self.n],
            ack_count: 0,
            best: Stored {
                ts: Timestamp::LOW,
                value: None,
            },
            retransmit: None,
        };
        self.rounds.insert(round, id);
        self.ops.insert(id, op);
        self.broadcast(ctx, id, false);
        let t = ctx.set_timer(self.retransmit_interval);
        self.ops.get_mut(&id).expect("just inserted").retransmit = Some(t);
        id
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, BaselineMsg>, op_id: u64, missing_only: bool) {
        let op = &self.ops[&op_id];
        let msg = match &op.phase {
            OpPhase::Query => BaselineMsg::Query { round: op.round },
            OpPhase::QueryTs => BaselineMsg::QueryTs { round: op.round },
            OpPhase::Store { .. } => BaselineMsg::Store {
                round: op.round,
                ts: op.best.ts,
                value: op.best.value.clone(),
            },
        };
        let acks = op.acks.clone();
        for (i, acked) in acks.iter().enumerate() {
            if missing_only && *acked {
                continue;
            }
            ctx.send(ProcessId::new(i as u32), msg.clone());
        }
    }

    fn on_reply(
        &mut self,
        ctx: &mut Context<'_, BaselineMsg>,
        from: ProcessId,
        round: u64,
        ts: Option<Timestamp>,
        value: Option<Bytes>,
    ) {
        let Some(&op_id) = self.rounds.get(&round) else {
            return;
        };
        let op = self.ops.get_mut(&op_id).expect("live op");
        let i = from.index();
        if i >= op.acks.len() || op.acks[i] {
            return;
        }
        op.acks[i] = true;
        op.ack_count += 1;
        if let Some(ts) = ts {
            if ts > op.best.ts {
                op.best = Stored { ts, value };
            }
        }
        if op.ack_count < self.majority {
            return;
        }
        // Phase complete.
        match op.phase.clone() {
            OpPhase::Query => {
                // Read phase 2: write back the newest value (completing any
                // partial write it may represent — LS97 semantics).
                let result = BaselineResult::Read(op.best.value.clone());
                self.advance(ctx, op_id, OpPhase::Store { result });
            }
            OpPhase::QueryTs => {
                let OpKind::Write { value } = op.kind.clone() else {
                    unreachable!("QueryTs only runs for writes")
                };
                self.ts_gen.observe(op.best.ts);
                let ts = self.ts_gen.next(ctx.now());
                let op = self.ops.get_mut(&op_id).expect("live op");
                op.best = Stored {
                    ts,
                    value: Some(value),
                };
                self.advance(
                    ctx,
                    op_id,
                    OpPhase::Store {
                        result: BaselineResult::Written,
                    },
                );
            }
            OpPhase::Store { result } => {
                let op = self.ops.remove(&op_id).expect("live op");
                self.rounds.remove(&op.round);
                if let Some(t) = op.retransmit {
                    ctx.cancel_timer(t);
                }
                self.completions.push(BaselineCompletion {
                    op: op.id,
                    result,
                    invoked_at: op.invoked_at,
                    completed_at: ctx.now(),
                });
            }
        }
    }

    fn advance(&mut self, ctx: &mut Context<'_, BaselineMsg>, op_id: u64, phase: OpPhase) {
        self.next_round += 1;
        let round = self.next_round;
        let op = self.ops.get_mut(&op_id).expect("live op");
        self.rounds.remove(&op.round);
        self.rounds.insert(round, op_id);
        op.round = round;
        op.phase = phase;
        op.acks = vec![false; self.n];
        op.ack_count = 0;
        self.broadcast(ctx, op_id, false);
    }
}

impl Actor for BaselineNode {
    type Msg = BaselineMsg;

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, BaselineMsg>,
        from: ProcessId,
        msg: BaselineMsg,
    ) {
        match msg {
            BaselineMsg::Query { round } => {
                if self.stored.value.is_some() {
                    self.disk.reads += 1;
                }
                let reply = BaselineMsg::QueryR {
                    round,
                    ts: self.stored.ts,
                    value: self.stored.value.clone(),
                };
                ctx.send(from, reply);
            }
            BaselineMsg::QueryTs { round } => {
                let reply = BaselineMsg::QueryTsR {
                    round,
                    ts: self.stored.ts,
                };
                ctx.send(from, reply);
            }
            BaselineMsg::Store { round, ts, value } => {
                if ts > self.stored.ts {
                    if value.is_some() {
                        self.disk.writes += 1;
                    }
                    self.stored = Stored { ts, value };
                }
                ctx.send(from, BaselineMsg::StoreR { round });
            }
            BaselineMsg::QueryR { round, ts, value } => {
                self.on_reply(ctx, from, round, Some(ts), value);
            }
            BaselineMsg::QueryTsR { round, ts } => self.on_reply(ctx, from, round, Some(ts), None),
            BaselineMsg::StoreR { round } => self.on_reply(ctx, from, round, None, None),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>, _timer: TimerId) {
        // Retransmit every in-flight phase to silent replicas.
        let ids: Vec<u64> = self.ops.keys().copied().collect();
        for id in ids {
            self.broadcast(ctx, id, true);
            let t = ctx.set_timer(self.retransmit_interval);
            self.ops.get_mut(&id).expect("live op").retransmit = Some(t);
        }
    }

    fn on_crash(&mut self) {
        // Stored value is persistent; coordinator state is volatile.
        self.ops.clear();
        self.rounds.clear();
        self.completions.clear();
    }
}

/// Measured costs of one baseline operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineCosts {
    /// Virtual-time latency.
    pub latency: u64,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Disk block reads.
    pub disk_reads: u64,
    /// Disk block writes.
    pub disk_writes: u64,
}

/// A simulated LS97 replicated-register cluster with synchronous helpers
/// (mirror of `fab_core::SimCluster` for the baseline).
#[derive(Debug)]
pub struct BaselineCluster {
    sim: Simulation<BaselineNode>,
    n: usize,
    /// Deadline for synchronous helpers.
    pub op_deadline: SimTime,
}

impl BaselineCluster {
    /// Builds a cluster of `n` replicas.
    pub fn new(n: usize, sim_config: SimConfig) -> Self {
        let nodes = (0..n)
            .map(|i| BaselineNode::new(ProcessId::new(i as u32), n))
            .collect();
        BaselineCluster {
            sim: Simulation::new(sim_config, nodes),
            n,
            op_deadline: 10_000_000,
        }
    }

    /// The underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<BaselineNode> {
        &mut self.sim
    }

    /// The underlying simulation (read-only).
    pub fn sim(&self) -> &Simulation<BaselineNode> {
        &self.sim
    }

    /// Total disk I/O across replicas.
    pub fn disk(&self) -> BaselineDisk {
        let mut d = BaselineDisk::default();
        for (_, node) in self.sim.actors() {
            d.reads += node.disk.reads;
            d.writes += node.disk.writes;
        }
        d
    }

    fn run_op<F>(&mut self, coordinator: ProcessId, invoke: F) -> BaselineCompletion
    where
        F: FnOnce(&mut BaselineNode, &mut Context<'_, BaselineMsg>) + 'static,
    {
        let already = self.sim.actor(coordinator).completions.len();
        let at = self.sim.now();
        self.sim.schedule_call(at, coordinator, invoke);
        let deadline = self.sim.now() + self.op_deadline;
        let done = self.sim.run_until_actor(coordinator, deadline, |node| {
            node.completions.len() > already
        });
        assert!(done, "baseline operation did not complete by the deadline");
        self.sim.actor_mut(coordinator).completions.remove(already)
    }

    /// Runs a read to completion via `coordinator`.
    pub fn read(&mut self, coordinator: ProcessId) -> BaselineResult {
        self.run_op(coordinator, |node, ctx| {
            node.read(ctx);
        })
        .result
    }

    /// Runs a write to completion via `coordinator`.
    pub fn write(&mut self, coordinator: ProcessId, value: Bytes) -> BaselineResult {
        self.run_op(coordinator, move |node, ctx| {
            node.write(ctx, value);
        })
        .result
    }

    /// Runs an operation and attributes latency / messages / bytes /
    /// disk I/O to it (the LS97 column of Table 1).
    pub fn measure<F>(
        &mut self,
        coordinator: ProcessId,
        invoke: F,
    ) -> (BaselineCompletion, BaselineCosts)
    where
        F: FnOnce(&mut BaselineNode, &mut Context<'_, BaselineMsg>) + 'static,
    {
        let net0 = self.sim.metrics();
        let disk0 = self.disk();
        let completion = self.run_op(coordinator, invoke);
        self.sim.run_until_idle();
        let net = self.sim.metrics().since(&net0);
        let disk = self.disk();
        let costs = BaselineCosts {
            latency: completion.completed_at - completion.invoked_at,
            messages: net.messages_sent,
            bytes: net.bytes_sent,
            disk_reads: disk.reads - disk0.reads,
            disk_writes: disk.writes - disk0.writes,
        };
        (completion, costs)
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fresh_register_reads_none() {
        let mut c = BaselineCluster::new(3, SimConfig::ideal(1));
        assert_eq!(c.read(pid(0)), BaselineResult::Read(None));
    }

    #[test]
    fn write_then_read() {
        let mut c = BaselineCluster::new(3, SimConfig::ideal(2));
        assert_eq!(
            c.write(pid(0), Bytes::from_static(b"hello")),
            BaselineResult::Written
        );
        assert_eq!(
            c.read(pid(2)),
            BaselineResult::Read(Some(Bytes::from_static(b"hello")))
        );
    }

    #[test]
    fn successive_writes_from_different_nodes_order() {
        let mut c = BaselineCluster::new(5, SimConfig::ideal(3));
        for i in 0..10u8 {
            let v = Bytes::from(vec![i; 8]);
            c.write(pid(u32::from(i % 5)), v.clone());
            assert_eq!(
                c.read(pid(u32::from((i + 1) % 5))),
                BaselineResult::Read(Some(v))
            );
        }
    }

    #[test]
    fn read_and_write_are_both_two_phases() {
        let mut c = BaselineCluster::new(4, SimConfig::ideal(4));
        c.write(pid(0), Bytes::from_static(b"x"));
        let (done, costs) = c.measure(pid(1), |n, ctx| {
            n.read(ctx);
        });
        assert!(matches!(done.result, BaselineResult::Read(Some(_))));
        assert_eq!(costs.latency, 4, "LS97 read = 4 delta (no fast path)");
        assert_eq!(costs.messages, 16, "4n messages for n=4");
        let (_, costs) = c.measure(pid(2), |n, ctx| {
            n.write(ctx, Bytes::from_static(b"y"));
        });
        assert_eq!(costs.latency, 4, "LS97 write = 4 delta");
        assert_eq!(costs.messages, 16);
    }

    #[test]
    fn tolerates_minority_crashes() {
        let mut c = BaselineCluster::new(5, SimConfig::ideal(5));
        c.write(pid(0), Bytes::from_static(b"v1"));
        let at = c.sim().now();
        c.sim_mut().schedule_crash(at, pid(3));
        c.sim_mut().schedule_crash(at, pid(4));
        c.sim_mut().run_until(at + 1);
        assert_eq!(
            c.read(pid(0)),
            BaselineResult::Read(Some(Bytes::from_static(b"v1")))
        );
        assert_eq!(
            c.write(pid(1), Bytes::from_static(b"v2")),
            BaselineResult::Written
        );
        assert_eq!(
            c.read(pid(2)),
            BaselineResult::Read(Some(Bytes::from_static(b"v2")))
        );
    }

    #[test]
    fn works_under_harsh_network() {
        let mut c = BaselineCluster::new(3, SimConfig::harsh(6));
        for i in 0..5u8 {
            let v = Bytes::from(vec![i; 4]);
            assert_eq!(
                c.write(pid(u32::from(i % 3)), v.clone()),
                BaselineResult::Written
            );
            assert_eq!(
                c.read(pid(u32::from((i + 2) % 3))),
                BaselineResult::Read(Some(v))
            );
        }
    }

    #[test]
    fn reads_agree_after_partial_write() {
        // Start a write that reaches only the writer, crash the writer,
        // then show two successive reads agree (LS97 write-back semantics).
        let mut c = BaselineCluster::new(3, SimConfig::ideal(7));
        c.write(pid(0), Bytes::from_static(b"old"));
        let at = c.sim().now();
        c.sim_mut()
            .schedule_partition(at, &[&[pid(0)], &[pid(1), pid(2)]]);
        c.sim_mut().schedule_call(at + 1, pid(0), |n, ctx| {
            n.write(ctx, Bytes::from_static(b"new"));
        });
        c.sim_mut().run_until(at + 500);
        c.sim_mut().schedule_crash(at + 500, pid(0));
        c.sim_mut().schedule_heal(at + 501);
        c.sim_mut().schedule_recovery(at + 502, pid(0));
        c.sim_mut().run_until(at + 503);
        let r1 = c.read(pid(1));
        let r2 = c.read(pid(2));
        assert_eq!(r1, r2, "successive reads agree after write-back");
    }

    #[test]
    fn wire_sizes_count_values() {
        let q = BaselineMsg::Query { round: 1 };
        let big = BaselineMsg::Store {
            round: 1,
            ts: Timestamp::from_parts(1, pid(0)),
            value: Some(Bytes::from(vec![0u8; 512])),
        };
        assert!(big.wire_size() > q.wire_size() + 500);
    }

    #[test]
    fn disk_costs_match_table1_model() {
        let mut c = BaselineCluster::new(4, SimConfig::ideal(8));
        c.write(pid(0), Bytes::from(vec![1u8; 64]));
        // Write: 0 disk reads (ts query is NVRAM), n disk writes.
        let (_, costs) = c.measure(pid(1), |n, ctx| {
            n.write(ctx, Bytes::from(vec![2u8; 64]));
        });
        assert_eq!(costs.disk_reads, 0);
        assert_eq!(costs.disk_writes, 4);
        // Read: n disk reads; Table 1 charges n write-back writes (our
        // replica skips redundant same-ts stores, so assert <= n).
        let (_, costs) = c.measure(pid(2), |n, ctx| {
            n.read(ctx);
        });
        assert_eq!(costs.disk_reads, 4);
        assert!(costs.disk_writes <= 4);
    }
}
