//! Criterion benches for the erasure-coding substrate (Figure 4's
//! primitives): encode/decode/modify throughput across code families and
//! block sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fab_erasure::{Codec, Share};

fn stripe(m: usize, len: usize) -> Vec<Vec<u8>> {
    (0..m)
        .map(|i| (0..len).map(|k| (i * 131 + k * 7) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for (m, n) in [(1usize, 3usize), (3, 4), (5, 8), (10, 14)] {
        for size in [4096usize, 65536] {
            let codec = Codec::new(m, n).unwrap();
            let data = stripe(m, size);
            group.throughput(Throughput::Bytes((m * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{m}-of-{n}"), size),
                &size,
                |b, _| b.iter(|| codec.encode(&data).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    for (m, n) in [(3usize, 4usize), (5, 8), (10, 14)] {
        let size = 65536usize;
        let codec = Codec::new(m, n).unwrap();
        let data = stripe(m, size);
        let blocks = codec.encode(&data).unwrap();
        // Worst case: decode entirely from the tail (parity-heavy) shares.
        let parity_shares: Vec<Share<'_>> = (n - m..n)
            .map(|i| Share::new(i, blocks[i].as_slice()))
            .collect();
        group.throughput(Throughput::Bytes((m * size) as u64));
        group.bench_function(BenchmarkId::new(format!("{m}-of-{n}"), "parity"), |b| {
            b.iter(|| codec.decode(&parity_shares).unwrap())
        });
        // Best case: all data shares present (systematic fast path).
        let data_shares: Vec<Share<'_>> = (0..m)
            .map(|i| Share::new(i, blocks[i].as_slice()))
            .collect();
        group.bench_function(BenchmarkId::new(format!("{m}-of-{n}"), "systematic"), |b| {
            b.iter(|| codec.decode(&data_shares).unwrap())
        });
    }
    group.finish();
}

fn bench_modify(c: &mut Criterion) {
    let mut group = c.benchmark_group("modify");
    let (m, n, size) = (5usize, 8usize, 65536usize);
    let codec = Codec::new(m, n).unwrap();
    let data = stripe(m, size);
    let blocks = codec.encode(&data).unwrap();
    let new_block = vec![0xA5u8; size];
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("incremental modify_{0,5}", |b| {
        b.iter(|| {
            codec
                .modify(0, 5, &data[0], &new_block, &blocks[5])
                .unwrap()
        })
    });
    group.bench_function("coded_delta", |b| {
        b.iter(|| codec.coded_delta(0, 5, &data[0], &new_block).unwrap())
    });
    // The alternative the paper's modify primitive avoids: re-encoding the
    // whole stripe.
    group.bench_function("full re-encode (baseline)", |b| {
        b.iter(|| {
            let mut d = data.clone();
            d[0] = new_block.clone();
            codec.encode(&d).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_modify);
criterion_main!(benches);
