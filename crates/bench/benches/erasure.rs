//! Criterion benches for the erasure-coding substrate (Figure 4's
//! primitives): encode/decode/modify throughput across code families and
//! block sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fab_erasure::kernel::{mul_acc, mul_slice, set_kernel_override, simd_available, xor_slice};
use fab_erasure::{Codec, Gf256, Kernel, Share};

fn stripe(m: usize, len: usize) -> Vec<Vec<u8>> {
    (0..m)
        .map(|i| (0..len).map(|k| (i * 131 + k * 7) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for (m, n) in [(1usize, 3usize), (3, 4), (5, 8), (10, 14)] {
        for size in [4096usize, 65536] {
            let codec = Codec::new(m, n).unwrap();
            let data = stripe(m, size);
            group.throughput(Throughput::Bytes((m * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{m}-of-{n}"), size),
                &size,
                |b, _| b.iter(|| codec.encode(&data).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    for (m, n) in [(3usize, 4usize), (5, 8), (10, 14)] {
        let size = 65536usize;
        let codec = Codec::new(m, n).unwrap();
        let data = stripe(m, size);
        let blocks = codec.encode(&data).unwrap();
        // Worst case: decode entirely from the tail (parity-heavy) shares.
        let parity_shares: Vec<Share<'_>> = (n - m..n)
            .map(|i| Share::new(i, blocks[i].as_slice()))
            .collect();
        group.throughput(Throughput::Bytes((m * size) as u64));
        group.bench_function(BenchmarkId::new(format!("{m}-of-{n}"), "parity"), |b| {
            b.iter(|| codec.decode(&parity_shares).unwrap());
        });
        // Best case: all data shares present (systematic fast path).
        let data_shares: Vec<Share<'_>> = (0..m)
            .map(|i| Share::new(i, blocks[i].as_slice()))
            .collect();
        group.bench_function(BenchmarkId::new(format!("{m}-of-{n}"), "systematic"), |b| {
            b.iter(|| codec.decode(&data_shares).unwrap());
        });
    }
    group.finish();
}

fn bench_modify(c: &mut Criterion) {
    let mut group = c.benchmark_group("modify");
    let (m, n, size) = (5usize, 8usize, 65536usize);
    let codec = Codec::new(m, n).unwrap();
    let data = stripe(m, size);
    let blocks = codec.encode(&data).unwrap();
    let new_block = vec![0xA5u8; size];
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("incremental modify_{0,5}", |b| {
        b.iter(|| {
            codec
                .modify(0, 5, &data[0], &new_block, &blocks[5])
                .unwrap()
        });
    });
    group.bench_function("coded_delta", |b| {
        b.iter(|| codec.coded_delta(0, 5, &data[0], &new_block).unwrap());
    });
    // The alternative the paper's modify primitive avoids: re-encoding the
    // whole stripe.
    group.bench_function("full re-encode (baseline)", |b| {
        b.iter(|| {
            let mut d = data.clone();
            d[0] = new_block.clone();
            codec.encode(&d).unwrap()
        });
    });
    group.finish();
}

/// The kernel tiers worth measuring on this machine: the scalar reference,
/// the branch-free full-table path, and (when the CPU has it) the SIMD
/// nibble-shuffle path.
fn kernel_tiers() -> Vec<Kernel> {
    let mut tiers = vec![Kernel::Scalar, Kernel::Table];
    if simd_available() {
        tiers.push(Kernel::Simd);
    }
    tiers
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let coeff = Gf256::new(0x8E); // arbitrary non-trivial field element
    for size in [1usize << 10, 1 << 14, 1 << 17, 1 << 20] {
        let src: Vec<u8> = (0..size).map(|k| (k * 31 + 7) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        for kernel in kernel_tiers() {
            set_kernel_override(Some(kernel));
            let tag = format!("{kernel:?}").to_lowercase();
            let mut acc = vec![0u8; size];
            group.bench_with_input(
                BenchmarkId::new(format!("mul_acc/{tag}"), size),
                &size,
                |b, _| b.iter(|| mul_acc(&mut acc, &src, coeff)),
            );
            let mut buf = src.clone();
            group.bench_with_input(
                BenchmarkId::new(format!("mul_slice/{tag}"), size),
                &size,
                |b, _| b.iter(|| mul_slice(&mut buf, coeff)),
            );
        }
        set_kernel_override(None);
        let mut dst = vec![0u8; size];
        group.bench_with_input(BenchmarkId::new("xor_slice", size), &size, |b, _| {
            b.iter(|| xor_slice(&mut dst, &src));
        });
    }
    set_kernel_override(None);
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_modify, bench_kernels);
criterion_main!(benches);
