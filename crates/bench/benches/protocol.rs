//! Criterion benches of the storage-register protocol itself: wall-clock
//! cost of simulated operations (fast vs recovery paths, ours vs LS97) and
//! real-thread operation latency on the runtime cluster.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fab_baseline::BaselineCluster;
use fab_core::{GcPolicy, RegisterConfig, SimCluster, StripeId};
use fab_runtime::RuntimeCluster;
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;

fn blocks(m: usize, seed: u8, size: usize) -> Vec<Bytes> {
    (0..m)
        .map(|i| Bytes::from(vec![seed.wrapping_add(i as u8); size]))
        .collect()
}

fn pid(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Simulated end-to-end operations: measures harness + protocol CPU cost
/// per op (virtual latency is covered by table1_costs).
fn bench_sim_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_ops");
    for (m, n) in [(2usize, 4usize), (5, 8)] {
        let size = 1024;
        let label = format!("{m}-of-{n}");
        group.bench_function(BenchmarkId::new("write_stripe", &label), |b| {
            let cfg = RegisterConfig::new(m, n, size).unwrap();
            let mut cluster = SimCluster::new(cfg, SimConfig::ideal(1));
            let mut i = 0u8;
            b.iter(|| {
                i = i.wrapping_add(1);
                cluster.write_stripe(pid(0), StripeId(0), blocks(m, i, size))
            });
        });
        group.bench_function(BenchmarkId::new("read_stripe_fast", &label), |b| {
            let cfg = RegisterConfig::new(m, n, size).unwrap();
            let mut cluster = SimCluster::new(cfg, SimConfig::ideal(2));
            cluster.write_stripe(pid(0), StripeId(0), blocks(m, 1, size));
            b.iter(|| cluster.read_stripe(pid(1), StripeId(0)));
        });
        group.bench_function(BenchmarkId::new("write_block_fast", &label), |b| {
            let cfg = RegisterConfig::new(m, n, size)
                .unwrap()
                .with_gc(GcPolicy::Disabled);
            let mut cluster = SimCluster::new(cfg, SimConfig::ideal(3));
            cluster.write_stripe(pid(0), StripeId(0), blocks(m, 1, size));
            let mut i = 0u8;
            b.iter(|| {
                i = i.wrapping_add(1);
                cluster.write_block(pid(1), StripeId(0), 0, Bytes::from(vec![i; size]))
            });
        });
    }
    group.finish();
}

/// LS97 baseline under the same harness, for a like-for-like CPU-cost
/// comparison.
fn bench_baseline_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ls97_ops");
    for n in [4usize, 8] {
        group.bench_function(BenchmarkId::new("write", n), |b| {
            let mut cluster = BaselineCluster::new(n, SimConfig::ideal(4));
            let mut i = 0u8;
            b.iter(|| {
                i = i.wrapping_add(1);
                cluster.write(pid(0), Bytes::from(vec![i; 1024]))
            });
        });
        group.bench_function(BenchmarkId::new("read", n), |b| {
            let mut cluster = BaselineCluster::new(n, SimConfig::ideal(5));
            cluster.write(pid(0), Bytes::from(vec![7u8; 1024]));
            b.iter(|| cluster.read(pid(1)));
        });
    }
    group.finish();
}

/// Real-thread latency on the runtime cluster (microseconds of actual
/// channel round trips).
fn bench_runtime_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_ops");
    group.sample_size(30);
    let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 1024).unwrap());
    let mut client = cluster.client();
    client
        .write_stripe(StripeId(0), blocks(2, 1, 1024))
        .unwrap();
    group.bench_function("read_stripe_threads_2of4", |b| {
        b.iter(|| client.read_stripe(StripeId(0)).unwrap());
    });
    group.bench_function("write_stripe_threads_2of4", |b| {
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            client
                .write_stripe(StripeId(0), blocks(2, i, 1024))
                .unwrap()
        });
    });
    group.finish();
    cluster.shutdown();
}

criterion_group!(
    benches,
    bench_sim_ops,
    bench_baseline_ops,
    bench_runtime_ops
);
criterion_main!(benches);
