//! Criterion benches for the reliability models: full Figure-2 / Figure-3
//! sweep cost (these are analytic, so this mostly guards against
//! accidental complexity blow-ups in the Markov solver).

use criterion::{criterion_group, criterion_main, Criterion};
use fab_reliability::{
    declustered_mttdl_hours, figure2, figure3, BrickParams, InternalLayout, Scheme, SystemDesign,
};

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figure2_full_sweep", |b| {
        let caps: Vec<f64> = (0..=30).map(|i| 10f64.powf(f64::from(i) / 10.0)).collect();
        b.iter(|| figure2(&caps));
    });
    c.bench_function("figure3_full_sweep", |b| b.iter(|| figure3(256.0, 7, 13)));
}

fn bench_models(c: &mut Criterion) {
    c.bench_function("markov_hitting_time", |b| {
        b.iter(|| declustered_mttdl_hours(16, 7, 5e5, 24.0));
    });
    c.bench_function("system_design_mttdl", |b| {
        let d = SystemDesign {
            scheme: Scheme::ErasureCode { m: 5, n: 8 },
            brick: BrickParams::commodity(),
            layout: InternalLayout::Raid5,
        };
        b.iter(|| d.mttdl_years(256.0));
    });
}

criterion_group!(benches, bench_figures, bench_models);
criterion_main!(benches);
