//! Criterion benches for the volume layer: byte-range I/O cost over the
//! simulated cluster, and the linear-vs-interleaved layout trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fab_core::{RegisterConfig, SimCluster};
use fab_simnet::SimConfig;
use fab_volume::{Layout, SimClient, Volume, VolumeGeometry};

fn volume(layout: Layout) -> Volume<SimClient> {
    let (m, bs, stripes) = (5usize, 1024usize, 64u64);
    let cfg = RegisterConfig::new(m, 8, bs).unwrap();
    let cluster = SimCluster::new(cfg, SimConfig::ideal(8));
    Volume::new(
        SimClient::new(cluster),
        VolumeGeometry::new(stripes, m, bs, layout),
    )
}

fn bench_volume_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("volume_io");
    for layout in [Layout::Linear, Layout::Interleaved] {
        let label = format!("{layout:?}");
        group.throughput(Throughput::Bytes(8 * 1024));
        group.bench_function(BenchmarkId::new("write_8k", &label), |b| {
            let mut v = volume(layout);
            let data = vec![0x5Au8; 8 * 1024];
            let mut off = 0u64;
            b.iter(|| {
                v.write(off % 40_960, &data).unwrap();
                off += 8 * 1024;
            });
        });
        group.bench_function(BenchmarkId::new("read_8k", &label), |b| {
            let mut v = volume(layout);
            v.write(0, &vec![1u8; 40_960]).unwrap();
            let mut off = 0u64;
            b.iter(|| {
                let out = v.read(off % 32_768, 8 * 1024).unwrap();
                off += 8 * 1024;
                out
            });
        });
    }
    // Sub-block read-modify-write cost.
    group.throughput(Throughput::Bytes(64));
    group.bench_function("sub_block_write_64B", |b| {
        let mut v = volume(Layout::Interleaved);
        let data = vec![0xEEu8; 64];
        let mut off = 100u64;
        b.iter(|| {
            v.write(off % 40_000, &data).unwrap();
            off += 512;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_volume_io);
criterion_main!(benches);
