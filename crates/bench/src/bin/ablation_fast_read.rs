//! Ablation of the optimistic single-round read (§4.1.2's "pleasant side
//! effect"): the same workloads with the fast path enabled vs disabled.
//!
//! Run: `cargo run -p fab-bench --bin ablation_fast_read`

use bytes::Bytes;
use fab_core::{GcPolicy, OpResult, RegisterConfig, SimCluster, StripeId};
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;

fn blocks(m: usize, seed: u8, size: usize) -> Vec<Bytes> {
    (0..m)
        .map(|i| Bytes::from(vec![seed.wrapping_add(i as u8); size]))
        .collect()
}

fn measure(fast: bool) -> (u64, u64, u64, u64) {
    let (m, n, size) = (5usize, 8usize, 1024usize);
    let cfg = RegisterConfig::new(m, n, size)
        .unwrap()
        .with_gc(GcPolicy::Disabled)
        .with_fast_read(fast);
    let mut c = SimCluster::new(cfg, SimConfig::ideal(3));
    let s = StripeId(0);
    c.write_stripe(ProcessId::new(0), s, blocks(m, 1, size));
    let (done, costs) = c.measure_op(ProcessId::new(1), move |b, ctx| {
        b.read_stripe(ctx, s);
    });
    assert!(matches!(done.result, OpResult::Stripe(_)));
    (
        costs.latency,
        costs.messages,
        costs.disk_reads,
        costs.disk_writes,
    )
}

fn main() {
    println!("Fast-read ablation — quiescent stripe read on 5-of-8, B = 1 KiB\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "configuration", "latency(δ)", "#messages", "disk reads", "disk writes"
    );
    println!("{}", "-".repeat(74));
    let (l1, m1, r1, w1) = measure(true);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "fast read (paper)", l1, m1, r1, w1
    );
    let (l2, m2, r2, w2) = measure(false);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "always-recover", l2, m2, r2, w2
    );
    println!(
        "\nThe optimistic read is {}x lower latency, {}x fewer messages, and",
        l2 / l1,
        m2 / m1
    );
    println!(
        "replaces {r2} disk reads + {w2} disk WRITES with {r1} reads and none —"
    );
    println!("without it, every read performs a write-back like LS97 (Table 1).");
}
