//! Ablation of the §5.2 write optimizations: how the three `Modify`
//! dissemination strategies change block-write network cost.
//!
//! * `Paper` — pseudocode behavior: old+new block to all n processes,
//! * `Targeted` — §5.2(a): blocks only to p_j and the parity processes,
//! * `Delta` — §5.2(b): one pre-coded delta block per parity process.
//!
//! Run: `cargo run -p fab-bench --bin ablation_write_strategies`

use fab_bench::table1::measure_ours;
use fab_core::WriteStrategy;

fn main() {
    let (m, n, block_size) = (5, 8, 4096);
    println!("Write-strategy ablation — block write/F on {m}-of-{n}, B = {block_size} bytes\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>12}",
        "strategy", "latency(δ)", "#messages", "net bytes", "bytes/B"
    );
    println!("{}", "-".repeat(64));
    let mut baseline_bytes = None;
    for (name, strategy) in [
        ("Paper", WriteStrategy::Paper),
        ("Targeted", WriteStrategy::Targeted),
        ("Delta", WriteStrategy::Delta),
    ] {
        let rows = measure_ours(m, n, block_size, strategy);
        let row = rows
            .iter()
            .find(|r| r.label == "block write/F")
            .expect("block write/F row");
        let bytes = row.measured.bytes;
        let saved = baseline_bytes
            .map(|b: u64| format!("  ({:.0}% of Paper)", 100.0 * bytes as f64 / b as f64))
            .unwrap_or_default();
        baseline_bytes.get_or_insert(bytes);
        println!(
            "{:<10} {:>12} {:>12} {:>14} {:>12.2}{saved}",
            name,
            row.measured.latency,
            row.measured.messages,
            bytes,
            bytes as f64 / block_size as f64,
        );
    }
    println!("\nAll strategies keep the same latency and message count; the paper's");
    println!("(2n+1)B block-write bandwidth drops to ~(k+2)B with coded deltas (§5.2(b)).");
}
