//! Abort-rate study backing the §3 discussion: operations abort only under
//! genuinely concurrent conflicting access to one stripe (or clock skew),
//! and interleaved data layout makes that rare.
//!
//! Run: `cargo run -p fab-bench --bin abort_rates`

use fab_bench::workload::{drive_concurrent, generate, WorkloadSpec};
use fab_core::{RegisterConfig, SimCluster};
use fab_simnet::SimConfig;

fn run(stripes: u64, read_fraction: f64, concurrency: usize, skews: Option<&[i64]>) -> (f64, f64) {
    let (m, n, bs) = (5, 8, 512);
    let cfg = RegisterConfig::new(m, n, bs).unwrap();
    let mut cluster = match skews {
        Some(skews) => SimCluster::with_skews(cfg, SimConfig::ideal(7), skews),
        None => SimCluster::new(cfg, SimConfig::ideal(7)),
    };
    let spec = WorkloadSpec {
        read_fraction,
        stripes,
        skew: 0.0,
        operations: 400,
    };
    let ops = generate(&spec, m, 99);
    let stats = drive_concurrent(&mut cluster, &ops, concurrency, bs);
    (
        stats.abort_rate(),
        stats.recovered as f64 / (stats.ok + stats.aborted) as f64,
    )
}

fn main() {
    println!("Abort rates under concurrent access (5-of-8, 400 ops, 30% writes)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "stripes", "concurrency", "abort rate", "recovery rate"
    );
    println!("{}", "-".repeat(52));
    for &stripes in &[1u64, 4, 16, 64, 256] {
        for &conc in &[1usize, 2, 4, 8] {
            let (aborts, recov) = run(stripes, 0.7, conc, None);
            println!(
                "{stripes:>10} {conc:>12} {aborts:>11.1}% {recov:>13.1}%",
                aborts = aborts * 100.0,
                recov = recov * 100.0
            );
        }
    }

    println!("\nEffect of coordinator clock skew (64 stripes, concurrency 4):");
    println!("{:>16} {:>12}", "max skew (ticks)", "abort rate");
    println!("{}", "-".repeat(30));
    for &max_skew in &[0i64, 10, 100, 1_000, 10_000] {
        let skews: Vec<i64> = (0..8).map(|i| (i64::from(i) - 4) * max_skew / 4).collect();
        let (aborts, _) = run(64, 0.7, 4, Some(&skews));
        println!("{max_skew:>16} {:>11.1}%", aborts * 100.0);
    }
    println!("\nSkew and concurrency only raise the abort rate; safety is untouched");
    println!("(every completed read in these runs returned a linearizable value).");
}
