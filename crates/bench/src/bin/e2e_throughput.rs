//! End-to-end durable write throughput over a real loopback TCP cluster.
//!
//! Boots the paper's f=1 configuration (n=5 bricks, m=3 data blocks) with
//! durable stores, drives full-stripe writes from a configurable number of
//! concurrent clients, and reports ops/s plus p50/p99 client-observed
//! latency — once with per-record fsync (`CommitMode::PerRecord`, the
//! pre-group-commit behavior) and once with the group-commit pipeline
//! (`CommitMode::Group`). The gap between the two is the whole point of
//! the durable-hot-path work: at high concurrency the committer amortizes
//! one `sync_data` over many queued records, so throughput scales with
//! offered load instead of with the fsync budget.
//!
//! Writes `BENCH_e2e.json` (or the path given as the first non-flag
//! argument) so CI and later PRs can diff end-to-end performance.
//!
//! Run: `cargo run --release -p fab-bench --bin e2e_throughput [out.json]`
//!
//! `--smoke` runs one bounded data point per mode and exits non-zero
//! unless group commit at least matches per-record throughput — a cheap CI
//! regression tripwire, not a benchmark.

use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::Instant;

use bytes::Bytes;
use fab_core::{OpResult, RegisterConfig, StripeId};
use fab_net::{BrickNode, CommitMode, NetClient, NodeConfig};
use fab_timestamp::ProcessId;

/// The paper's f=1 layout: 5 bricks, stripes of 3 data blocks.
const N: usize = 5;
const M: usize = 3;

/// Small blocks so the fsync path, not payload bandwidth, is the budget.
const BLOCK_BYTES: usize = 512;

/// Client threads per data point (the sweep axis).
const CONCURRENCY: [usize; 4] = [1, 8, 16, 32];

/// Full-stripe writes each client issues inside the timed window.
const OPS_PER_CLIENT: usize = 150;
const SMOKE_OPS_PER_CLIENT: usize = 30;
const SMOKE_CONCURRENCY: usize = 8;

/// Untimed per-client writes that open connections and warm buffer pools.
const WARMUP_OPS: usize = 5;

#[derive(Clone, Copy)]
struct Sample {
    mode: &'static str,
    concurrency: usize,
    ops: usize,
    ops_per_s: f64,
    p50_us: u64,
    p99_us: u64,
    /// committed records / sync_data calls, summed over the cluster
    /// (1.0 in per-record mode by construction).
    group_commit_factor: f64,
    syncs: u64,
    committed: u64,
}

fn bind_cluster(n: usize) -> (Vec<TcpListener>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    (listeners, addrs)
}

fn stripe(seed: u8) -> Vec<Bytes> {
    (0..M)
        .map(|j| Bytes::from(vec![seed.wrapping_add(j as u8).wrapping_mul(37) | 1; BLOCK_BYTES]))
        .collect()
}

/// Boots a fresh cluster, runs `concurrency` clients for `ops` writes
/// each, tears the cluster down, and returns the sample. `metrics`
/// toggles the nodes' `fab-obs` registries — the on/off delta is the
/// observability overhead the smoke gate bounds.
fn run_point(
    mode: CommitMode,
    mode_name: &'static str,
    concurrency: usize,
    ops: usize,
    metrics: bool,
) -> Sample {
    let store_root = std::env::temp_dir().join(format!(
        "fab-e2e-{}-{mode_name}-{concurrency}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_root);

    let (listeners, addrs) = bind_cluster(N);
    let cfg = RegisterConfig::new(M, N, BLOCK_BYTES).expect("valid config");
    let nodes: Vec<BrickNode> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            let node_cfg = NodeConfig::new(ProcessId::new(i as u32), addrs.clone(), cfg.clone())
                .with_store_dir(store_root.join(format!("node-{i}")))
                .with_commit_mode(mode)
                .with_metrics(metrics);
            BrickNode::spawn(node_cfg, l).expect("spawn brick")
        })
        .collect();

    // Each client owns a disjoint stripe range: no write conflicts, so
    // every latency sample is a clean two-round (order + write) quorum op.
    let start_gate = std::sync::Arc::new(std::sync::Barrier::new(concurrency));
    let mut workers = Vec::with_capacity(concurrency);
    for t in 0..concurrency {
        let addrs = addrs.clone();
        let cfg = cfg.clone();
        let gate = start_gate.clone();
        workers.push(std::thread::spawn(move || -> (Vec<u64>, f64) {
            let mut client = NetClient::connect(addrs, cfg);
            let base = (t as u64) << 32;
            for i in 0..WARMUP_OPS {
                let id = StripeId(base | i as u64);
                client
                    .try_write_stripe(id, stripe(t as u8))
                    .expect("warmup write");
            }
            gate.wait();
            let mut lat_us = Vec::with_capacity(ops);
            let started = Instant::now();
            for i in 0..ops {
                let id = StripeId(base | (WARMUP_OPS + i) as u64);
                let op_start = Instant::now();
                let result = client
                    .try_write_stripe(id, stripe((t as u8).wrapping_add(i as u8)))
                    .expect("timed write");
                assert_eq!(result, OpResult::Written, "write must commit");
                lat_us.push(op_start.elapsed().as_micros() as u64);
            }
            (lat_us, started.elapsed().as_secs_f64())
        }));
    }

    let mut lat_us = Vec::with_capacity(concurrency * ops);
    let mut wall = 0f64;
    for w in workers {
        let (lat, secs) = w.join().expect("worker panicked");
        lat_us.extend(lat);
        wall = wall.max(secs);
    }

    let (mut syncs, mut committed) = (0u64, 0u64);
    for node in &nodes {
        if let Some(stats) = node.metrics().commit {
            syncs += stats.syncs;
            committed += stats.committed;
        }
    }
    for node in nodes {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&store_root);

    lat_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((lat_us.len() as f64 * p).ceil() as usize).saturating_sub(1);
        lat_us.get(idx).copied().unwrap_or(0)
    };
    let total_ops = concurrency * ops;
    Sample {
        mode: mode_name,
        concurrency,
        ops: total_ops,
        ops_per_s: total_ops as f64 / wall.max(1e-9),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        group_commit_factor: if syncs == 0 {
            0.0
        } else {
            committed as f64 / syncs as f64
        },
        syncs,
        committed,
    }
}

fn render(samples: &[Sample], speedup_at_hi: f64, metrics_overhead_pct: f64) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"arch\": \"{}\",", std::env::consts::ARCH);
    let _ = writeln!(json, "  \"n\": {N},");
    let _ = writeln!(json, "  \"m\": {M},");
    let _ = writeln!(json, "  \"block_bytes\": {BLOCK_BYTES},");
    let _ = writeln!(
        json,
        "  \"group_vs_per_record_speedup_at_{}\": {:.2},",
        CONCURRENCY[CONCURRENCY.len() - 1],
        speedup_at_hi
    );
    let _ = writeln!(
        json,
        "  \"metrics_overhead_pct_at_{}\": {:.2},",
        CONCURRENCY[CONCURRENCY.len() - 1],
        metrics_overhead_pct
    );
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"concurrency\": {}, \"ops\": {}, \"ops_per_s\": {:.0}, \
             \"p50_us\": {}, \"p99_us\": {}, \"group_commit_factor\": {:.2}, \"syncs\": {}, \
             \"committed\": {}}}{}",
            s.mode,
            s.concurrency,
            s.ops,
            s.ops_per_s,
            s.p50_us,
            s.p99_us,
            s.group_commit_factor,
            s.syncs,
            s.committed,
            comma
        );
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = Some(PathBuf::from(arg));
        }
    }

    if smoke {
        let per = run_point(
            CommitMode::PerRecord,
            "per_record",
            SMOKE_CONCURRENCY,
            SMOKE_OPS_PER_CLIENT,
            true,
        );
        let grp = run_point(
            CommitMode::Group,
            "group",
            SMOKE_CONCURRENCY,
            SMOKE_OPS_PER_CLIENT,
            true,
        );
        eprintln!(
            "smoke @{}: per_record {:.0} ops/s (p99 {}us), group {:.0} ops/s (p99 {}us), \
             group factor {:.1}",
            SMOKE_CONCURRENCY, per.ops_per_s, per.p99_us, grp.ops_per_s, grp.p99_us,
            grp.group_commit_factor
        );
        if grp.ops_per_s < per.ops_per_s {
            eprintln!("FAIL: group commit slower than per-record fsync");
            std::process::exit(1);
        }
        eprintln!("ok: group >= per-record");

        // Observability overhead gate: metrics-on must stay within 10% of
        // metrics-off throughput. Loopback runs are noisy, so a miss is
        // retried with fresh clusters before it convicts.
        let mut attempts = 0;
        loop {
            attempts += 1;
            let off = run_point(
                CommitMode::Group,
                "group_metrics_off",
                SMOKE_CONCURRENCY,
                SMOKE_OPS_PER_CLIENT,
                false,
            );
            let on = run_point(
                CommitMode::Group,
                "group",
                SMOKE_CONCURRENCY,
                SMOKE_OPS_PER_CLIENT,
                true,
            );
            let overhead_pct = 100.0 * (1.0 - on.ops_per_s / off.ops_per_s.max(1e-9));
            eprintln!(
                "smoke metrics overhead (attempt {attempts}): off {:.0} ops/s, on {:.0} ops/s \
                 ({overhead_pct:+.1}%)",
                off.ops_per_s, on.ops_per_s
            );
            if on.ops_per_s >= 0.90 * off.ops_per_s {
                eprintln!("ok: metrics within 10% of metrics-off");
                break;
            }
            if attempts >= 3 {
                eprintln!("FAIL: metrics overhead above 10% across {attempts} attempts");
                std::process::exit(1);
            }
        }
        return;
    }

    let out_path = out_path.unwrap_or_else(|| PathBuf::from("BENCH_e2e.json"));
    let mut samples = Vec::new();
    for &conc in &CONCURRENCY {
        for (mode, name) in [
            (CommitMode::PerRecord, "per_record"),
            (CommitMode::Group, "group"),
        ] {
            let s = run_point(mode, name, conc, OPS_PER_CLIENT, true);
            eprintln!(
                "{:>10} @{:>2}: {:>7.0} ops/s  p50 {:>5}us  p99 {:>6}us  factor {:.1}",
                s.mode, s.concurrency, s.ops_per_s, s.p50_us, s.p99_us, s.group_commit_factor
            );
            samples.push(s);
        }
    }

    let hi = CONCURRENCY[CONCURRENCY.len() - 1];
    // One metrics-off point at the highest concurrency: the delta against
    // the metrics-on group sample is the observability overhead.
    let off = run_point(
        CommitMode::Group,
        "group_metrics_off",
        hi,
        OPS_PER_CLIENT,
        false,
    );
    eprintln!(
        "{:>10} @{:>2}: {:>7.0} ops/s  p50 {:>5}us  p99 {:>6}us  factor {:.1}",
        "group-off", off.concurrency, off.ops_per_s, off.p50_us, off.p99_us,
        off.group_commit_factor
    );
    samples.push(off);

    let of = |mode: &str, conc: usize| {
        samples
            .iter()
            .find(|s| s.mode == mode && s.concurrency == conc)
            .map_or(0.0, |s| s.ops_per_s)
    };
    let speedup = of("group", hi) / of("per_record", hi).max(1e-9);
    let metrics_overhead_pct =
        100.0 * (1.0 - of("group", hi) / of("group_metrics_off", hi).max(1e-9));

    let json = render(&samples, speedup, metrics_overhead_pct);
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {}", out_path.display());
}
