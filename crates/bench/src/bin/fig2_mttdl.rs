//! Regenerates Figure 2: mean time to first data loss (years) vs logical
//! capacity (TB) for striping, 4-way replication, and E.C.(5,8), over R0
//! and R5 bricks.
//!
//! Run: `cargo run -p fab-bench --bin fig2_mttdl`

use fab_reliability::figure2;

fn main() {
    let capacities: Vec<f64> = (0..=12).map(|i| 10f64.powf(f64::from(i) / 4.0)).collect();
    let series = figure2(&capacities);

    println!("Figure 2 — MTTDL (years) vs logical capacity (TB)");
    println!("(log-log axes in the paper; values below are raw years)\n");

    print!("{:>12}", "capacity TB");
    for s in &series {
        print!("  {:>28}", s.label);
    }
    println!();
    for (i, &cap) in capacities.iter().enumerate() {
        print!("{cap:>12.2}");
        for s in &series {
            print!("  {:>28.3e}", s.points[i].mttdl_years);
        }
        println!();
    }

    println!("\nShape checks (the paper's qualitative claims):");
    let at_256 = |label: &str| {
        let s = series.iter().find(|s| s.label.starts_with(label)).unwrap();
        s.points
            .iter()
            .min_by(|a, b| {
                (a.capacity_tb - 256.0)
                    .abs()
                    .total_cmp(&(b.capacity_tb - 256.0).abs())
            })
            .unwrap()
            .mttdl_years
    };
    let striping = at_256("Striping");
    let rep_r0 = at_256("4-way replication/R0");
    let ec_r0 = at_256("E.C.(5,8)/R0");
    println!("  striping is adequate only for small systems:     {striping:>12.3e} y @256TB");
    println!("  4-way replication is the most reliable:          {rep_r0:>12.3e} y @256TB");
    println!(
        "  E.C.(5,8) is within {:.0}x of 4-way replication:     {ec_r0:>12.3e} y @256TB",
        rep_r0 / ec_r0
    );
    println!("  ...at 2.5x less raw storage (1.6x vs 4x overhead).");
}
