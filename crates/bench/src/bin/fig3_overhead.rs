//! Regenerates Figure 3: storage overhead (raw/logical) vs achieved MTTDL
//! at a 256 TB system, sweeping replication factor k and erasure-code
//! width n (m = 5), over R0 and R5 bricks.
//!
//! Run: `cargo run -p fab-bench --bin fig3_overhead`

use fab_reliability::{cheapest_meeting_target, figure3};

fn main() {
    let series = figure3(256.0, 7, 13);

    println!("Figure 3 — storage overhead vs MTTDL (256 TB system)\n");
    for s in &series {
        println!("{}:", s.label);
        println!(
            "  {:>22} {:>16} {:>10}",
            "scheme", "MTTDL (years)", "overhead"
        );
        for p in &s.points {
            println!(
                "  {:>22} {:>16.3e} {:>10.2}",
                p.scheme, p.mttdl_years, p.overhead
            );
        }
        println!();
    }

    println!("Cost to reach a one-million-year MTTDL (the paper's target):");
    for label_prefix in [
        "Replication/R0",
        "Replication/R5",
        "E.C.(5,n)/R0",
        "E.C.(5,n)/R5",
    ] {
        let family: Vec<_> = series
            .iter()
            .filter(|s| s.label.starts_with(label_prefix))
            .cloned()
            .collect();
        match cheapest_meeting_target(&family, 1e6) {
            Some(p) => println!(
                "  {label_prefix:<18} -> {} at overhead {:.2} ({:.3e} years)",
                p.scheme, p.overhead, p.mttdl_years
            ),
            None => println!("  {label_prefix:<18} -> no swept design reaches 1e6 years"),
        }
    }
    println!("\nThe paper's claim: replication needs ~4x (R0) / ~3.2x (R5) raw storage,");
    println!("erasure coding meets the same target below 2.2x — a >= 1.8x saving.");
}
