//! §5.1's garbage collection, measured: per-replica log growth with and
//! without GC over a sustained write stream, and the message overhead GC
//! costs.
//!
//! Run: `cargo run -p fab-bench --bin gc_effectiveness`

use bytes::Bytes;
use fab_core::{GcPolicy, RegisterConfig, SimCluster, StripeId};
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;

fn run(gc: GcPolicy, writes: usize) -> (usize, usize, f64) {
    let (m, n, bs) = (5usize, 8usize, 1024usize);
    let cfg = RegisterConfig::new(m, n, bs).unwrap().with_gc(gc);
    let mut c = SimCluster::new(cfg, SimConfig::ideal(23));
    let s = StripeId(0);
    let m0 = c.net_metrics();
    for i in 0..writes {
        let data: Vec<Bytes> = (0..m)
            .map(|k| Bytes::from(vec![(i + k) as u8; bs]))
            .collect();
        c.write_stripe(ProcessId::new((i % n) as u32), s, data);
    }
    c.sim_mut().run_until_idle(); // let async GC land
    let max_len = (0..n as u32)
        .filter_map(|i| {
            c.sim()
                .actor(ProcessId::new(i))
                .replica_ref(s)
                .map(|r| r.log().len())
        })
        .max()
        .unwrap_or(0);
    let total_bytes: usize = (0..n as u32)
        .filter_map(|i| {
            c.sim()
                .actor(ProcessId::new(i))
                .replica_ref(s)
                .map(|r| r.log().data_bytes())
        })
        .sum();
    let msgs_per_op = (c.net_metrics().messages_sent - m0.messages_sent) as f64 / writes as f64;
    (max_len, total_bytes, msgs_per_op)
}

fn main() {
    println!("§5.1 garbage collection — 5-of-8, 1 KiB blocks, one hot stripe\n");
    println!(
        "{:>8} {:>16} {:>16} {:>18} {:>16} {:>12}",
        "writes", "log len (GC)", "log len (none)", "bytes (GC)", "bytes (none)", "msgs/op (GC)"
    );
    println!("{}", "-".repeat(92));
    for writes in [10usize, 50, 200] {
        let (len_gc, bytes_gc, msgs_gc) = run(GcPolicy::AfterCompleteWrite, writes);
        let (len_off, bytes_off, _) = run(GcPolicy::Disabled, writes);
        println!(
            "{writes:>8} {len_gc:>16} {len_off:>16} {bytes_gc:>18} {bytes_off:>16} {msgs_gc:>12.1}"
        );
    }
    println!("\nWith GC every replica retains the sentinel plus the newest complete");
    println!("version (log length <= 3 regardless of history), at the cost of n");
    println!("fire-and-forget messages per completed write (4n -> 5n per op).");
    println!("Without GC the log and its bytes grow linearly with every write —");
    println!("the pseudocode's unbounded history the paper flags as impractical.");
}
