//! Machine-readable GF(256) kernel throughput baseline.
//!
//! Times `mul_acc`, `mul_slice`, and `xor_slice` for each kernel tier the
//! host supports (scalar reference, branch-free full table, SIMD
//! nibble-shuffle) and writes `BENCH_erasure.json` so CI and later PRs can
//! diff kernel performance without parsing criterion output.
//!
//! Run: `cargo run --release -p fab-bench --bin kernel_throughput [out.json]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use fab_erasure::kernel::{mul_acc, mul_slice, set_kernel_override, simd_available, xor_slice};
use fab_erasure::{Gf256, Kernel};

/// Block sizes to sample: one cache-resident, one mid, one streaming.
const SIZES: [usize; 3] = [4 << 10, 64 << 10, 1 << 20];

/// An arbitrary non-trivial coefficient (not 0 or 1, so no fast path).
const COEFF: u8 = 0x8E;

/// Target wall time per measurement; iterations are calibrated to reach it.
const TARGET_NANOS: u128 = 80_000_000;

struct Sample {
    op: &'static str,
    kernel: &'static str,
    bytes: usize,
    mib_per_s: f64,
}

fn kernel_name(k: Kernel) -> &'static str {
    match k {
        Kernel::Scalar => "scalar",
        Kernel::Table => "table",
        Kernel::Simd => "simd",
    }
}

/// Times `body` (one pass over `bytes`) and returns MiB/s.
fn throughput(bytes: usize, mut body: impl FnMut()) -> f64 {
    // Warm up and calibrate the iteration count to the target duration.
    let mut iters = 4u64;
    let elapsed = loop {
        let start = Instant::now();
        for _ in 0..iters {
            body();
        }
        let nanos = start.elapsed().as_nanos().max(1);
        if nanos >= TARGET_NANOS {
            break nanos as f64 / iters as f64;
        }
        let scale = (TARGET_NANOS as f64 / nanos as f64).ceil() as u64;
        iters = (iters * scale.max(2)).min(1 << 24);
    };
    (bytes as f64 / (1u64 << 20) as f64) / (elapsed / 1e9)
}

fn measure_tier(kernel: Kernel, samples: &mut Vec<Sample>) {
    set_kernel_override(Some(kernel));
    let name = kernel_name(kernel);
    for size in SIZES {
        let src: Vec<u8> = (0..size).map(|k| (k * 31 + 7) as u8).collect();
        let mut acc = vec![0u8; size];
        let coeff = Gf256::new(COEFF);
        let mps = throughput(size, || {
            mul_acc(black_box(&mut acc), black_box(&src), black_box(coeff));
        });
        samples.push(Sample { op: "mul_acc", kernel: name, bytes: size, mib_per_s: mps });

        let mut buf = src.clone();
        let mps = throughput(size, || {
            mul_slice(black_box(&mut buf), black_box(coeff));
        });
        samples.push(Sample { op: "mul_slice", kernel: name, bytes: size, mib_per_s: mps });
    }
    set_kernel_override(None);
}

/// Geometric-mean speedup of `kernel` over scalar for one op across sizes.
fn speedup(samples: &[Sample], op: &str, kernel: &str) -> f64 {
    let ratio_product: f64 = SIZES
        .iter()
        .map(|&size| {
            let find = |k: &str| {
                samples
                    .iter()
                    .find(|s| s.op == op && s.kernel == k && s.bytes == size)
                    .map_or(1.0, |s| s.mib_per_s)
            };
            find(kernel) / find("scalar")
        })
        .product();
    ratio_product.powf(1.0 / SIZES.len() as f64)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_erasure.json".to_string());

    let mut samples = Vec::new();
    measure_tier(Kernel::Scalar, &mut samples);
    measure_tier(Kernel::Table, &mut samples);
    if simd_available() {
        measure_tier(Kernel::Simd, &mut samples);
    }

    // xor_slice has a single implementation (u64-chunked).
    for size in SIZES {
        let src: Vec<u8> = (0..size).map(|k| (k * 17 + 3) as u8).collect();
        let mut dst = vec![0u8; size];
        let mps = throughput(size, || {
            xor_slice(black_box(&mut dst), black_box(&src));
        });
        samples.push(Sample { op: "xor_slice", kernel: "u64", bytes: size, mib_per_s: mps });
    }

    let table_speedup = speedup(&samples, "mul_acc", "table");
    let simd_speedup = if simd_available() {
        speedup(&samples, "mul_acc", "simd")
    } else {
        0.0
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"arch\": \"{}\",", std::env::consts::ARCH);
    let _ = writeln!(json, "  \"simd_available\": {},", simd_available());
    let _ = writeln!(json, "  \"coefficient\": {COEFF},");
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"kernel\": \"{}\", \"bytes\": {}, \"mib_per_s\": {:.1}}}{}",
            s.op, s.kernel, s.bytes, s.mib_per_s, comma
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_over_scalar\": {\n");
    let _ = writeln!(json, "    \"mul_acc_table\": {table_speedup:.2},");
    let _ = writeln!(json, "    \"mul_acc_simd\": {simd_speedup:.2}");
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
