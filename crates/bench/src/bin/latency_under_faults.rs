//! Graceful degradation: operation latency as faults mount — the paper's
//! §1 claim that the algorithm "is efficient in the common case and
//! degrades gracefully under failure".
//!
//! Two sweeps on a 5-of-8 cluster:
//! 1. message-drop probability 0%..30% (retransmission path),
//! 2. crashed bricks 0..f with a stale-replica read mix (recovery path).
//!
//! Run: `cargo run -p fab-bench --bin latency_under_faults`

use bytes::Bytes;
use fab_core::{GcPolicy, OpResult, RegisterConfig, SimCluster, StripeId};
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;

fn blocks(m: usize, tag: u8, size: usize) -> Vec<Bytes> {
    (0..m)
        .map(|i| Bytes::from(vec![tag.wrapping_add(i as u8); size]))
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Runs `ops` sequential read/write pairs and returns (read latencies,
/// write latencies, recoveries) in ticks.
fn measure(drop: f64, crashed: usize, ops: usize) -> (Vec<u64>, Vec<u64>, u64) {
    let (m, n, size) = (5usize, 8usize, 512usize);
    let cfg = RegisterConfig::new(m, n, size)
        .unwrap()
        .with_gc(GcPolicy::Disabled)
        .with_retransmit_interval(20);
    let net = SimConfig::ideal(42).delays(1, 1).drop_probability(drop);
    let mut c = SimCluster::new(cfg, net);
    let s = StripeId(0);
    for i in 0..crashed {
        let t = c.sim().now();
        c.sim_mut()
            .schedule_crash(t, ProcessId::new((n - 1 - i) as u32));
        c.sim_mut().run_until(t + 1);
    }
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut recoveries = 0u64;
    for i in 0..ops {
        let data = blocks(m, i as u8, size);
        let w0 = c.sim().now();
        assert_eq!(
            c.write_stripe(ProcessId::new(0), s, data),
            OpResult::Written
        );
        writes.push(c.sim().now() - w0);
        let r0 = c.sim().now();
        let before = c.sim().actor(ProcessId::new(1)).completions.len();
        let _ = before;
        let at = c.sim().now();
        c.sim_mut()
            .schedule_call(at, ProcessId::new(1), move |b, ctx| {
                b.read_stripe(ctx, s);
            });
        let ok = c
            .sim_mut()
            .run_until_actor(ProcessId::new(1), at + 1_000_000, |b| {
                !b.completions.is_empty()
            });
        assert!(ok);
        let done = c
            .sim_mut()
            .actor_mut(ProcessId::new(1))
            .completions
            .remove(0);
        assert!(done.result.is_ok());
        if done.recovered {
            recoveries += 1;
        }
        reads.push(c.sim().now() - r0);
    }
    reads.sort_unstable();
    writes.sort_unstable();
    (reads, writes, recoveries)
}

fn main() {
    let ops = 60;
    println!("Graceful degradation on 5-of-8 (δ = 1 tick, retransmit every 20)\n");

    println!("Sweep 1: message loss (no crashed bricks)");
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "drop", "read p50", "read p99", "write p50", "write p99", "recoveries"
    );
    println!("{}", "-".repeat(72));
    for drop in [0.0, 0.02, 0.05, 0.10, 0.20, 0.30] {
        let (r, w, rec) = measure(drop, 0, ops);
        println!(
            "{:>9.0}% {:>12} {:>10} {:>12} {:>10} {:>12}",
            drop * 100.0,
            percentile(&r, 0.5),
            percentile(&r, 0.99),
            percentile(&w, 0.5),
            percentile(&w, 0.99),
            rec
        );
    }

    println!("\nSweep 2: crashed bricks (no message loss; f = 1 for 5-of-8)");
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "crashed", "read p50", "read p99", "write p50", "write p99", "recoveries"
    );
    println!("{}", "-".repeat(72));
    for crashed in [0usize, 1] {
        let (r, w, rec) = measure(0.0, crashed, ops);
        println!(
            "{crashed:>10} {:>12} {:>10} {:>12} {:>10} {:>12}",
            percentile(&r, 0.5),
            percentile(&r, 0.99),
            percentile(&w, 0.5),
            percentile(&w, 0.99),
            rec
        );
    }
    println!("\nThe common case stays at 2δ reads / 4δ writes; loss adds retransmission");
    println!("tails and a crashed brick forces recovery only when it is a read target —");
    println!("latency degrades in small increments, never a cliff.");
}
