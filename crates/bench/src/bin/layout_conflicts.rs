//! §3's layout advice, measured: "we can make stripe-level conflicts
//! unlikely by laying out data so that consecutive blocks in a logical
//! volume are mapped to different stripes."
//!
//! Concurrent clients write *adjacent logical blocks* at the same moment —
//! parallel producers appending to one shared region, the access pattern
//! the paper's remark targets. Under the linear layout m adjacent blocks
//! share one stripe, so neighbors collide; the interleaved layout sends
//! adjacent blocks to different stripes and the collisions vanish.
//!
//! Run: `cargo run -p fab-bench --bin layout_conflicts`

use fab_core::{RegisterConfig, SimCluster, StripeId};
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;
use fab_volume::{Layout, VolumeGeometry};

/// Runs `clients` parallel writers sweeping consecutive logical blocks
/// (at step s, client c writes block `s·clients + c`) and returns
/// (aborted ops, total ops).
fn run(layout: Layout, clients: usize) -> (u64, u64) {
    let (m, n, bs) = (4usize, 6usize, 256usize);
    let stripes = 16u64;
    let cfg = RegisterConfig::new(m, n, bs).unwrap();
    let mut cluster = SimCluster::new(cfg, SimConfig::ideal(17));
    let geometry = VolumeGeometry::new(stripes, m, bs, layout);
    let steps = (geometry.capacity_blocks() / clients as u64).min(24);

    let mut total = 0u64;
    let mut aborted = 0u64;
    // Each step: the client group writes `clients` ADJACENT blocks, all at
    // the same instant (the conflict window §3 worries about).
    for step in 0..steps {
        let at = cluster.sim().now();
        for c in 0..clients {
            let logical = step * clients as u64 + c as u64;
            let (stripe, j) = geometry.locate(logical);
            let coordinator = ProcessId::new((c % n) as u32);
            let payload = bytes::Bytes::from(vec![(step + c as u64) as u8; bs]);
            cluster
                .sim_mut()
                .schedule_call(at, coordinator, move |b, ctx| {
                    b.write_block(ctx, StripeId(stripe.0), j, payload).unwrap();
                });
        }
        cluster.sim_mut().run_until_idle();
        for (_, done) in cluster.drain_all_completions() {
            total += 1;
            if !done.result.is_ok() {
                aborted += 1;
            }
        }
    }
    (aborted, total)
}

fn main() {
    println!("§3 layout study — parallel writers of adjacent logical blocks");
    println!("(4-of-6, 16 stripes, one shared region, simultaneous steps)\n");
    println!(
        "{:>10} {:>22} {:>22}",
        "clients", "Linear abort rate", "Interleaved abort rate"
    );
    println!("{}", "-".repeat(58));
    for clients in [2usize, 4, 8] {
        let (la, lt) = run(Layout::Linear, clients);
        let (ia, it) = run(Layout::Interleaved, clients);
        println!(
            "{clients:>10} {:>21.1}% {:>21.1}%",
            100.0 * la as f64 / lt as f64,
            100.0 * ia as f64 / it as f64,
        );
    }
    println!("\nLinear layout packs m = 4 consecutive blocks into one stripe, so");
    println!("writers of adjacent addresses conflict on the same register and abort.");
    println!("Interleaving maps consecutive blocks to different stripes — the");
    println!("paper's recommendation — and the same workload runs conflict-free.");
}
