//! Background-rebuild throughput over a real loopback TCP cluster.
//!
//! Boots the paper's f=1 configuration (n=5 bricks, m=3 data blocks) with
//! durable stores, seeds a volume, then replaces one brick: kill it, wipe
//! its store directory, restart it empty, and drive the admin repair
//! orchestrator (`AdminOp::RepairStart`) to rebuild it. Each data point
//! reports rebuild throughput (stripes/s and MB/s of reconstructed data)
//! for a throttle setting, with and without concurrent foreground writes —
//! the trade the throttle exists to navigate: an unthrottled rebuild
//! finishes fastest but competes with clients for coordinator slots, while
//! a throttled one bounds its impact on foreground p99 at the cost of a
//! longer degraded window.
//!
//! Writes `BENCH_repair.json` (or the path given as the first non-flag
//! argument) so CI and later PRs can diff rebuild performance.
//!
//! Run: `cargo run --release -p fab-bench --bin repair_throughput [out.json]`
//!
//! `--smoke` runs one bounded throttled point under foreground load and
//! exits non-zero unless the rebuild completes with zero failures, the
//! throttle demonstrably engaged, and foreground writes kept committing
//! with bounded p99 — a cheap CI regression tripwire, not a benchmark.

use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use fab_core::{OpResult, RegisterConfig, StripeId};
use fab_net::{BrickNode, NetClient, NodeConfig};
use fab_timestamp::ProcessId;
use fab_wire::{AdminOp, AdminResponse, RepairProgress};

/// The paper's f=1 layout: 5 bricks, stripes of 3 data blocks.
const N: usize = 5;
const M: usize = 3;

/// Large-ish blocks so rebuild MB/s measures data movement, not framing.
const BLOCK_BYTES: usize = 4096;

/// Stripes seeded (and then rebuilt) per data point.
const STRIPES: usize = 192;
const SMOKE_STRIPES: usize = 48;

/// Throttle sweep: unlimited, then a rate well below the unthrottled
/// rebuild speed so the token bucket is the binding constraint.
const THROTTLES: [u64; 2] = [0, 48];
const SMOKE_THROTTLE: u64 = 24;

/// Foreground writer threads when load is enabled.
const FG_WORKERS: usize = 2;

struct Sample {
    stripes_per_sec_limit: u64,
    foreground: bool,
    stripes: usize,
    rebuild_secs: f64,
    rebuild_stripes_per_s: f64,
    rebuild_mb_per_s: f64,
    throttle_waits: u64,
    repaired: u64,
    skipped: u64,
    fg_ops: u64,
    fg_p50_us: u64,
    fg_p99_us: u64,
}

fn bind_cluster(n: usize) -> (Vec<TcpListener>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    (listeners, addrs)
}

fn stripe(seed: u8) -> Vec<Bytes> {
    (0..M)
        .map(|j| Bytes::from(vec![seed.wrapping_add(j as u8).wrapping_mul(37) | 1; BLOCK_BYTES]))
        .collect()
}

fn status(admin: &mut NetClient, node: usize) -> RepairProgress {
    match admin.try_admin(node, &AdminOp::RepairStatus) {
        Ok(AdminResponse::Status(p)) => p,
        other => panic!("repair-status reply: {other:?}"),
    }
}

/// Boots a fresh cluster, seeds `stripes`, replaces brick `N-1`, rebuilds
/// it at the given throttle (optionally under foreground write load), and
/// returns the sample.
fn run_point(stripes: usize, throttle: u64, foreground: bool) -> Sample {
    let store_root = std::env::temp_dir().join(format!(
        "fab-repair-bench-{}-{throttle}-{foreground}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_root);

    let (listeners, addrs) = bind_cluster(N);
    let cfg = RegisterConfig::new(M, N, BLOCK_BYTES).expect("valid config");
    let spawn_node = |i: usize, listener: TcpListener| -> BrickNode {
        let node_cfg = NodeConfig::new(ProcessId::new(i as u32), addrs.clone(), cfg.clone())
            .with_store_dir(store_root.join(format!("node-{i}")));
        BrickNode::spawn(node_cfg, listener).expect("spawn brick")
    };
    let mut nodes: Vec<Option<BrickNode>> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| Some(spawn_node(i, l)))
        .collect();

    // Seed every stripe so the rebuild moves a known volume of data.
    let mut client = NetClient::connect(addrs.clone(), cfg.clone());
    for s in 0..stripes {
        let result = client
            .try_write_stripe(StripeId(s as u64), stripe(s as u8))
            .expect("seed write");
        assert_eq!(result, OpResult::Written, "seed write to stripe {s}");
    }

    // Replace the brick: kill, wipe the store (fresh disk), restart empty.
    let victim = N - 1;
    let listener = nodes[victim]
        .take()
        .unwrap()
        .shutdown()
        .expect("shutdown returns listener");
    std::fs::remove_dir_all(store_root.join(format!("node-{victim}"))).expect("wipe store");
    nodes[victim] = Some(spawn_node(victim, listener));

    // Foreground writers (if enabled) run for the whole rebuild window.
    let stop = Arc::new(AtomicBool::new(false));
    let fg: Vec<_> = (0..if foreground { FG_WORKERS } else { 0 })
        .map(|t| {
            let addrs = addrs.clone();
            let cfg = cfg.clone();
            let stop = stop.clone();
            std::thread::spawn(move || -> Vec<u64> {
                let mut client = NetClient::connect(addrs, cfg);
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut lat_us = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let s = rng % stripes as u64;
                    let op_start = Instant::now();
                    let result = client.try_write_stripe(StripeId(s), stripe(s as u8));
                    if matches!(result, Ok(OpResult::Written)) {
                        lat_us.push(op_start.elapsed().as_micros() as u64);
                    }
                }
                lat_us
            })
        })
        .collect();

    // Rebuild via the admin path, timing start → completion.
    let mut admin = NetClient::connect(addrs.clone(), cfg.clone());
    let start_op = AdminOp::RepairStart {
        brick: victim as u32,
        stripe_count: stripes as u64,
        stripes_per_sec: throttle,
        bytes_per_sec: 0,
        max_inflight: 4,
        scrub_all: false,
    };
    let started = Instant::now();
    assert!(matches!(
        admin.try_admin(0, &start_op).expect("repair-start"),
        AdminResponse::Started
    ));
    let final_status = loop {
        let p = status(&mut admin, 0);
        if !p.running {
            break p;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let rebuild_secs = started.elapsed().as_secs_f64();
    assert!(final_status.complete, "rebuild incomplete: {final_status:?}");
    assert_eq!(final_status.failed, 0, "{final_status:?}");

    stop.store(true, Ordering::Relaxed);
    let mut fg_lat: Vec<u64> = Vec::new();
    for w in fg {
        fg_lat.extend(w.join().expect("foreground worker panicked"));
    }
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&store_root);

    fg_lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((fg_lat.len() as f64 * p).ceil() as usize).saturating_sub(1);
        fg_lat.get(idx).copied().unwrap_or(0)
    };
    Sample {
        stripes_per_sec_limit: throttle,
        foreground,
        stripes,
        rebuild_secs,
        rebuild_stripes_per_s: stripes as f64 / rebuild_secs.max(1e-9),
        rebuild_mb_per_s: final_status.bytes_reconstructed as f64
            / (1024.0 * 1024.0)
            / rebuild_secs.max(1e-9),
        throttle_waits: final_status.throttle_waits,
        repaired: final_status.repaired,
        skipped: final_status.skipped,
        fg_ops: fg_lat.len() as u64,
        fg_p50_us: pct(0.50),
        fg_p99_us: pct(0.99),
    }
}

fn render(samples: &[Sample]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"arch\": \"{}\",", std::env::consts::ARCH);
    let _ = writeln!(json, "  \"n\": {N},");
    let _ = writeln!(json, "  \"m\": {M},");
    let _ = writeln!(json, "  \"block_bytes\": {BLOCK_BYTES},");
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"stripes_per_sec_limit\": {}, \"foreground\": {}, \"stripes\": {}, \
             \"rebuild_secs\": {:.2}, \"rebuild_stripes_per_s\": {:.1}, \
             \"rebuild_mb_per_s\": {:.2}, \"throttle_waits\": {}, \"repaired\": {}, \
             \"skipped\": {}, \"fg_ops\": {}, \"fg_p50_us\": {}, \"fg_p99_us\": {}}}{}",
            s.stripes_per_sec_limit,
            s.foreground,
            s.stripes,
            s.rebuild_secs,
            s.rebuild_stripes_per_s,
            s.rebuild_mb_per_s,
            s.throttle_waits,
            s.repaired,
            s.skipped,
            s.fg_ops,
            s.fg_p50_us,
            s.fg_p99_us,
            comma
        );
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = Some(PathBuf::from(arg));
        }
    }

    if smoke {
        let s = run_point(SMOKE_STRIPES, SMOKE_THROTTLE, true);
        eprintln!(
            "smoke: rebuilt {} stripes at {}/s limit in {:.2}s ({:.1} stripes/s, {:.2} MB/s), \
             {} throttle waits, fg {} ops p99 {}us",
            s.stripes,
            s.stripes_per_sec_limit,
            s.rebuild_secs,
            s.rebuild_stripes_per_s,
            s.rebuild_mb_per_s,
            s.throttle_waits,
            s.fg_ops,
            s.fg_p99_us
        );
        if s.throttle_waits == 0 {
            eprintln!("FAIL: throttle never engaged");
            std::process::exit(1);
        }
        if s.fg_ops == 0 {
            eprintln!("FAIL: foreground writes starved during rebuild");
            std::process::exit(1);
        }
        if s.fg_p99_us > 5_000_000 {
            eprintln!("FAIL: foreground p99 {}us exceeds 5s bound", s.fg_p99_us);
            std::process::exit(1);
        }
        eprintln!("ok: throttled rebuild completed, foreground p99 bounded");
        return;
    }

    let out_path = out_path.unwrap_or_else(|| PathBuf::from("BENCH_repair.json"));
    let mut samples = Vec::new();
    for &throttle in &THROTTLES {
        for fg in [false, true] {
            let s = run_point(STRIPES, throttle, fg);
            eprintln!(
                "limit {:>3}/s fg={:<5}: {:>6.1} stripes/s  {:>6.2} MB/s  in {:>5.2}s  \
                 waits {:>4}  fg p99 {:>7}us",
                s.stripes_per_sec_limit,
                s.foreground,
                s.rebuild_stripes_per_s,
                s.rebuild_mb_per_s,
                s.rebuild_secs,
                s.throttle_waits,
                s.fg_p99_us
            );
            samples.push(s);
        }
    }

    let json = render(&samples);
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {}", out_path.display());
}
