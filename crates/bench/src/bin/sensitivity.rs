//! Reliability sensitivity study: which physical constants move the
//! MTTDL, and by how much (elasticities), for the paper's flagship
//! E.C.(5,8) design and its 4-way-replication competitor.
//!
//! Run: `cargo run -p fab-bench --bin sensitivity`

use fab_reliability::{sweep_all, BrickParams, InternalLayout, Scheme, SystemDesign};

fn main() {
    let designs = [
        (
            "E.C.(5,8) / R0 bricks",
            SystemDesign {
                scheme: Scheme::ErasureCode { m: 5, n: 8 },
                brick: BrickParams::commodity(),
                layout: InternalLayout::Raid0,
            },
        ),
        (
            "4-way replication / R0 bricks",
            SystemDesign {
                scheme: Scheme::Replication { k: 4 },
                brick: BrickParams::commodity(),
                layout: InternalLayout::Raid0,
            },
        ),
    ];
    println!("MTTDL sensitivity at 256 TB (factor ladder 1/8x .. 8x)\n");
    for (label, design) in designs {
        println!(
            "{label}  (baseline {:.3e} years):",
            design.mttdl_years(256.0)
        );
        println!(
            "  {:<22} {:>12} {:>14} {:>14} {:>14}",
            "parameter", "elasticity", "MTTDL @ 1/8x", "MTTDL @ 1x", "MTTDL @ 8x"
        );
        println!("  {}", "-".repeat(80));
        for s in sweep_all(&design, 256.0) {
            let at = |f: f64| {
                s.points
                    .iter()
                    .find(|p| (p.factor - f).abs() < 1e-9)
                    .map(|p| p.mttdl_years)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "  {:<22} {:>12.2} {:>14.3e} {:>14.3e} {:>14.3e}",
                s.parameter.to_string(),
                s.elasticity,
                at(0.125),
                at(1.0),
                at(8.0)
            );
        }
        println!();
    }
    println!("Reading the elasticities: a scheme tolerating t concurrent brick");
    println!("failures has MTTDL ~ MTTF^(t+1) / repair^t, diluted by each term's");
    println!("share of the brick failure rate. Faster brick rebuild (repair time)");
    println!("is worth almost as much as proportionally better disks — the");
    println!("operational lever the paper's commodity-brick premise relies on.");
}
