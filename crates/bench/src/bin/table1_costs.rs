//! Regenerates Table 1: operation costs of the storage register vs LS97.
//!
//! Run: `cargo run -p fab-bench --bin table1_costs [-- m n block_size]`
//! (default 5 8 1024 — the paper's flagship 5-of-8 configuration).

use fab_bench::table1::{measure_ls97, measure_ours, render};
use fab_core::WriteStrategy;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (m, n, block_size) = match args.as_slice() {
        [m, n, b, ..] => (*m, *n, *b),
        [m, n] => (*m, *n, 1024),
        _ => (5, 8, 1024),
    };
    let k = n - m;
    println!("Table 1 — operation costs, {m}-of-{n} erasure coding, B = {block_size} bytes");
    println!("(n = {n} processes, k = {k} parity blocks, delta = 1 simulator tick)\n");

    println!("Our algorithm:");
    let ours = measure_ours(m, n, block_size, WriteStrategy::Paper);
    print!("{}", render(&ours));

    println!("\nLS97 baseline (replication over the same {n} processes):");
    let theirs = measure_ls97(n, block_size);
    print!("{}", render(&theirs));

    let our_read = &ours[0];
    let ls_read = &theirs[0];
    println!("\nHeadline comparison (failure-free stripe read):");
    println!(
        "  latency: ours {}δ vs LS97 {}δ — the optimistic single-round read",
        our_read.measured.latency, ls_read.measured.latency
    );
    println!(
        "  disk reads: ours {} vs LS97 {} — m targeted reads vs n replica reads",
        our_read.measured.disk_reads, ls_read.measured.disk_reads
    );
    println!(
        "  disk writes: ours {} vs LS97 {} — no write-back on the fast path",
        our_read.measured.disk_writes, ls_read.measured.disk_writes
    );
}
