//! Decentralized-coordination scaling study: simulated throughput as the
//! number of concurrent client streams grows.
//!
//! The paper's architectural claim (§1.1) is that FAB avoids the central
//! controller bottleneck because every brick coordinates requests. In the
//! simulator this shows up as *flat per-operation virtual latency* no
//! matter how many disjoint streams run concurrently — operations on
//! different stripes never serialize against each other.
//!
//! Run: `cargo run -p fab-bench --bin throughput_scaling`

use bytes::Bytes;
use fab_core::{GcPolicy, RegisterConfig, SimCluster, StripeId};
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;

fn run(m: usize, n: usize, streams: usize, rounds: usize) -> (f64, f64, f64) {
    let size = 1024;
    let cfg = RegisterConfig::new(m, n, size)
        .unwrap()
        .with_gc(GcPolicy::Disabled);
    let mut c = SimCluster::new(cfg, SimConfig::ideal(7));
    let m0 = c.net_metrics();
    let mut completed = 0u64;
    let mut busy_ticks = 0u64;
    for round in 0..rounds {
        let at = c.sim().now();
        for stream in 0..streams {
            let stripe = StripeId(stream as u64);
            let coordinator = ProcessId::new((stream % n) as u32);
            let data: Vec<Bytes> = (0..m)
                .map(|i| Bytes::from(vec![(round + i + stream) as u8; size]))
                .collect();
            c.sim_mut().schedule_call(at, coordinator, move |b, ctx| {
                b.write_stripe(ctx, stripe, data).unwrap();
            });
        }
        // Drain the wave (the idle point also pops cancelled retransmit
        // timers, so measure the wave span from completion timestamps,
        // not from the idle time).
        c.sim_mut().run_until_idle();
        let done = c.drain_all_completions();
        let wave_end = done.iter().map(|(_, d)| d.completed_at).max().unwrap_or(at);
        busy_ticks += wave_end - at;
        completed += done.len() as u64;
    }
    let msgs = (c.net_metrics().messages_sent - m0.messages_sent) as f64;
    (
        completed as f64 / busy_ticks as f64, // ops per busy virtual tick
        busy_ticks as f64 / (rounds as f64),  // virtual ticks per wave
        msgs / completed as f64,              // messages per op
    )
}

fn main() {
    println!("Throughput scaling — concurrent disjoint write streams (virtual time)\n");
    for (m, n) in [(2usize, 4usize), (5, 8)] {
        println!("{m}-of-{n}:");
        println!(
            "  {:>8} {:>16} {:>18} {:>12}",
            "streams", "ops per tick", "ticks per wave", "msgs/op"
        );
        println!("  {}", "-".repeat(58));
        for streams in [1usize, 2, 4, 8, 16, 32] {
            let (ops_per_tick, wave_ticks, msgs_per_op) = run(m, n, streams, 10);
            println!("  {streams:>8} {ops_per_tick:>16.3} {wave_ticks:>18.1} {msgs_per_op:>12.1}");
        }
        println!();
    }
    println!("A wave of independent writes always completes in 4 ticks (4δ, the");
    println!("write latency) regardless of stream count: no coordinator bottleneck.");
    println!("Ops-per-tick therefore scales linearly with streams, at a constant");
    println!("4n messages per operation.");
}
