//! Machine-readable wire-codec throughput baseline.
//!
//! Times `fab_wire::encode_message` and `fab_wire::decode_message` for the
//! message shapes that dominate a running cluster — small control frames
//! (Order / OrderR), block-carrying replies, and full-stripe client writes
//! at several block sizes — and writes `BENCH_wire.json` so CI and later
//! PRs can diff codec performance without parsing criterion output.
//!
//! Throughput is reported as MiB/s over the *frame* size (header + body),
//! which is the number a socket writer actually cares about; `ops_per_s`
//! is derived for the small control frames where per-message overhead,
//! not bandwidth, is the budget.
//!
//! Run: `cargo run --release -p fab-bench --bin wire_throughput [out.json]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use bytes::Bytes;
use fab_core::{BlockValue, Envelope, OpResult, Payload, Reply, Request, StripeId};
use fab_timestamp::{ProcessId, Timestamp};
use fab_wire::{decode_message, encode_message, ClientOp, Message};

/// Block sizes for the data-carrying shapes: cache-resident to streaming.
const BLOCK_SIZES: [usize; 3] = [512, 4 << 10, 64 << 10];

/// Stripe width for the full-stripe write shape (the paper's m at f=1).
const STRIPE_M: usize = 3;

/// Target wall time per measurement; iterations are calibrated to reach it.
const TARGET_NANOS: u128 = 80_000_000;

struct Sample {
    shape: &'static str,
    dir: &'static str,
    frame_bytes: usize,
    mib_per_s: f64,
    ops_per_s: f64,
}

/// Times `body` (one pass over `bytes`) and returns (MiB/s, ops/s).
fn throughput(bytes: usize, mut body: impl FnMut()) -> (f64, f64) {
    let mut iters = 4u64;
    let elapsed = loop {
        let start = Instant::now();
        for _ in 0..iters {
            body();
        }
        let nanos = start.elapsed().as_nanos().max(1);
        if nanos >= TARGET_NANOS {
            break nanos as f64 / iters as f64;
        }
        let scale = (TARGET_NANOS as f64 / nanos as f64).ceil() as u64;
        iters = (iters * scale.max(2)).min(1 << 24);
    };
    let secs = elapsed / 1e9;
    ((bytes as f64 / (1u64 << 20) as f64) / secs, 1.0 / secs)
}

fn data(len: usize, seed: usize) -> Bytes {
    Bytes::from((0..len).map(|k| (k * 31 + seed) as u8).collect::<Vec<u8>>())
}

/// The message shapes worth tracking, name + constructor.
fn shapes() -> Vec<(&'static str, Message)> {
    let ts = Timestamp::from_parts(12_345, ProcessId::new(3));
    let mut shapes: Vec<(&'static str, Message)> = vec![
        (
            "peer_order",
            Message::Peer {
                from: ProcessId::new(1),
                env: Envelope {
                    stripe: StripeId(42),
                    round: 7,
                    kind: Payload::Request(Request::Order { ts }),
                },
            },
        ),
        (
            "peer_order_reply",
            Message::Peer {
                from: ProcessId::new(2),
                env: Envelope {
                    stripe: StripeId(42),
                    round: 7,
                    kind: Payload::Reply(Reply::OrderR { status: true, seen: ts }),
                },
            },
        ),
    ];
    for &size in &BLOCK_SIZES {
        let name: &'static str = match size {
            512 => "peer_write_512B",
            s if s == 4 << 10 => "peer_write_4KiB",
            _ => "peer_write_64KiB",
        };
        shapes.push((
            name,
            Message::Peer {
                from: ProcessId::new(1),
                env: Envelope {
                    stripe: StripeId(42),
                    round: 9,
                    kind: Payload::Request(Request::Write {
                        block: fab_core::BlockValue::Data(data(size, 7)),
                        ts,
                    }),
                },
            },
        ));
        let stripe_name: &'static str = match size {
            512 => "client_write_stripe_512B",
            s if s == 4 << 10 => "client_write_stripe_4KiB",
            _ => "client_write_stripe_64KiB",
        };
        shapes.push((
            stripe_name,
            Message::ClientRequest {
                id: 99,
                op: ClientOp::WriteStripe {
                    stripe: StripeId(42),
                    blocks: (0..STRIPE_M).map(|j| data(size, j)).collect(),
                },
            },
        ));
    }
    shapes.push((
        "client_read_reply_4KiB",
        Message::ClientReply {
            id: 99,
            result: Ok(OpResult::Block(BlockValue::Data(data(4 << 10, 11)))),
        },
    ));
    shapes
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_wire.json".to_string());

    let mut samples = Vec::new();
    for (name, msg) in shapes() {
        let frame = encode_message(&msg);
        let frame_bytes = frame.len();

        let (mib, ops) = throughput(frame_bytes, || {
            black_box(encode_message(black_box(&msg)));
        });
        samples.push(Sample {
            shape: name,
            dir: "encode",
            frame_bytes,
            mib_per_s: mib,
            ops_per_s: ops,
        });

        let (mib, ops) = throughput(frame_bytes, || {
            black_box(decode_message(black_box(&frame)).expect("own encoding decodes"));
        });
        samples.push(Sample {
            shape: name,
            dir: "decode",
            frame_bytes,
            mib_per_s: mib,
            ops_per_s: ops,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"arch\": \"{}\",", std::env::consts::ARCH);
    let _ = writeln!(json, "  \"stripe_m\": {STRIPE_M},");
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"shape\": \"{}\", \"dir\": \"{}\", \"frame_bytes\": {}, \"mib_per_s\": {:.1}, \"ops_per_s\": {:.0}}}{}",
            s.shape, s.dir, s.frame_bytes, s.mib_per_s, s.ops_per_s, comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
