//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation, plus the ablations called out in DESIGN.md.
//!
//! * [`table1`] — per-operation cost measurement (latency, messages, disk
//!   I/O, bandwidth) for our algorithm and the LS97 baseline.
//! * [`workload`] — synthetic request streams (read-mostly web, write
//!   heavy, contended) for abort-rate and throughput experiments.
//!
//! Binaries (run with `cargo run -p fab-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1_costs` | Table 1 |
//! | `fig2_mttdl` | Figure 2 |
//! | `fig3_overhead` | Figure 3 |
//! | `ablation_write_strategies` | §5.2 write optimizations |
//! | `ablation_fast_read` | §4.1.2 optimistic-read contribution |
//! | `abort_rates` | §3 abort-rate discussion |
//! | `throughput_scaling` | §1.1 no-central-bottleneck claim |
//! | `latency_under_faults` | §1 graceful-degradation claim |
//! | `layout_conflicts` | §3 interleaved-layout advice |
//! | `gc_effectiveness` | §5.1 log garbage collection |
//! | `sensitivity` | reliability-model parameter elasticities |
//!
//! Criterion benches (`cargo bench -p fab-bench`) cover erasure-code
//! throughput, protocol operation latency, reliability-model evaluation,
//! and volume I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table1;
pub mod workload;

pub use table1::{measure_ls97, measure_ours, render, PaperCosts, Table1Row};
pub use workload::{drive_concurrent, generate, run_workload, Op, WorkloadSpec, WorkloadStats};
