//! Table 1: per-operation cost measurement.
//!
//! The paper's Table 1 states, for every operation of the storage register
//! and for the LS97 baseline, five costs: latency (in one-way delays δ),
//! message count, disk reads, disk writes, and network bandwidth (in block
//! sizes B). This module *measures* each row on the deterministic
//! simulator with unit delay (δ = 1) and compares against the paper's
//! formulas.
//!
//! Scenario construction for the slow ("/S") rows:
//!
//! * **read/S** — a partial write is emulated by injecting a bare `Order`
//!   at a higher timestamp into one replica (exactly the state left by a
//!   coordinator that crashed between its two write phases); the next
//!   read's optimistic phase sees `ord-ts > max-ts` and runs recovery.
//! * **write/S** — `p_j` misses a complete stripe write behind a transient
//!   partition, so the next `write-block` to block j reads a stale `ts_j`
//!   from it; every current replica refuses the `Modify` round
//!   (`ts_j ≠ max-ts`) and the coordinator falls back to
//!   `slow-write-block` (`p_j` is partitioned away again during recovery,
//!   spending exactly the f = 1 fault budget). Message counts for this row
//!   run slightly below the paper's pessimistic `8n` because the
//!   partitioned replica cannot answer two of the four rounds.

use bytes::Bytes;
use fab_baseline::BaselineCluster;
use fab_core::{
    Envelope, GcPolicy, OpCosts, OpResult, Payload, RegisterConfig, Request, SimCluster, StripeId,
    WriteStrategy,
};
use fab_simnet::SimConfig;
use fab_timestamp::{ProcessId, Timestamp};

/// The paper's symbolic cost formulas, instantiated for (m, n, B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCosts {
    /// Latency in δ.
    pub latency: u64,
    /// Message count.
    pub messages: u64,
    /// Disk block reads.
    pub disk_reads: u64,
    /// Disk block writes.
    pub disk_writes: u64,
    /// Network bandwidth in units of B.
    pub bandwidth_blocks: u64,
}

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Operation label, matching the paper's column heading.
    pub label: String,
    /// The paper's formula values.
    pub paper: PaperCosts,
    /// What the simulator measured.
    pub measured: OpCosts,
    /// Block size used (for bandwidth normalization).
    pub block_size: usize,
}

impl Table1Row {
    /// Measured bandwidth in block units (rounded down).
    pub fn measured_bandwidth_blocks(&self) -> u64 {
        self.measured.bytes / self.block_size as u64
    }
}

fn cfg(m: usize, n: usize, block_size: usize) -> RegisterConfig {
    // GC is disabled so its fire-and-forget messages do not pollute the
    // per-operation message counts (the paper's table has no GC either).
    RegisterConfig::new(m, n, block_size)
        .unwrap()
        .with_gc(GcPolicy::Disabled)
}

fn stripe_data(m: usize, block_size: usize, seed: u8) -> Vec<Bytes> {
    (0..m)
        .map(|i| Bytes::from(vec![seed.wrapping_add(i as u8); block_size]))
        .collect()
}

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i as u32)
}

/// Injects the residue of a coordinator that crashed between its `Order`
/// and `Write` phases: replica `p_0` receives a bare `Order` at a
/// timestamp just above anything in the system, then the clock advances
/// past it (as real time would after a crash) so the next operation's
/// `newTS` orders after the partial write. `p_0` is chosen because its
/// reply is always within the first m-quorum the reading coordinator
/// collects, guaranteeing the optimistic phase observes the partial write.
fn inject_partial_order(cluster: &mut SimCluster, stripe: StripeId) {
    let victim = pid(0);
    let at = cluster.sim().now();
    let ts = Timestamp::from_parts(at + 5, ProcessId::new(99));
    cluster
        .sim_mut()
        .schedule_call(at, victim, move |brick, _ctx| {
            let reply = brick.replica(stripe).handle(&Request::Order { ts });
            debug_assert!(reply.is_some());
        });
    cluster.sim_mut().run_until(at + 50);
}

/// Measures all seven rows of Table 1 for our algorithm at (m, n) with the
/// given block size and write strategy.
pub fn measure_ours(
    m: usize,
    n: usize,
    block_size: usize,
    strategy: WriteStrategy,
) -> Vec<Table1Row> {
    let k = (n - m) as u64;
    let nn = n as u64;
    let mm = m as u64;
    let s = StripeId(0);
    let mut rows = Vec::new();

    // --- stripe read/F ------------------------------------------------
    {
        let mut c = SimCluster::new(cfg(m, n, block_size), SimConfig::ideal(11));
        let data = stripe_data(m, block_size, 1);
        c.write_stripe(pid(0), s, data);
        let (done, costs) = c.measure_op(pid(1), move |b, ctx| {
            b.read_stripe(ctx, s);
        });
        assert!(
            done.result.is_ok() && !done.recovered,
            "must take the fast path"
        );
        rows.push(Table1Row {
            label: "stripe read/F".into(),
            paper: PaperCosts {
                latency: 2,
                messages: 2 * nn,
                disk_reads: mm,
                disk_writes: 0,
                bandwidth_blocks: mm,
            },
            measured: costs,
            block_size,
        });
    }

    // --- stripe write ---------------------------------------------------
    {
        let mut c = SimCluster::new(cfg(m, n, block_size), SimConfig::ideal(12));
        c.write_stripe(pid(0), s, stripe_data(m, block_size, 1));
        let data = stripe_data(m, block_size, 2);
        let (done, costs) = c.measure_op(pid(1), move |b, ctx| {
            b.write_stripe(ctx, s, data).unwrap();
        });
        assert_eq!(done.result, OpResult::Written);
        rows.push(Table1Row {
            label: "stripe write".into(),
            paper: PaperCosts {
                latency: 4,
                messages: 4 * nn,
                disk_reads: 0,
                disk_writes: nn,
                bandwidth_blocks: nn,
            },
            measured: costs,
            block_size,
        });
    }

    // --- stripe read/S ---------------------------------------------------
    {
        let mut c = SimCluster::new(cfg(m, n, block_size), SimConfig::ideal(13));
        c.write_stripe(pid(0), s, stripe_data(m, block_size, 1));
        inject_partial_order(&mut c, s);
        let (done, costs) = c.measure_op(pid(1), move |b, ctx| {
            b.read_stripe(ctx, s);
        });
        assert!(done.result.is_ok(), "recovery must succeed: {done:?}");
        assert!(done.recovered, "must take the slow path");
        rows.push(Table1Row {
            label: "stripe read/S".into(),
            paper: PaperCosts {
                latency: 6,
                messages: 6 * nn,
                disk_reads: nn + mm,
                disk_writes: nn,
                bandwidth_blocks: 2 * nn + mm,
            },
            measured: costs,
            block_size,
        });
    }

    // --- block read/F ---------------------------------------------------
    {
        let mut c = SimCluster::new(cfg(m, n, block_size), SimConfig::ideal(14));
        c.write_stripe(pid(0), s, stripe_data(m, block_size, 1));
        let (done, costs) = c.measure_op(pid(1), move |b, ctx| {
            b.read_block(ctx, s, 0).unwrap();
        });
        assert!(done.result.is_ok() && !done.recovered);
        rows.push(Table1Row {
            label: "block read/F".into(),
            paper: PaperCosts {
                latency: 2,
                messages: 2 * nn,
                disk_reads: 1,
                disk_writes: 0,
                bandwidth_blocks: 1,
            },
            measured: costs,
            block_size,
        });
    }

    // --- block write/F ---------------------------------------------------
    {
        let mut c = SimCluster::new(
            cfg(m, n, block_size).with_write_strategy(strategy),
            SimConfig::ideal(15),
        );
        c.write_stripe(pid(0), s, stripe_data(m, block_size, 1));
        let block = Bytes::from(vec![0xE1; block_size]);
        let (done, costs) = c.measure_op(pid(1), move |b, ctx| {
            b.write_block(ctx, s, 0, block).unwrap();
        });
        assert_eq!(done.result, OpResult::Written);
        assert!(!done.recovered, "must take the fast write path");
        rows.push(Table1Row {
            label: "block write/F".into(),
            paper: PaperCosts {
                latency: 4,
                messages: 4 * nn,
                disk_reads: k + 1,
                disk_writes: k + 1,
                bandwidth_blocks: 2 * nn + 1,
            },
            measured: costs,
            block_size,
        });
    }

    // --- block read/S ---------------------------------------------------
    {
        let mut c = SimCluster::new(cfg(m, n, block_size), SimConfig::ideal(16));
        c.write_stripe(pid(0), s, stripe_data(m, block_size, 1));
        inject_partial_order(&mut c, s);
        let (done, costs) = c.measure_op(pid(1), move |b, ctx| {
            b.read_block(ctx, s, 0).unwrap();
        });
        assert!(done.result.is_ok() && done.recovered);
        rows.push(Table1Row {
            label: "block read/S".into(),
            paper: PaperCosts {
                latency: 6,
                messages: 6 * nn,
                disk_reads: nn + 1,
                disk_writes: nn,
                bandwidth_blocks: 2 * nn + 1,
            },
            measured: costs,
            block_size,
        });
    }

    // --- block write/S ---------------------------------------------------
    {
        // The slow block write needs a Modify round that fails uniformly.
        // Scenario: p_0 misses one complete stripe write (transient
        // partition), so a later write-block to block 0 reads a stale
        // ts_j from p_0; every current replica then refuses the Modify
        // (`ts_j != max-ts`), p_0 alone would apply it — and p_0 is
        // partitioned away again for the recovery rounds, exactly the
        // f = 1 fault budget. The coordinator falls back to
        // slow-write-block: Order&Read + Write over the current replicas.
        let mut c = SimCluster::new(
            cfg(m, n, block_size).with_write_strategy(strategy),
            SimConfig::ideal(17),
        );
        c.write_stripe(pid(1), s, stripe_data(m, block_size, 1));
        let others: Vec<ProcessId> = (1..n).map(pid).collect();
        // p_0 misses v2.
        let t = c.sim().now();
        c.sim_mut().schedule_partition(t, &[&[pid(0)], &others]);
        c.sim_mut().run_until(t + 1);
        c.write_stripe(pid(1), s, stripe_data(m, block_size, 2));
        let t = c.sim().now();
        c.sim_mut().schedule_heal(t);
        c.sim_mut().run_until(t + 1);
        // The measured op starts at T = now: its Modify round completes at
        // T+4; partition p_0 away again at T+4 so its lone "applied"
        // state cannot poison the recovery quorum (it is the f-th fault).
        let t0 = c.sim().now();
        c.sim_mut()
            .schedule_partition(t0 + 4, &[&[pid(0)], &others]);
        let block = Bytes::from(vec![0xB2; block_size]);
        let (done, costs) = c.measure_op(pid(1), move |b, ctx| {
            b.write_block(ctx, s, 0, block).unwrap();
        });
        assert_eq!(done.result, OpResult::Written);
        assert!(done.recovered, "must fall back to slow-write-block");
        let t = c.sim().now();
        c.sim_mut().schedule_heal(t);
        c.sim_mut().run_until(t + 1);
        rows.push(Table1Row {
            label: "block write/S".into(),
            paper: PaperCosts {
                latency: 8,
                messages: 8 * nn,
                disk_reads: k + nn + 1,
                disk_writes: k + nn + 1,
                bandwidth_blocks: 4 * nn + 1,
            },
            measured: costs,
            block_size,
        });
    }

    rows
}

/// Measures the two LS97 baseline rows on `n` replicas.
pub fn measure_ls97(n: usize, block_size: usize) -> Vec<Table1Row> {
    let nn = n as u64;
    let mut rows = Vec::new();
    let mut c = BaselineCluster::new(n, SimConfig::ideal(21));
    c.write(pid(0), Bytes::from(vec![1u8; block_size]));

    let (_, costs) = c.measure(pid(1), |node, ctx| {
        node.read(ctx);
    });
    rows.push(Table1Row {
        label: "LS97 read".into(),
        paper: PaperCosts {
            latency: 4,
            messages: 4 * nn,
            disk_reads: nn,
            disk_writes: nn,
            bandwidth_blocks: 2 * nn,
        },
        measured: OpCosts {
            latency: costs.latency,
            messages: costs.messages,
            bytes: costs.bytes,
            disk_reads: costs.disk_reads,
            disk_writes: costs.disk_writes,
        },
        block_size,
    });

    let block = Bytes::from(vec![2u8; block_size]);
    let (_, costs) = c.measure(pid(2), move |node, ctx| {
        node.write(ctx, block);
    });
    rows.push(Table1Row {
        label: "LS97 write".into(),
        paper: PaperCosts {
            latency: 4,
            messages: 4 * nn,
            disk_reads: 0,
            disk_writes: nn,
            bandwidth_blocks: nn,
        },
        measured: OpCosts {
            latency: costs.latency,
            messages: costs.messages,
            bytes: costs.bytes,
            disk_reads: costs.disk_reads,
            disk_writes: costs.disk_writes,
        },
        block_size,
    });
    rows
}

/// Renders rows as an aligned text table (paper value / measured value).
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>14}\n",
        "operation", "latency(δ)", "#messages", "#disk reads", "#disk writes", "net b/w (B)"
    ));
    out.push_str(&"-".repeat(84));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>7}/{:<4} {:>7}/{:<4} {:>7}/{:<4} {:>7}/{:<4} {:>8}/{:<5}\n",
            r.label,
            r.paper.latency,
            r.measured.latency,
            r.paper.messages,
            r.measured.messages,
            r.paper.disk_reads,
            r.measured.disk_reads,
            r.paper.disk_writes,
            r.measured.disk_writes,
            r.paper.bandwidth_blocks,
            r.measured_bandwidth_blocks(),
        ));
    }
    out.push_str("(each cell: paper formula / measured on the simulator)\n");
    out
}

/// Sends a raw request envelope from a harness-controlled brick — exposed
/// for protocol-poking tests.
pub fn raw_envelope(stripe: StripeId, round: u64, req: Request) -> Envelope {
    Envelope {
        stripe,
        round,
        kind: Payload::Request(req),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline Table 1 check: every failure-free row measured on the
    /// 5-of-8 system matches the paper's latency and message formulas
    /// exactly, and the fast read beats LS97 by one round trip.
    #[test]
    fn table1_exact_for_5_of_8() {
        let rows = measure_ours(5, 8, 256, WriteStrategy::Paper);
        for r in &rows {
            assert_eq!(
                r.measured.latency, r.paper.latency,
                "{}: latency mismatch",
                r.label
            );
            if r.label == "block write/S" {
                // The scenario's partitioned replica cannot answer two
                // rounds; the paper's 8n is the pessimistic all-answer
                // count.
                assert!(
                    r.measured.messages <= r.paper.messages
                        && r.measured.messages >= r.paper.messages - 2,
                    "{}: {} vs paper {}",
                    r.label,
                    r.measured.messages,
                    r.paper.messages
                );
            } else {
                assert_eq!(
                    r.measured.messages, r.paper.messages,
                    "{}: message-count mismatch",
                    r.label
                );
            }
        }
        // Disk I/O matches exactly on the failure-free rows.
        for label in [
            "stripe read/F",
            "stripe write",
            "block read/F",
            "block write/F",
        ] {
            let r = rows.iter().find(|r| r.label == label).unwrap();
            assert_eq!(r.measured.disk_reads, r.paper.disk_reads, "{label} reads");
            assert_eq!(
                r.measured.disk_writes, r.paper.disk_writes,
                "{label} writes"
            );
        }
        let ls97 = measure_ls97(8, 256);
        let our_read = rows.iter().find(|r| r.label == "stripe read/F").unwrap();
        let their_read = &ls97[0];
        assert_eq!(their_read.measured.latency, 4);
        assert_eq!(
            our_read.measured.latency + 2,
            their_read.measured.latency,
            "our fast read is one round (2δ) cheaper than LS97's"
        );
        assert!(our_read.measured.disk_reads < their_read.measured.disk_reads);
    }

    #[test]
    fn table1_holds_for_other_configs() {
        for (m, n) in [(2, 4), (3, 5), (5, 7)] {
            let rows = measure_ours(m, n, 128, WriteStrategy::Paper);
            for r in &rows {
                assert_eq!(r.measured.latency, r.paper.latency, "({m},{n}) {}", r.label);
                if r.label == "block write/S" {
                    assert!(
                        r.measured.messages <= r.paper.messages
                            && r.measured.messages + 2 >= r.paper.messages,
                        "({m},{n}) {}: {} vs {}",
                        r.label,
                        r.measured.messages,
                        r.paper.messages
                    );
                } else {
                    assert_eq!(
                        r.measured.messages, r.paper.messages,
                        "({m},{n}) {}",
                        r.label
                    );
                }
            }
        }
    }

    #[test]
    fn delta_strategy_cuts_block_write_bandwidth() {
        let paper = measure_ours(5, 8, 1024, WriteStrategy::Paper);
        let delta = measure_ours(5, 8, 1024, WriteStrategy::Delta);
        let f = |rows: &[Table1Row]| {
            rows.iter()
                .find(|r| r.label == "block write/F")
                .unwrap()
                .measured
                .bytes
        };
        assert!(
            f(&delta) * 2 < f(&paper),
            "delta {} vs paper {}",
            f(&delta),
            f(&paper)
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = measure_ours(2, 4, 64, WriteStrategy::Paper);
        let txt = render(&rows);
        for label in [
            "stripe read/F",
            "stripe write",
            "stripe read/S",
            "block read/F",
            "block write/F",
            "block read/S",
            "block write/S",
        ] {
            assert!(txt.contains(label), "missing {label} in:\n{txt}");
        }
    }
}
