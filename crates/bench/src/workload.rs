//! Synthetic workload generators.
//!
//! The paper's §3 justifies abort-on-conflict by appeal to real-world I/O
//! traces ("we have found no concurrent write-write or read-write accesses
//! to the same block of data"). Those traces are not available; instead
//! these generators produce controlled synthetic workloads so the
//! abort-rate experiments can *vary* the quantity the traces held at zero
//! — conflict probability — and measure its effect.

use bytes::Bytes;
use fab_core::{AbortReason, OpResult, RegisterConfig, SimCluster, StripeId};
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mix and locality of a generated request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Fraction of operations that are reads (a web workload is ~0.95+,
    /// the paper's motivating case for erasure coding).
    pub read_fraction: f64,
    /// Number of distinct stripes touched.
    pub stripes: u64,
    /// Zipf-like skew: 0.0 = uniform, higher concentrates on few stripes
    /// (more conflicts).
    pub skew: f64,
    /// Operations to generate.
    pub operations: usize,
}

impl WorkloadSpec {
    /// A read-mostly web-server-like workload (§1.2: "read-intensive
    /// workloads (such as Web server workloads)").
    pub fn web(stripes: u64, operations: usize) -> Self {
        WorkloadSpec {
            read_fraction: 0.95,
            stripes,
            skew: 0.8,
            operations,
        }
    }

    /// A write-heavy uniform workload (worst case for aborts).
    pub fn write_heavy(stripes: u64, operations: usize) -> Self {
        WorkloadSpec {
            read_fraction: 0.3,
            stripes,
            skew: 0.0,
            operations,
        }
    }
}

/// One generated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Read a whole stripe.
    ReadStripe(StripeId),
    /// Write a whole stripe (payload seed).
    WriteStripe(StripeId, u8),
    /// Read one block.
    ReadBlock(StripeId, usize),
    /// Write one block (payload seed).
    WriteBlock(StripeId, usize, u8),
}

impl Op {
    /// The stripe this operation touches.
    pub fn stripe(&self) -> StripeId {
        match self {
            Op::ReadStripe(s) | Op::WriteStripe(s, _) => *s,
            Op::ReadBlock(s, _) | Op::WriteBlock(s, _, _) => *s,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::WriteStripe(..) | Op::WriteBlock(..))
    }
}

/// Generates a request stream from a spec, deterministically from `seed`.
pub fn generate(spec: &WorkloadSpec, m: usize, seed: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(spec.operations);
    for i in 0..spec.operations {
        let stripe = StripeId(pick_skewed(&mut rng, spec.stripes, spec.skew));
        let read = rng.gen::<f64>() < spec.read_fraction;
        let whole = rng.gen::<f64>() < 0.25;
        let op = match (read, whole) {
            (true, true) => Op::ReadStripe(stripe),
            (true, false) => Op::ReadBlock(stripe, rng.gen_range(0..m)),
            (false, true) => Op::WriteStripe(stripe, i as u8),
            (false, false) => Op::WriteBlock(stripe, rng.gen_range(0..m), i as u8),
        };
        ops.push(op);
    }
    ops
}

/// Skewed stripe pick: with probability `skew`, land in the hot 10% of
/// stripes; otherwise uniform.
fn pick_skewed(rng: &mut SmallRng, stripes: u64, skew: f64) -> u64 {
    if stripes > 10 && rng.gen::<f64>() < skew {
        rng.gen_range(0..stripes.div_ceil(10))
    } else {
        rng.gen_range(0..stripes)
    }
}

/// Outcome statistics of a driven workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Operations that completed successfully.
    pub ok: u64,
    /// Operations that aborted with a timestamp conflict.
    pub aborted: u64,
    /// Operations that needed the recovery path.
    pub recovered: u64,
}

impl WorkloadStats {
    /// Fraction of operations that aborted.
    pub fn abort_rate(&self) -> f64 {
        let total = self.ok + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }
}

/// Drives a workload with `concurrency` simultaneous coordinators: at each
/// step, `concurrency` consecutive operations are launched at the same
/// simulated instant from distinct bricks, exercising the conflict paths
/// of §3.
pub fn drive_concurrent(
    cluster: &mut SimCluster,
    ops: &[Op],
    concurrency: usize,
    block_size: usize,
) -> WorkloadStats {
    assert!(concurrency >= 1);
    let n = cluster.config().n();
    let m = cluster.config().m();
    let mut stats = WorkloadStats::default();
    for batch in ops.chunks(concurrency) {
        let at = cluster.sim().now();
        for (slot, op) in batch.iter().enumerate() {
            let coordinator = ProcessId::new((slot % n) as u32);
            let op = op.clone();
            let bs = block_size;
            cluster
                .sim_mut()
                .schedule_call(at, coordinator, move |brick, ctx| match op {
                    Op::ReadStripe(s) => {
                        brick.read_stripe(ctx, s);
                    }
                    Op::WriteStripe(s, seed) => {
                        let blocks: Vec<Bytes> = (0..m)
                            .map(|i| Bytes::from(vec![seed.wrapping_add(i as u8); bs]))
                            .collect();
                        brick.write_stripe(ctx, s, blocks).unwrap();
                    }
                    Op::ReadBlock(s, j) => {
                        brick.read_block(ctx, s, j).unwrap();
                    }
                    Op::WriteBlock(s, j, seed) => {
                        brick
                            .write_block(ctx, s, j, Bytes::from(vec![seed; bs]))
                            .unwrap();
                    }
                });
        }
        cluster.sim_mut().run_until_idle();
        for (_, c) in cluster.drain_all_completions() {
            match c.result {
                OpResult::Aborted(AbortReason::Conflict) => stats.aborted += 1,
                OpResult::Aborted(_) => stats.aborted += 1,
                _ => stats.ok += 1,
            }
            if c.recovered {
                stats.recovered += 1;
            }
        }
    }
    stats
}

/// Convenience: build a cluster, generate, and drive in one call.
pub fn run_workload(
    m: usize,
    n: usize,
    block_size: usize,
    spec: &WorkloadSpec,
    concurrency: usize,
    seed: u64,
) -> WorkloadStats {
    let cfg = RegisterConfig::new(m, n, block_size).unwrap();
    let mut cluster = SimCluster::new(cfg, SimConfig::ideal(seed));
    let ops = generate(spec, m, seed);
    drive_concurrent(&mut cluster, &ops, concurrency, block_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_respects_mix() {
        let spec = WorkloadSpec::web(100, 2000);
        let a = generate(&spec, 5, 7);
        let b = generate(&spec, 5, 7);
        assert_eq!(a, b);
        let writes = a.iter().filter(|o| o.is_write()).count();
        let frac = writes as f64 / a.len() as f64;
        assert!((0.02..0.10).contains(&frac), "write fraction {frac}");
        assert!(a.iter().all(|o| o.stripe().0 < 100));
    }

    #[test]
    fn sequential_workload_never_aborts() {
        let spec = WorkloadSpec {
            read_fraction: 0.5,
            stripes: 8,
            skew: 0.0,
            operations: 120,
        };
        let stats = run_workload(2, 4, 32, &spec, 1, 3);
        assert_eq!(stats.aborted, 0, "{stats:?}");
        assert_eq!(stats.ok, 120);
    }

    #[test]
    fn heavy_contention_aborts_some_but_completes_all() {
        let spec = WorkloadSpec {
            read_fraction: 0.2,
            stripes: 1, // every op hits the same stripe
            skew: 0.0,
            operations: 64,
        };
        let stats = run_workload(2, 4, 32, &spec, 4, 9);
        assert_eq!(stats.ok + stats.aborted, 64, "every op terminates");
        assert!(stats.aborted > 0, "single-stripe contention must conflict");
    }

    #[test]
    fn spreading_stripes_reduces_aborts() {
        let mk = |stripes| WorkloadSpec {
            read_fraction: 0.3,
            stripes,
            skew: 0.0,
            operations: 200,
        };
        let contended = run_workload(2, 4, 16, &mk(1), 4, 11).abort_rate();
        let spread = run_workload(2, 4, 16, &mk(64), 4, 11).abort_rate();
        assert!(
            spread < contended,
            "spread {spread} !< contended {contended}"
        );
    }
}
