//! Strict-linearizability checking for read/write register histories.
//!
//! The storage register promises *strict linearizability* (Aguilera &
//! Frølund, HPL-2003-241; §3 of the DSN 2004 paper): operations appear to
//! execute atomically in an order consistent with real time, and a
//! *partial* operation — one whose issuer crashed before a response —
//! appears to take effect before the crash or not at all. This crate
//! verifies the property on *recorded histories*: feed it every
//! operation's invocation time, end event (response, abort, or crash) and
//! value, and it decides whether a **conforming total order** of the
//! observed values exists (Definition 5 in the paper's Appendix B).
//!
//! For a register whose written values are unique, Definition 5 reduces to
//! acyclicity of a value-precedence graph:
//!
//! * `nil` (the initial value) precedes every observed value,
//! * if an operation on value `v` *ends* before an operation on value `v′`
//!   *starts*, then `v` precedes `v′` (reads and writes alike — all four
//!   of Definition 5's implications have this shape once values are
//!   distinct),
//! * only *observable* values participate: values returned by successful
//!   reads, plus values whose write returned OK. A partial or aborted
//!   write that nobody ever read simply never happened.
//!
//! A cycle means no total order can satisfy real time — e.g. the paper's
//! Figure 5 anomaly, where a partial write surfaces *after* a later read
//! already missed it.
//!
//! # Examples
//!
//! ```
//! use fab_checker::{History, OpRecord};
//!
//! let mut h = History::new();
//! h.push(OpRecord::write(1, 0, 5).committed());   // write v1 over [0,5], OK
//! h.push(OpRecord::read(1, 10, 12));              // read v1 over [10,12]
//! h.push(OpRecord::write(2, 13, 20).committed()); // write v2
//! h.push(OpRecord::read(2, 21, 22));              // read v2
//! assert!(h.check().is_ok());
//!
//! // Figure 5: a partial write (crash at t=10) surfacing after a read
//! // that missed it.
//! let mut h = History::new();
//! h.push(OpRecord::write(1, 0, 5).committed());
//! h.push(OpRecord::write(2, 6, 10)); // partial: ends at its crash
//! h.push(OpRecord::read(1, 20, 30));
//! h.push(OpRecord::read(2, 40, 50)); // the resurrected value
//! assert!(h.check().is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A value identity. `0` is reserved for `nil`, the register's initial
/// value; every write must use a distinct non-zero id.
pub type ValueId = u64;

/// The id of the initial register value.
pub const NIL: ValueId = 0;

/// One operation of a recorded history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord {
    /// The value written or read.
    pub value: ValueId,
    /// Invocation time.
    pub start: u64,
    /// End-event time: response, abort, or issuer crash. `None` if the
    /// operation was still pending when the history ended (it then
    /// imposes no order on later operations).
    pub end: Option<u64>,
    /// `true` for a write that returned OK (its value is observable even
    /// if never read).
    pub committed: bool,
    /// `true` for a read event.
    pub is_read: bool,
}

impl OpRecord {
    /// A successful read of `value` over `[start, end]`.
    #[must_use]
    pub fn read(value: ValueId, start: u64, end: u64) -> Self {
        OpRecord {
            value,
            start,
            end: Some(end),
            committed: false,
            is_read: true,
        }
    }

    /// A write of `value` over `[start, end]` whose outcome is not (yet)
    /// successful: aborted, or crashed at `end`. Chain
    /// [`committed`](OpRecord::committed) for a successful write.
    #[must_use]
    pub fn write(value: ValueId, start: u64, end: u64) -> Self {
        OpRecord {
            value,
            start,
            end: Some(end),
            committed: false,
            is_read: false,
        }
    }

    /// A write of `value` invoked at `start` and still pending at the end
    /// of the history (issuer alive, response outstanding).
    #[must_use]
    pub fn pending_write(value: ValueId, start: u64) -> Self {
        OpRecord {
            value,
            start,
            end: None,
            committed: false,
            is_read: false,
        }
    }

    /// Marks this write as having returned OK.
    #[must_use]
    pub fn committed(mut self) -> Self {
        self.committed = true;
        self
    }
}

/// A violation of strict linearizability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Two values on the detected precedence cycle.
    pub cycle_values: (ValueId, ValueId),
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Violation {}

/// A recorded history of register operations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    ops: Vec<OpRecord>,
}

impl History {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        History::default()
    }

    /// Appends an operation record.
    pub fn push(&mut self, op: OpRecord) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    #[must_use]
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Decides whether a conforming total order exists (Definition 5).
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] naming two values on a precedence cycle if
    /// the history is not strictly linearizable.
    pub fn check(&self) -> Result<(), Violation> {
        // Observable values: read, or committed-written.
        let mut observable: HashMap<ValueId, usize> = HashMap::new();
        observable.insert(NIL, 0);
        for op in &self.ops {
            if op.is_read || op.committed {
                let next = observable.len();
                observable.entry(op.value).or_insert(next);
            }
        }
        let ids: Vec<ValueId> = {
            let mut v: Vec<(ValueId, usize)> = observable.iter().map(|(&k, &i)| (k, i)).collect();
            v.sort_by_key(|&(_, i)| i);
            v.into_iter().map(|(k, _)| k).collect()
        };
        let n = ids.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        // nil precedes every other observable value.
        for i in 1..n {
            adj[0].push(i);
        }
        // Real-time precedence between distinct observable values.
        for a in &self.ops {
            let Some(end_a) = a.end else { continue };
            let Some(&ia) = observable.get(&a.value) else {
                continue;
            };
            for b in &self.ops {
                if a.value == b.value {
                    continue;
                }
                let Some(&ib) = observable.get(&b.value) else {
                    continue;
                };
                if end_a < b.start {
                    adj[ia].push(ib);
                }
            }
        }
        // Cycle detection by iterative three-color DFS.
        let mut color = vec![0u8; n];
        for root in 0..n {
            if color[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < adj[node].len() {
                    let succ = adj[node][*next];
                    *next += 1;
                    match color[succ] {
                        0 => {
                            color[succ] = 1;
                            stack.push((succ, 0));
                        }
                        1 => {
                            return Err(Violation {
                                cycle_values: (ids[node], ids[succ]),
                                message: format!(
                                    "values {} and {} are mutually ordered by real time: \
                                     no conforming total order exists",
                                    ids[node], ids[succ]
                                ),
                            });
                        }
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<OpRecord> for History {
    fn from_iter<T: IntoIterator<Item = OpRecord>>(iter: T) -> Self {
        History {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<OpRecord> for History {
    fn extend<T: IntoIterator<Item = OpRecord>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_read_nil_histories_pass() {
        assert!(History::new().check().is_ok());
        let h: History = [OpRecord::read(NIL, 0, 1)].into_iter().collect();
        assert!(h.check().is_ok());
    }

    #[test]
    fn sequential_history_passes() {
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::read(1, 6, 8),
            OpRecord::write(2, 9, 14).committed(),
            OpRecord::read(2, 15, 16),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_ok());
    }

    #[test]
    fn stale_read_fails() {
        // v2 committed and read, then a later read returns v1.
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::write(2, 6, 10).committed(),
            OpRecord::read(2, 11, 12),
            OpRecord::read(1, 13, 14),
        ]
        .into_iter()
        .collect();
        let e = h.check().unwrap_err();
        assert!(e.to_string().contains("no conforming total order"));
    }

    #[test]
    fn read_of_nil_after_committed_write_fails() {
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::read(NIL, 6, 8),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_err());
    }

    #[test]
    fn concurrent_operations_may_order_either_way() {
        // Two overlapping writes and overlapping reads: any outcome is
        // fine because no real-time edges exist between them.
        let h: History = [
            OpRecord::write(1, 0, 10).committed(),
            OpRecord::write(2, 5, 15).committed(),
            OpRecord::read(2, 8, 20),
            OpRecord::read(1, 9, 12),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_ok());
    }

    #[test]
    fn figure5_partial_write_resurrection_fails() {
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::write(2, 6, 10), // partial: crash at 10
            OpRecord::read(1, 20, 30),
            OpRecord::read(2, 40, 50),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_err());
    }

    #[test]
    fn partial_write_rolled_forward_immediately_passes() {
        // The first read after the crash already sees v2: legal.
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::write(2, 6, 10), // partial
            OpRecord::read(2, 20, 30),
            OpRecord::read(2, 40, 50),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_ok());
    }

    #[test]
    fn partial_write_rolled_back_forever_passes() {
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::write(2, 6, 10), // partial, never observed
            OpRecord::read(1, 20, 30),
            OpRecord::read(1, 40, 50),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_ok());
    }

    #[test]
    fn unobserved_aborted_write_constrains_nothing() {
        // An aborted write's value that is never read does not even join
        // the order; a later read of an older value is fine.
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::write(2, 6, 10), // aborted, never observed
            OpRecord::read(1, 11, 12),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_ok());
    }

    #[test]
    fn pending_write_imposes_no_order() {
        // A still-pending write may surface at any time (it has no end
        // event yet) — reading it before or after anything is fine.
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::pending_write(2, 6),
            OpRecord::read(1, 20, 30),
            OpRecord::read(2, 40, 50),
        ]
        .into_iter()
        .collect();
        assert!(h.check().is_ok());
    }

    #[test]
    fn write_read_inversion_fails() {
        // A read that returns v2 strictly before v2's write is invoked.
        let h: History = [
            OpRecord::read(2, 0, 3),
            OpRecord::write(2, 10, 15).committed(),
        ]
        .into_iter()
        .collect();
        // read(v2) ends before write(v2) starts — same value, no edge; but
        // nil → 2 and read-of-2 before... this needs a nil read to anchor:
        // a bare future-read is acceptable to the value-order definition
        // (the write just linearizes before the read despite real time —
        // Definition 5 constrains only ordered *distinct* values).
        assert!(h.check().is_ok());
        // With an interposed distinct value the inversion becomes visible:
        let h: History = [
            OpRecord::read(2, 0, 3),
            OpRecord::write(1, 4, 6).committed(),
            OpRecord::read(1, 7, 8),
            OpRecord::write(2, 10, 15).committed(),
        ]
        .into_iter()
        .collect();
        // read(2) < write(1) ⇒ 2 before 1; read(1) < write(2) ⇒ 1 before 2.
        assert!(h.check().is_err());
    }

    #[test]
    fn violation_reports_cycle_values() {
        let h: History = [
            OpRecord::write(1, 0, 5).committed(),
            OpRecord::write(2, 6, 10).committed(),
            OpRecord::read(2, 11, 12),
            OpRecord::read(1, 13, 14),
        ]
        .into_iter()
        .collect();
        let v = h.check().unwrap_err();
        let (a, b) = v.cycle_values;
        assert!(
            [a, b].contains(&1) || [a, b].contains(&2),
            "cycle should involve the conflicting values: {v:?}"
        );
    }

    #[test]
    fn collection_traits() {
        let mut h = History::new();
        h.extend([OpRecord::read(NIL, 0, 1)]);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
        assert_eq!(h.ops().len(), 1);
    }
}
