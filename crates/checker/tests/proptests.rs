//! Property tests for the strict-linearizability checker: histories
//! generated from a real sequential register must always pass; histories
//! with an injected stale read must always fail.

use fab_checker::{History, OpRecord, NIL};
use proptest::prelude::*;

/// Generates a history by simulating a sequential register: operations
/// execute one after another with random durations and idle gaps, so the
/// history is trivially linearizable.
fn sequential_history(ops: &[(bool, u64, u64)]) -> (History, Vec<u64>) {
    // ops: (is_write, duration, gap)
    let mut h = History::new();
    let mut now = 0u64;
    let mut current = NIL;
    let mut next_value = 1u64;
    let mut read_times = Vec::new();
    for &(is_write, duration, gap) in ops {
        let start = now;
        let end = now + duration;
        if is_write {
            h.push(OpRecord::write(next_value, start, end).committed());
            current = next_value;
            next_value += 1;
        } else {
            h.push(OpRecord::read(current, start, end));
            read_times.push(start);
        }
        now = end + 1 + gap;
    }
    (h, read_times)
}

proptest! {
    #[test]
    fn sequential_histories_always_pass(
        ops in proptest::collection::vec((any::<bool>(), 0u64..5, 0u64..5), 1..60)
    ) {
        let (h, _) = sequential_history(&ops);
        prop_assert!(h.check().is_ok(), "{h:?}");
    }

    #[test]
    fn stale_read_injection_always_fails(
        ops in proptest::collection::vec((any::<bool>(), 0u64..5, 0u64..5), 4..60),
        pick in any::<prop::sample::Index>(),
    ) {
        // Need at least two committed writes so a read can be stale.
        let writes = ops.iter().filter(|(w, _, _)| *w).count();
        prop_assume!(writes >= 2);
        let (mut h, _) = sequential_history(&ops);
        // Find the last write's value and an earlier value, then append a
        // read of the earlier value after everything — provably stale.
        let committed: Vec<u64> = h
            .ops()
            .iter()
            .filter(|o| !o.is_read && o.committed)
            .map(|o| o.value)
            .collect();
        let last = *committed.last().unwrap();
        let stale = committed[pick.index(committed.len() - 1)];
        prop_assume!(stale != last);
        let end_of_time = h.ops().iter().filter_map(|o| o.end).max().unwrap() + 10;
        // A read of the LAST value pins it into the order...
        h.push(OpRecord::read(last, end_of_time, end_of_time + 1));
        // ...then a stale read afterwards must create a cycle.
        h.push(OpRecord::read(stale, end_of_time + 2, end_of_time + 3));
        prop_assert!(h.check().is_err(), "{h:?}");
    }

    #[test]
    fn overlap_never_causes_false_positives(
        seed in any::<u64>(),
        count in 2usize..30,
    ) {
        // All operations fully overlap: no real-time edges at all, so any
        // values may appear — the checker must accept.
        let mut h = History::new();
        let mut v = 1u64;
        let mut s = seed;
        for _ in 0..count {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            if s.is_multiple_of(2) {
                h.push(OpRecord::write(v, 0, 1000).committed());
                v += 1;
            } else if v > 1 {
                h.push(OpRecord::read(1 + (s >> 8) % (v - 1), 0, 1000));
            }
        }
        prop_assert!(h.check().is_ok());
    }

    #[test]
    fn figure5_injection_always_fails(
        ops in proptest::collection::vec((any::<bool>(), 0u64..5, 0u64..5), 0..50),
    ) {
        // Append the paper's Figure 5 anomaly to ANY valid sequential
        // prefix: a partial write crashes, a later read misses its value,
        // and the value surfaces in an even later read. The checker must
        // reject every such history.
        let (mut h, _) = sequential_history(&ops);
        let current = h
            .ops()
            .iter()
            .filter(|o| !o.is_read && o.committed)
            .map(|o| o.value)
            .next_back()
            .unwrap_or(NIL);
        let fresh = h
            .ops()
            .iter()
            .map(|o| o.value)
            .max()
            .unwrap_or(NIL) + 1;
        let e = h.ops().iter().filter_map(|o| o.end).max().unwrap_or(0) + 10;
        h.push(OpRecord::write(fresh, e, e + 1)); // partial: crash at e+1
        h.push(OpRecord::read(current, e + 2, e + 3)); // misses it
        h.push(OpRecord::read(fresh, e + 4, e + 5)); // late surfacing
        prop_assert!(h.check().is_err(), "{h:?}");
    }

    #[test]
    fn rt_order_inversion_always_fails(
        ops in proptest::collection::vec((any::<bool>(), 0u64..5, 0u64..5), 0..50),
    ) {
        // Append a real-time order inversion to ANY valid sequential
        // prefix: a read returns v_f strictly before an interposed value
        // v_mid is written and read, yet v_f is only written afterwards.
        // Definition 5 then orders v_f < v_mid AND v_mid < v_f — a cycle
        // the checker must always detect.
        let (mut h, _) = sequential_history(&ops);
        let top = h.ops().iter().map(|o| o.value).max().unwrap_or(NIL);
        let (v_mid, v_f) = (top + 1, top + 2);
        let e = h.ops().iter().filter_map(|o| o.end).max().unwrap_or(0) + 10;
        h.push(OpRecord::read(v_f, e, e + 1)); // read before the write!
        h.push(OpRecord::write(v_mid, e + 2, e + 3).committed());
        h.push(OpRecord::read(v_mid, e + 4, e + 5));
        h.push(OpRecord::write(v_f, e + 6, e + 7).committed());
        prop_assert!(h.check().is_err(), "{h:?}");
    }

    #[test]
    fn check_is_deterministic(
        ops in proptest::collection::vec((any::<bool>(), 0u64..4, 0u64..4), 1..40)
    ) {
        let (h, _) = sequential_history(&ops);
        prop_assert_eq!(h.check().is_ok(), h.check().is_ok());
    }
}
