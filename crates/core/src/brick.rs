//! The simulation driver: a FAB brick as a `fab-simnet` actor.
//!
//! A [`Brick`] is one storage appliance (Figure 1): it hosts a [`Replica`]
//! for every stripe register it stores *and* a [`Coordinator`] through
//! which clients can access any stripe — the paper's decentralized
//! architecture where every brick is both a storage device and an I/O
//! controller.
//!
//! [`SimCluster`] wraps a simulation of n bricks with harness conveniences:
//! run one operation to completion, inject crashes and partitions, and
//! account per-operation network/disk costs (for Table 1).

use crate::config::RegisterConfig;
use crate::coordinator::{Completion, Coordinator, InvokeError, OpId, OpResult};
use crate::effects::Effects;
use crate::messages::{Envelope, Payload, StripeId};
use crate::replica::{DiskMetrics, Replica};
use bytes::Bytes;
use fab_simnet::{Actor, Context, NetMetrics, SimConfig, SimTime, Simulation, TimerId};
use fab_timestamp::ProcessId;
// BTreeMap, not HashMap: brick state iteration (metrics, crash handling)
// must be deterministic across runs for reproducible simulations.
use std::collections::BTreeMap;
use std::sync::Arc;

/// Adapter exposing a simulator [`Context`] as protocol [`Effects`].
struct CtxFx<'a, 'b> {
    ctx: &'a mut Context<'b, Envelope>,
}

impl Effects for CtxFx<'_, '_> {
    fn send(&mut self, to: ProcessId, env: Envelope) {
        // Persistence decisions are made by the replica/coordinator callers.
        // xtask-allow(log-before-send): thin Effects adapter with no state of its own
        self.ctx.send(to, env);
    }
    fn set_timer(&mut self, delay: u64) -> u64 {
        self.ctx.set_timer(delay).value()
    }
    fn cancel_timer(&mut self, _id: u64) {
        // Simulator timers self-invalidate when the coordinator no longer
        // tracks them; dropping the cancel keeps the adapter stateless.
    }
    fn now(&self) -> u64 {
        self.ctx.now()
    }
    fn rand_u64(&mut self) -> u64 {
        use rand::Rng;
        self.ctx.rng().gen()
    }
}

/// One simulated storage brick: replicas for its stripes plus an operation
/// coordinator.
#[derive(Debug)]
pub struct Brick {
    pid: ProcessId,
    cfg: Arc<RegisterConfig>,
    replicas: BTreeMap<StripeId, Replica>,
    /// The coordinator module (volatile across crashes).
    pub coordinator: Coordinator,
    /// Completed operations awaiting harness pickup.
    pub completions: Vec<Completion>,
}

impl Brick {
    /// Creates the brick hosted by `pid`.
    pub fn new(pid: ProcessId, cfg: Arc<RegisterConfig>) -> Self {
        Brick {
            pid,
            coordinator: Coordinator::new(pid, cfg.clone()),
            cfg,
            replicas: BTreeMap::new(),
            completions: Vec::new(),
        }
    }

    /// Creates a brick whose coordinator clock is skewed (abort-rate
    /// experiments).
    pub fn with_skew(pid: ProcessId, cfg: Arc<RegisterConfig>, skew: i64) -> Self {
        Brick {
            pid,
            coordinator: Coordinator::with_skew(pid, cfg.clone(), skew),
            cfg,
            replicas: BTreeMap::new(),
            completions: Vec::new(),
        }
    }

    /// The hosting process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The replica for `stripe`, creating it in its initial state on first
    /// touch (registers are logically pre-existing for every stripe).
    pub fn replica(&mut self, stripe: StripeId) -> &mut Replica {
        let (pid, cfg) = (self.pid, self.cfg.clone());
        self.replicas
            .entry(stripe)
            .or_insert_with(|| Replica::new(pid, cfg))
    }

    /// Read-only view of a replica, if the stripe has been touched.
    pub fn replica_ref(&self, stripe: StripeId) -> Option<&Replica> {
        self.replicas.get(&stripe)
    }

    /// Discards ALL of this brick's state, persistent replica state
    /// included — the "replaced disk" model, as opposed to
    /// [`Actor::on_crash`]'s power-loss model where the durable log
    /// survives. Every register this brick stored restarts from its
    /// initial state; recovery/repair must rebuild it from the rest of
    /// the segment group.
    pub fn wipe(&mut self) {
        self.replicas.clear();
        self.coordinator.on_crash();
        self.completions.clear();
    }

    /// Sum of disk metrics across this brick's replicas.
    pub fn disk_metrics(&self) -> DiskMetrics {
        let mut total = DiskMetrics::default();
        for r in self.replicas.values() {
            let m = r.metrics();
            total.reads += m.reads;
            total.writes += m.writes;
            total.nvram_stores += m.nvram_stores;
        }
        total
    }

    /// Starts a `read-stripe` through this brick's coordinator.
    pub fn read_stripe(&mut self, ctx: &mut Context<'_, Envelope>, stripe: StripeId) -> OpId {
        let mut fx = CtxFx { ctx };
        self.coordinator.invoke_read_stripe(&mut fx, stripe)
    }

    /// Starts a `write-stripe` through this brick's coordinator.
    ///
    /// # Errors
    ///
    /// Propagates [`InvokeError`] for malformed stripes.
    pub fn write_stripe(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        stripe: StripeId,
        blocks: Vec<Bytes>,
    ) -> Result<OpId, InvokeError> {
        let mut fx = CtxFx { ctx };
        self.coordinator
            .invoke_write_stripe(&mut fx, stripe, blocks)
    }

    /// Starts a `read-block` through this brick's coordinator.
    ///
    /// # Errors
    ///
    /// Propagates [`InvokeError`] for out-of-range indices.
    pub fn read_block(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        stripe: StripeId,
        j: usize,
    ) -> Result<OpId, InvokeError> {
        let mut fx = CtxFx { ctx };
        self.coordinator.invoke_read_block(&mut fx, stripe, j)
    }

    /// Starts a `write-block` through this brick's coordinator.
    ///
    /// # Errors
    ///
    /// Propagates [`InvokeError`] for malformed blocks.
    pub fn write_block(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        stripe: StripeId,
        j: usize,
        block: Bytes,
    ) -> Result<OpId, InvokeError> {
        let mut fx = CtxFx { ctx };
        self.coordinator
            .invoke_write_block(&mut fx, stripe, j, block)
    }

    /// Starts a multi-block read through this brick's coordinator
    /// (footnote-2 extension).
    ///
    /// # Errors
    ///
    /// Propagates [`InvokeError`] for malformed index sets.
    pub fn read_blocks(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        stripe: StripeId,
        js: Vec<usize>,
    ) -> Result<OpId, InvokeError> {
        let mut fx = CtxFx { ctx };
        self.coordinator.invoke_read_blocks(&mut fx, stripe, js)
    }

    /// Starts a scrub (recover + write back to everyone) through this
    /// brick's coordinator.
    pub fn scrub(&mut self, ctx: &mut Context<'_, Envelope>, stripe: StripeId) -> OpId {
        let mut fx = CtxFx { ctx };
        self.coordinator.invoke_scrub(&mut fx, stripe)
    }

    /// Starts a multi-block write through this brick's coordinator
    /// (footnote-2 extension).
    ///
    /// # Errors
    ///
    /// Propagates [`InvokeError`] for malformed updates.
    pub fn write_blocks(
        &mut self,
        ctx: &mut Context<'_, Envelope>,
        stripe: StripeId,
        updates: Vec<(usize, Bytes)>,
    ) -> Result<OpId, InvokeError> {
        let mut fx = CtxFx { ctx };
        self.coordinator
            .invoke_write_blocks(&mut fx, stripe, updates)
    }
}

impl Actor for Brick {
    type Msg = Envelope;

    fn on_message(&mut self, ctx: &mut Context<'_, Envelope>, from: ProcessId, env: Envelope) {
        match &env.kind {
            Payload::Request(req) => {
                let stripe = env.stripe;
                let round = env.round;
                if let Some(reply) = self.replica(stripe).handle(req) {
                    ctx.send(
                        from,
                        Envelope {
                            stripe,
                            round,
                            kind: Payload::Reply(reply),
                        },
                    );
                }
            }
            Payload::Reply(_) => {
                let mut fx = CtxFx { ctx };
                self.coordinator.on_reply(&mut fx, from, &env);
                self.completions
                    .extend(self.coordinator.drain_completions());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Envelope>, timer: TimerId) {
        let mut fx = CtxFx { ctx };
        self.coordinator.on_timer(&mut fx, timer.value());
        self.completions
            .extend(self.coordinator.drain_completions());
    }

    fn on_crash(&mut self) {
        // Replica state is persistent; coordinator state and undelivered
        // completions are volatile.
        for r in self.replicas.values_mut() {
            r.on_crash();
        }
        self.coordinator.on_crash();
        self.completions.clear();
    }
}

/// Per-operation cost attribution (a Table 1 row, measured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCosts {
    /// Virtual-time latency (in multiples of δ when the network is ideal).
    pub latency: u64,
    /// Messages sent (requests + replies + GC).
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Disk block reads across all bricks.
    pub disk_reads: u64,
    /// Disk block writes across all bricks.
    pub disk_writes: u64,
}

/// A deterministic simulation of n bricks running the storage-register
/// protocol, with synchronous-style harness helpers.
///
/// # Examples
///
/// ```
/// use fab_core::{RegisterConfig, SimCluster, StripeId, OpResult, StripeValue};
/// use fab_simnet::SimConfig;
/// use fab_timestamp::ProcessId;
/// use bytes::Bytes;
///
/// let cfg = RegisterConfig::new(2, 4, 16)?;
/// let mut cluster = SimCluster::new(cfg, SimConfig::ideal(7));
/// let s = StripeId(0);
/// let p0 = ProcessId::new(0);
///
/// let stripe = vec![Bytes::from(vec![1u8; 16]), Bytes::from(vec![2u8; 16])];
/// assert_eq!(cluster.write_stripe(p0, s, stripe.clone()), OpResult::Written);
/// assert_eq!(
///     cluster.read_stripe(ProcessId::new(3), s),
///     OpResult::Stripe(StripeValue::Data(stripe)),
/// );
/// # Ok::<(), fab_core::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct SimCluster {
    sim: Simulation<Brick>,
    cfg: Arc<RegisterConfig>,
    /// Deadline for synchronous helpers before declaring a hang.
    pub op_deadline: SimTime,
}

impl SimCluster {
    /// Builds a cluster of `cfg.n()` bricks over the given network model.
    pub fn new(cfg: RegisterConfig, sim_config: SimConfig) -> Self {
        let cfg = Arc::new(cfg);
        let bricks = (0..cfg.n())
            .map(|i| Brick::new(ProcessId::new(i as u32), cfg.clone()))
            .collect();
        SimCluster {
            sim: Simulation::new(sim_config, bricks),
            cfg,
            op_deadline: 10_000_000,
        }
    }

    /// Builds a cluster whose coordinators have the given clock skews
    /// (index = process; missing entries mean no skew).
    pub fn with_skews(cfg: RegisterConfig, sim_config: SimConfig, skews: &[i64]) -> Self {
        let cfg = Arc::new(cfg);
        let bricks = (0..cfg.n())
            .map(|i| {
                let skew = skews.get(i).copied().unwrap_or(0);
                Brick::with_skew(ProcessId::new(i as u32), cfg.clone(), skew)
            })
            .collect();
        SimCluster {
            sim: Simulation::new(sim_config, bricks),
            cfg,
            op_deadline: 10_000_000,
        }
    }

    /// The shared register configuration.
    pub fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    /// The underlying simulation, for fault injection and inspection.
    pub fn sim_mut(&mut self) -> &mut Simulation<Brick> {
        &mut self.sim
    }

    /// The underlying simulation (read-only).
    pub fn sim(&self) -> &Simulation<Brick> {
        &self.sim
    }

    /// Sum of disk metrics over all bricks.
    pub fn disk_metrics(&self) -> DiskMetrics {
        let mut total = DiskMetrics::default();
        for (_, b) in self.sim.actors() {
            let m = b.disk_metrics();
            total.reads += m.reads;
            total.writes += m.writes;
            total.nvram_stores += m.nvram_stores;
        }
        total
    }

    /// Network metrics so far.
    pub fn net_metrics(&self) -> NetMetrics {
        self.sim.metrics()
    }

    /// Schedules an operation at the current time on `coordinator` and
    /// runs the simulation until it completes. Panics if the deadline
    /// passes first (only possible outside the fault model).
    fn run_op<F>(&mut self, coordinator: ProcessId, invoke: F) -> Completion
    where
        F: FnOnce(&mut Brick, &mut Context<'_, Envelope>) + 'static,
    {
        let already = self.sim.actor(coordinator).completions.len();
        let at = self.sim.now();
        self.sim.schedule_call(at, coordinator, invoke);
        let deadline = self.sim.now() + self.op_deadline;
        let done = self
            .sim
            .run_until_actor(coordinator, deadline, |b| b.completions.len() > already);
        assert!(
            done,
            "operation did not complete by the deadline — more than f faults?"
        );
        self.sim.actor_mut(coordinator).completions.remove(already)
    }

    /// Runs a `read-stripe` to completion via `coordinator`.
    pub fn read_stripe(&mut self, coordinator: ProcessId, stripe: StripeId) -> OpResult {
        self.run_op(coordinator, move |b, ctx| {
            b.read_stripe(ctx, stripe);
        })
        .result
    }

    /// Runs a `write-stripe` to completion via `coordinator`.
    ///
    /// # Panics
    ///
    /// Panics on malformed input (see [`Coordinator::invoke_write_stripe`]).
    pub fn write_stripe(
        &mut self,
        coordinator: ProcessId,
        stripe: StripeId,
        blocks: Vec<Bytes>,
    ) -> OpResult {
        self.run_op(coordinator, move |b, ctx| {
            // Harness-only input validation; the protocol path returns InvokeError.
            // xtask-allow(no-panic): test-harness convenience wrapper, not a protocol path
            b.write_stripe(ctx, stripe, blocks).expect("valid stripe");
        })
        .result
    }

    /// Runs a `read-block` to completion via `coordinator`.
    pub fn read_block(&mut self, coordinator: ProcessId, stripe: StripeId, j: usize) -> OpResult {
        self.run_op(coordinator, move |b, ctx| {
            // Harness-only input validation; the protocol path returns InvokeError.
            // xtask-allow(no-panic): test-harness convenience wrapper, not a protocol path
            b.read_block(ctx, stripe, j).expect("valid block index");
        })
        .result
    }

    /// Runs a `write-block` to completion via `coordinator`.
    pub fn write_block(
        &mut self,
        coordinator: ProcessId,
        stripe: StripeId,
        j: usize,
        block: Bytes,
    ) -> OpResult {
        self.run_op(coordinator, move |b, ctx| {
            // Harness-only input validation; the protocol path returns InvokeError.
            // xtask-allow(no-panic): test-harness convenience wrapper, not a protocol path
            b.write_block(ctx, stripe, j, block).expect("valid block");
        })
        .result
    }

    /// Runs a multi-block read to completion via `coordinator`.
    pub fn read_blocks(
        &mut self,
        coordinator: ProcessId,
        stripe: StripeId,
        js: Vec<usize>,
    ) -> OpResult {
        self.run_op(coordinator, move |b, ctx| {
            // Harness-only input validation; the protocol path returns InvokeError.
            // xtask-allow(no-panic): test-harness convenience wrapper, not a protocol path
            b.read_blocks(ctx, stripe, js).expect("valid index set");
        })
        .result
    }

    /// Runs a scrub to completion via `coordinator`, returning the
    /// (re-established) current stripe value.
    pub fn scrub(&mut self, coordinator: ProcessId, stripe: StripeId) -> OpResult {
        self.run_op(coordinator, move |b, ctx| {
            b.scrub(ctx, stripe);
        })
        .result
    }

    /// Like [`SimCluster::scrub`] but returns the full [`Completion`]
    /// (with timing and the `recovered` flag).
    pub fn scrub_completion(&mut self, coordinator: ProcessId, stripe: StripeId) -> Completion {
        self.run_op(coordinator, move |b, ctx| {
            b.scrub(ctx, stripe);
        })
    }

    /// Like [`SimCluster::read_stripe`] but returns the full
    /// [`Completion`], so callers can observe whether the read took the
    /// recovery path (`Completion::recovered`).
    pub fn read_stripe_completion(
        &mut self,
        coordinator: ProcessId,
        stripe: StripeId,
    ) -> Completion {
        self.run_op(coordinator, move |b, ctx| {
            b.read_stripe(ctx, stripe);
        })
    }

    /// Wipes `pid`'s entire brick state — the replaced-disk model (see
    /// [`Brick::wipe`]). The brick keeps running; repair must rebuild
    /// its registers from the rest of the segment group.
    pub fn wipe(&mut self, pid: ProcessId) {
        self.sim.actor_mut(pid).wipe();
    }

    /// Runs a multi-block write to completion via `coordinator`.
    pub fn write_blocks(
        &mut self,
        coordinator: ProcessId,
        stripe: StripeId,
        updates: Vec<(usize, Bytes)>,
    ) -> OpResult {
        self.run_op(coordinator, move |b, ctx| {
            // Harness-only input validation; the protocol path returns InvokeError.
            // xtask-allow(no-panic): test-harness convenience wrapper, not a protocol path
            b.write_blocks(ctx, stripe, updates).expect("valid updates");
        })
        .result
    }

    /// Runs an operation and attributes its latency, messages, bytes, and
    /// disk I/O (a measured Table 1 row). The cluster must be quiescent.
    pub fn measure_op<F>(&mut self, coordinator: ProcessId, invoke: F) -> (Completion, OpCosts)
    where
        F: FnOnce(&mut Brick, &mut Context<'_, Envelope>) + 'static,
    {
        let net0 = self.sim.metrics();
        let disk0 = self.disk_metrics();
        let completion = self.run_op(coordinator, invoke);
        // Let trailing replies/GC land so counters settle.
        self.sim.run_until_idle();
        let net = self.sim.metrics().since(&net0);
        let disk = self.disk_metrics();
        let costs = OpCosts {
            latency: completion.completed_at - completion.invoked_at,
            messages: net.messages_sent,
            bytes: net.bytes_sent,
            disk_reads: disk.reads - disk0.reads,
            disk_writes: disk.writes - disk0.writes,
        };
        (completion, costs)
    }

    /// Drains completions from every brick (for concurrent workloads).
    pub fn drain_all_completions(&mut self) -> Vec<(ProcessId, Completion)> {
        let mut out = Vec::new();
        for i in 0..self.cfg.n() {
            let pid = ProcessId::new(i as u32);
            for c in std::mem::take(&mut self.sim.actor_mut(pid).completions) {
                out.push((pid, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::StripeValue;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn blocks(m: usize, seed: u8, size: usize) -> Vec<Bytes> {
        (0..m)
            .map(|i| Bytes::from(vec![seed.wrapping_add(i as u8); size]))
            .collect()
    }

    fn cluster(m: usize, n: usize) -> SimCluster {
        SimCluster::new(RegisterConfig::new(m, n, 16).unwrap(), SimConfig::ideal(42))
    }

    #[test]
    fn fresh_register_reads_nil() {
        let mut c = cluster(2, 4);
        assert_eq!(
            c.read_stripe(pid(0), StripeId(0)),
            OpResult::Stripe(StripeValue::Nil)
        );
        assert_eq!(
            c.read_block(pid(1), StripeId(0), 1),
            OpResult::Block(crate::value::BlockValue::Nil)
        );
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut c = cluster(2, 4);
        let data = blocks(2, 10, 16);
        assert_eq!(
            c.write_stripe(pid(0), StripeId(0), data.clone()),
            OpResult::Written
        );
        assert_eq!(
            c.read_stripe(pid(3), StripeId(0)),
            OpResult::Stripe(StripeValue::Data(data))
        );
    }

    #[test]
    fn five_of_eight_round_trip() {
        let mut c = cluster(5, 8);
        let data = blocks(5, 1, 16);
        assert_eq!(
            c.write_stripe(pid(2), StripeId(7), data.clone()),
            OpResult::Written
        );
        assert_eq!(
            c.read_stripe(pid(6), StripeId(7)),
            OpResult::Stripe(StripeValue::Data(data))
        );
    }

    #[test]
    fn block_write_then_reads() {
        let mut c = cluster(2, 4);
        let s = StripeId(0);
        c.write_stripe(pid(0), s, blocks(2, 10, 16));
        let newb = Bytes::from(vec![0xEEu8; 16]);
        assert_eq!(c.write_block(pid(1), s, 1, newb.clone()), OpResult::Written);
        assert_eq!(
            c.read_block(pid(2), s, 1),
            OpResult::Block(crate::value::BlockValue::Data(newb.clone()))
        );
        // Block 0 is unchanged.
        assert_eq!(
            c.read_block(pid(3), s, 0),
            OpResult::Block(crate::value::BlockValue::Data(Bytes::from(vec![10u8; 16])))
        );
        // And the full stripe decodes consistently.
        match c.read_stripe(pid(0), s) {
            OpResult::Stripe(StripeValue::Data(got)) => {
                assert_eq!(got[0].as_ref(), &[10u8; 16]);
                assert_eq!(got[1], newb);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn block_write_on_fresh_stripe_reads_zero_siblings() {
        let mut c = cluster(2, 4);
        let s = StripeId(0);
        let newb = Bytes::from(vec![7u8; 16]);
        assert_eq!(c.write_block(pid(0), s, 0, newb.clone()), OpResult::Written);
        match c.read_stripe(pid(1), s) {
            OpResult::Stripe(StripeValue::Data(got)) => {
                assert_eq!(got[0], newb);
                assert_eq!(got[1].as_ref(), &[0u8; 16], "untouched block reads zeros");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stripes_are_independent() {
        let mut c = cluster(2, 4);
        c.write_stripe(pid(0), StripeId(1), blocks(2, 50, 16));
        assert_eq!(
            c.read_stripe(pid(0), StripeId(2)),
            OpResult::Stripe(StripeValue::Nil)
        );
        assert_eq!(
            c.read_stripe(pid(0), StripeId(1)),
            OpResult::Stripe(StripeValue::Data(blocks(2, 50, 16)))
        );
    }

    #[test]
    fn works_under_harsh_network() {
        let mut c = SimCluster::new(
            RegisterConfig::new(2, 4, 16)
                .unwrap()
                .with_retransmit_interval(120),
            SimConfig::harsh(3),
        );
        let s = StripeId(0);
        for round in 0..5u8 {
            let data = blocks(2, round * 7 + 1, 16);
            assert_eq!(
                c.write_stripe(pid(u32::from(round % 4)), s, data.clone()),
                OpResult::Written,
                "round {round}"
            );
            assert_eq!(
                c.read_stripe(pid(u32::from((round + 1) % 4)), s),
                OpResult::Stripe(StripeValue::Data(data)),
                "round {round}"
            );
        }
    }

    #[test]
    fn tolerates_f_crashed_bricks() {
        let mut c = cluster(5, 8); // f = 1
        let s = StripeId(0);
        let data = blocks(5, 3, 16);
        c.write_stripe(pid(0), s, data.clone());
        // Crash one brick; reads and writes still complete.
        let at = c.sim().now();
        c.sim_mut().schedule_crash(at, pid(7));
        c.sim_mut().run_until(at + 1);
        assert_eq!(
            c.read_stripe(pid(0), s),
            OpResult::Stripe(StripeValue::Data(data.clone()))
        );
        let data2 = blocks(5, 99, 16);
        assert_eq!(c.write_stripe(pid(1), s, data2.clone()), OpResult::Written);
        assert_eq!(
            c.read_stripe(pid(2), s),
            OpResult::Stripe(StripeValue::Data(data2))
        );
    }

    #[test]
    fn crashed_brick_recovers_and_rejoins() {
        let mut c = cluster(2, 4);
        let s = StripeId(0);
        let at = c.sim().now();
        c.sim_mut().schedule_crash(at, pid(3));
        c.sim_mut().run_until(at + 1);
        let v1 = blocks(2, 1, 16);
        assert_eq!(c.write_stripe(pid(0), s, v1), OpResult::Written);
        // Recover p3 and crash p2: the quorum must now lean on p3, which
        // must have caught up through subsequent operations.
        let at = c.sim().now();
        c.sim_mut().schedule_recovery(at, pid(3));
        c.sim_mut().run_until(at + 1);
        let v2 = blocks(2, 2, 16);
        assert_eq!(c.write_stripe(pid(1), s, v2.clone()), OpResult::Written);
        let at = c.sim().now();
        c.sim_mut().schedule_crash(at, pid(2));
        c.sim_mut().run_until(at + 1);
        assert_eq!(
            c.read_stripe(pid(0), s),
            OpResult::Stripe(StripeValue::Data(v2))
        );
    }

    #[test]
    fn concurrent_writes_one_aborts_or_both_serialize() {
        let mut c = cluster(2, 4);
        let s = StripeId(0);
        let d1 = blocks(2, 1, 16);
        let d2 = blocks(2, 2, 16);
        // Launch two writes from different coordinators at the same tick.
        c.sim_mut().schedule_call(0, pid(0), {
            let d1 = d1.clone();
            move |b, ctx| {
                b.write_stripe(ctx, s, d1).unwrap();
            }
        });
        c.sim_mut().schedule_call(0, pid(1), {
            let d2 = d2.clone();
            move |b, ctx| {
                b.write_stripe(ctx, s, d2).unwrap();
            }
        });
        c.sim_mut().run_until_idle();
        let done = c.drain_all_completions();
        assert_eq!(done.len(), 2);
        let ok = done.iter().filter(|(_, c)| c.result.is_ok()).count();
        assert!(ok >= 1, "at least one write must succeed: {done:?}");
        // Whatever happened, a subsequent read returns a consistent stripe:
        // one of the two written values (an aborted write may still have
        // taken effect) or nil is impossible since one write succeeded.
        match c.read_stripe(pid(2), s) {
            OpResult::Stripe(StripeValue::Data(got)) => {
                assert!(got == d1 || got == d2, "read a written value");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_block_write_then_reads() {
        let mut c = cluster(3, 5);
        let s = StripeId(0);
        c.write_stripe(pid(0), s, blocks(3, 10, 16));
        // Write blocks 0 and 2 in one operation.
        let updates = vec![
            (0usize, Bytes::from(vec![0xA0u8; 16])),
            (2usize, Bytes::from(vec![0xA2u8; 16])),
        ];
        assert_eq!(c.write_blocks(pid(1), s, updates), OpResult::Written);
        // Multi-read returns both new blocks and the untouched middle one.
        match c.read_blocks(pid(2), s, vec![0, 1, 2]) {
            OpResult::Blocks(vs) => {
                assert_eq!(vs[0].materialize(16).unwrap().as_ref(), &[0xA0u8; 16]);
                assert_eq!(vs[1].materialize(16).unwrap().as_ref(), &[11u8; 16]);
                assert_eq!(vs[2].materialize(16).unwrap().as_ref(), &[0xA2u8; 16]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The full stripe decodes consistently (parity was patched for
        // both blocks in one Modify round).
        match c.read_stripe(pid(3), s) {
            OpResult::Stripe(crate::value::StripeValue::Data(got)) => {
                assert_eq!(got[0].as_ref(), &[0xA0u8; 16]);
                assert_eq!(got[1].as_ref(), &[11u8; 16]);
                assert_eq!(got[2].as_ref(), &[0xA2u8; 16]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_block_write_on_fresh_stripe() {
        let mut c = cluster(3, 5);
        let s = StripeId(4);
        let updates = vec![
            (1usize, Bytes::from(vec![0xB1u8; 16])),
            (2usize, Bytes::from(vec![0xB2u8; 16])),
        ];
        assert_eq!(c.write_blocks(pid(0), s, updates), OpResult::Written);
        match c.read_stripe(pid(1), s) {
            OpResult::Stripe(crate::value::StripeValue::Data(got)) => {
                assert_eq!(got[0].as_ref(), &[0u8; 16], "unwritten block is zeros");
                assert_eq!(got[1].as_ref(), &[0xB1u8; 16]);
                assert_eq!(got[2].as_ref(), &[0xB2u8; 16]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_block_write_with_delta_strategy_matches() {
        use crate::config::WriteStrategy;
        for strategy in [
            WriteStrategy::Paper,
            WriteStrategy::Targeted,
            WriteStrategy::Delta,
        ] {
            let cfg = RegisterConfig::new(3, 5, 16)
                .unwrap()
                .with_write_strategy(strategy);
            let mut c = SimCluster::new(cfg, SimConfig::ideal(42));
            let s = StripeId(0);
            c.write_stripe(pid(0), s, blocks(3, 10, 16));
            let updates = vec![
                (0usize, Bytes::from(vec![0xC0u8; 16])),
                (1usize, Bytes::from(vec![0xC1u8; 16])),
            ];
            assert_eq!(
                c.write_blocks(pid(1), s, updates),
                OpResult::Written,
                "{strategy:?}"
            );
            // Crash both written data bricks: the stripe must decode from
            // the remaining data brick + parity, proving parity is right.
            let at = c.sim().now();
            c.sim_mut().schedule_crash(at, pid(0));
            c.sim_mut().run_until(at + 1);
            match c.read_stripe(pid(3), s) {
                OpResult::Stripe(crate::value::StripeValue::Data(got)) => {
                    assert_eq!(got[0].as_ref(), &[0xC0u8; 16], "{strategy:?}");
                    assert_eq!(got[1].as_ref(), &[0xC1u8; 16], "{strategy:?}");
                    assert_eq!(got[2].as_ref(), &[12u8; 16], "{strategy:?}");
                }
                other => panic!("{strategy:?}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn multi_block_rejects_bad_sets() {
        let mut c = cluster(3, 5);
        let at = c.sim().now();
        c.sim_mut().schedule_call(at, pid(0), |b, ctx| {
            // Out of range.
            assert!(b.read_blocks(ctx, StripeId(0), vec![0, 3]).is_err());
            // Duplicate.
            assert!(b.read_blocks(ctx, StripeId(0), vec![1, 1]).is_err());
            // Empty.
            assert!(b.read_blocks(ctx, StripeId(0), vec![]).is_err());
            // Duplicate write indices.
            assert!(b
                .write_blocks(
                    ctx,
                    StripeId(0),
                    vec![
                        (1, Bytes::from(vec![0u8; 16])),
                        (1, Bytes::from(vec![0u8; 16]))
                    ]
                )
                .is_err());
        });
        c.sim_mut().run_until_idle();
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = |seed: u64| {
            let mut c = SimCluster::new(
                RegisterConfig::new(2, 4, 16).unwrap(),
                SimConfig::harsh(seed),
            );
            let s = StripeId(0);
            for i in 0..4u8 {
                c.write_stripe(pid(u32::from(i % 4)), s, blocks(2, i, 16));
            }
            let r = c.read_stripe(pid(0), s);
            (c.sim().fingerprint(), format!("{r:?}"))
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn coordinator_metrics_reconcile_with_completions() {
        use crate::obs::OpMetrics;
        let mut c = cluster(2, 4);
        let reg = fab_obs::Registry::new();
        let metrics = OpMetrics::register(&reg);
        for i in 0..4u32 {
            c.sim_mut()
                .actor_mut(pid(i))
                .coordinator
                .set_metrics(Arc::clone(&metrics));
        }
        let s = StripeId(0);
        assert_eq!(
            c.write_stripe(pid(0), s, blocks(2, 7, 16)),
            OpResult::Written
        );
        assert_eq!(
            c.write_block(pid(1), s, 0, Bytes::from(vec![9u8; 16])),
            OpResult::Written
        );
        let fast = c.read_stripe_completion(pid(2), s);
        assert!(!fast.recovered, "ideal-network read should be fast path");
        c.scrub(pid(3), s);
        // Wipe a brick and read again: whatever path that read takes,
        // the instruments must agree with the completion's own flag —
        // the same reconciliation the torture probe runs at scale.
        c.wipe(pid(3));
        let post = c.read_stripe_completion(pid(0), s);
        let (fastpath, recovered) = metrics.reads();
        let expect_recovered = u64::from(post.recovered);
        assert_eq!(recovered, expect_recovered);
        assert_eq!(fastpath, 2 - expect_recovered);
        assert_eq!(metrics.writes_committed(), 2);
        assert_eq!(metrics.scrubs_completed(), 1);
        assert_eq!(metrics.aborts(), 0);
        let snap = reg.export();
        assert_eq!(snap.counter("op_writes_committed"), Some(2));
        let hist_count = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, h)| h.count)
        };
        // Both write kinds pass through a final store phase, so both
        // record the order/store split.
        assert_eq!(hist_count("op_write_micros"), 2);
        assert_eq!(hist_count("op_write_order_micros"), 2);
        assert_eq!(hist_count("op_write_store_micros"), 2);
        // Every completed op records its round count.
        assert_eq!(hist_count("op_quorum_rounds"), 5);
    }

    #[test]
    fn metrics_do_not_perturb_the_fingerprint() {
        use crate::obs::OpMetrics;
        // L2 determinism: recording metrics never feeds back into the
        // protocol, so a harsh-network run's fingerprint is bit-identical
        // with instruments installed or absent.
        let run = |with_metrics: bool| {
            let mut c = SimCluster::new(
                RegisterConfig::new(2, 4, 16).unwrap(),
                SimConfig::harsh(23),
            );
            if with_metrics {
                let reg = fab_obs::Registry::new();
                let metrics = OpMetrics::register(&reg);
                for i in 0..4u32 {
                    c.sim_mut()
                        .actor_mut(pid(i))
                        .coordinator
                        .set_metrics(Arc::clone(&metrics));
                }
            }
            let s = StripeId(0);
            for i in 0..4u8 {
                c.write_stripe(pid(u32::from(i % 4)), s, blocks(2, i, 16));
            }
            let r = c.read_stripe(pid(0), s);
            (c.sim().fingerprint(), format!("{r:?}"))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn scrub_of_never_written_stripe_is_a_clean_noop() {
        // A full-brick rebuild visits every stripe the brick could
        // host, most of which were never written. The scrub must
        // complete as `Stripe(Nil)` without manufacturing a synthetic
        // zero value: no disk write may land anywhere.
        let mut c = cluster(2, 4);
        let before = c.disk_metrics();
        assert_eq!(
            c.scrub(pid(1), StripeId(9)),
            OpResult::Stripe(StripeValue::Nil)
        );
        let after = c.disk_metrics();
        assert_eq!(
            after.writes, before.writes,
            "scrubbing an unwritten stripe must not write a synthetic value"
        );
        // The stripe is still writable and readable afterwards.
        let data = blocks(2, 42, 16);
        assert_eq!(
            c.write_stripe(pid(0), StripeId(9), data.clone()),
            OpResult::Written
        );
        assert_eq!(
            c.read_stripe(pid(2), StripeId(9)),
            OpResult::Stripe(StripeValue::Data(data))
        );
    }

    #[test]
    fn wiped_brick_rebuilds_via_scrub() {
        // Replaced-disk model: write stripes, wipe one brick's entire
        // replica state, scrub each stripe, and then verify reads take
        // the fast path again (the wiped brick holds fresh segments).
        let mut c = cluster(3, 5);
        let victim = pid(4);
        let written: Vec<StripeId> = (0..6).map(StripeId).collect();
        for (i, &s) in written.iter().enumerate() {
            c.write_stripe(pid((i % 5) as u32), s, blocks(3, i as u8, 16));
        }
        c.wipe(victim);
        for &s in &written {
            match c.scrub(pid(0), s) {
                OpResult::Stripe(StripeValue::Data(_)) => {}
                other => panic!("scrub of written stripe after wipe: {other:?}"),
            }
        }
        // Post-repair reads complete without the recovery path, even
        // when coordinated by the previously wiped brick.
        for &s in &written {
            let done = c.read_stripe_completion(victim, s);
            assert!(
                !done.recovered,
                "stripe {s:?} still degraded after scrub-rebuild"
            );
            match done.result {
                OpResult::Stripe(StripeValue::Data(_)) => {}
                other => panic!("post-repair read: {other:?}"),
            }
        }
    }
}
