//! Register configuration shared by coordinators and replicas.

use fab_erasure::{CodeError, Codec};
use fab_quorum::{MQuorumSystem, QuorumError};
use std::error::Error;
use std::fmt;

/// How a coordinator disseminates block data during `write-block` (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WriteStrategy {
    /// The pseudocode's behavior: every process receives the old and new
    /// values of block `j` (Alg. 3's `[Modify, j, b_j, b, ts_j, ts]`).
    #[default]
    Paper,
    /// §5.2(a): block data goes only to `p_j` and the parity processes;
    /// everyone else receives a timestamp-only `Modify`.
    Targeted,
    /// §5.2(b): `p_j` receives the new value; each parity process receives
    /// a single pre-coded delta block; everyone else timestamp-only.
    Delta,
}

/// When coordinators garbage-collect old log versions (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GcPolicy {
    /// Never GC (the pseudocode's unbounded logs).
    Disabled,
    /// After every write that completed on a full quorum, asynchronously
    /// tell all processes to drop versions older than the write.
    #[default]
    AfterCompleteWrite,
}

/// Errors constructing a [`RegisterConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Invalid erasure-code parameters.
    Code(CodeError),
    /// Invalid or unsatisfiable quorum parameters.
    Quorum(QuorumError),
    /// Block size must be positive.
    ZeroBlockSize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Code(e) => write!(f, "erasure code: {e}"),
            ConfigError::Quorum(e) => write!(f, "quorum system: {e}"),
            ConfigError::ZeroBlockSize => write!(f, "block size must be positive"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Code(e) => Some(e),
            ConfigError::Quorum(e) => Some(e),
            ConfigError::ZeroBlockSize => None,
        }
    }
}

impl From<CodeError> for ConfigError {
    fn from(e: CodeError) -> Self {
        ConfigError::Code(e)
    }
}

impl From<QuorumError> for ConfigError {
    fn from(e: QuorumError) -> Self {
        ConfigError::Quorum(e)
    }
}

/// Static configuration of one erasure-coded storage register (and of every
/// stripe register in a volume — stripes share the layout).
///
/// # Examples
///
/// ```
/// use fab_core::RegisterConfig;
///
/// // The paper's flagship configuration: 5-of-8 coding, 1 KiB blocks.
/// let cfg = RegisterConfig::new(5, 8, 1024)?;
/// assert_eq!(cfg.quorum().quorum_size(), 7);
/// # Ok::<(), fab_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegisterConfig {
    codec: Codec,
    quorum: MQuorumSystem,
    block_size: usize,
    /// Ticks between retransmissions of unanswered requests (the fair-loss
    /// `quorum()` primitive's retry period).
    pub retransmit_interval: u64,
    /// Extra ticks a fast read waits for its *targets* after a quorum of
    /// replies has arrived, before falling back to recovery.
    pub fast_grace: u64,
    /// Block-write dissemination strategy (§5.2).
    pub write_strategy: WriteStrategy,
    /// Log garbage-collection policy (§5.1).
    pub gc: GcPolicy,
    /// Safety cap on `read-prev-stripe` iterations (the loop provably
    /// terminates with ≤ f faults; the cap guards misuse beyond the model).
    pub max_recovery_iterations: usize,
    /// Whether reads attempt the optimistic single-round fast path
    /// (Alg. 1 lines 5–11). Disabling it sends every read through
    /// recovery — the ablation quantifying the paper's "efficient
    /// single-round read" contribution (§4.1.2).
    pub enable_fast_read: bool,
}

impl RegisterConfig {
    /// Creates a register configuration for m-of-n coding with the given
    /// block size and maximum fault tolerance `f = ⌊(n−m)/2⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid (m, n) or zero block size.
    pub fn new(m: usize, n: usize, block_size: usize) -> Result<Self, ConfigError> {
        if block_size == 0 {
            return Err(ConfigError::ZeroBlockSize);
        }
        Ok(RegisterConfig {
            codec: Codec::new(m, n)?,
            quorum: MQuorumSystem::for_code(m, n)?,
            block_size,
            retransmit_interval: 200,
            fast_grace: 4,
            write_strategy: WriteStrategy::default(),
            gc: GcPolicy::default(),
            max_recovery_iterations: 4096,
            enable_fast_read: true,
        })
    }

    /// The erasure codec.
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// The m-quorum system.
    pub fn quorum(&self) -> MQuorumSystem {
        self.quorum
    }

    /// Data blocks per stripe.
    pub fn m(&self) -> usize {
        self.codec.m()
    }

    /// Total blocks (= processes) per stripe.
    pub fn n(&self) -> usize {
        self.codec.n()
    }

    /// Bytes per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Sets the write strategy, returning `self` for chaining.
    pub fn with_write_strategy(mut self, s: WriteStrategy) -> Self {
        self.write_strategy = s;
        self
    }

    /// Sets the GC policy, returning `self` for chaining.
    pub fn with_gc(mut self, gc: GcPolicy) -> Self {
        self.gc = gc;
        self
    }

    /// Sets the retransmission interval, returning `self` for chaining.
    pub fn with_retransmit_interval(mut self, ticks: u64) -> Self {
        self.retransmit_interval = ticks;
        self
    }

    /// Enables or disables the optimistic fast read path, returning `self`
    /// for chaining.
    pub fn with_fast_read(mut self, enabled: bool) -> Self {
        self.enable_fast_read = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let cfg = RegisterConfig::new(5, 8, 512).unwrap();
        assert_eq!(cfg.m(), 5);
        assert_eq!(cfg.n(), 8);
        assert_eq!(cfg.block_size(), 512);
        assert_eq!(cfg.quorum().max_faulty(), 1);
    }

    #[test]
    fn invalid_params_surface_as_config_errors() {
        assert!(matches!(
            RegisterConfig::new(0, 8, 512),
            Err(ConfigError::Code(_))
        ));
        assert!(matches!(
            RegisterConfig::new(5, 8, 0),
            Err(ConfigError::ZeroBlockSize)
        ));
    }

    #[test]
    fn builder_chaining() {
        let cfg = RegisterConfig::new(2, 4, 64)
            .unwrap()
            .with_write_strategy(WriteStrategy::Delta)
            .with_gc(GcPolicy::Disabled)
            .with_retransmit_interval(99);
        assert_eq!(cfg.write_strategy, WriteStrategy::Delta);
        assert_eq!(cfg.gc, GcPolicy::Disabled);
        assert_eq!(cfg.retransmit_interval, 99);
    }

    #[test]
    fn error_display_and_source() {
        let e = ConfigError::ZeroBlockSize;
        assert_eq!(e.to_string(), "block size must be positive");
        let e: ConfigError = CodeError::InvalidParams { m: 0, n: 1 }.into();
        assert!(e.to_string().contains("erasure code"));
        assert!(Error::source(&e).is_some());
    }
}
