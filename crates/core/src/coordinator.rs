//! The coordinator side of the storage register: Algorithms 1 and 3 as a
//! sans-io state machine.
//!
//! Any process can coordinate any operation (§4.1); a [`Coordinator`] runs
//! alongside a replica on every brick. Each operation advances through
//! messaging *phases*; a phase broadcasts one request to all n processes,
//! retransmits it until an m-quorum of distinct replies arrives (the
//! non-blocking `quorum()` primitive over fair-loss channels, §2.2), and
//! then evaluates the pseudocode's condition on the reply set.
//!
//! Operation flow:
//!
//! ```text
//! read-stripe:  FastRead ──(miss)──▶ RecoverOrderRead ──▶ StoreStripe
//! write-stripe: Order ──▶ StoreStripe
//! read-block:   FastRead{j} ──(miss)──▶ RecoverOrderRead ──▶ StoreStripe
//! write-block:  FastWriteOrderRead ──▶ FastWriteModify
//!                      └──(either fails)──▶ RecoverOrderRead ──▶ StoreStripe
//! ```
//!
//! A coordinator's in-flight operations are *volatile*: a crash erases
//! them, which is precisely how partial writes arise. The next read's
//! recovery decides their fate — roll forward if ≥ m blocks of the partial
//! version survive in the logs, roll back otherwise (§4.1.2) — giving the
//! strict-linearizability guarantee that a partial write appears to take
//! effect before the crash or not at all.

use crate::config::{GcPolicy, RegisterConfig, WriteStrategy};
use crate::effects::{sample_processes, Effects};
use crate::error::ProtocolError;
use crate::obs::OpMetrics;
use crate::messages::{
    BlockTarget, BlockUpdate, Envelope, ModifyPayload, Payload, Reply, Request, StripeId,
};
use crate::trace::{OpTrace, TraceEvent};
use crate::value::{BlockValue, StripeValue};
use bytes::Bytes;
use fab_erasure::Share;
use fab_quorum::QuorumTracker;
use fab_timestamp::{ProcessId, Timestamp, TimestampGenerator};
// BTreeMap, not HashMap: coordinator state is iterated by the simulator's
// deterministic replay machinery, and hash-order iteration would make runs
// seed-irreproducible (xtask lint `determinism`).
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Identifies one operation at one coordinator.
pub type OpId = u64;

/// Why an operation aborted (returned the paper's `⊥`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AbortReason {
    /// A replica refused the operation's timestamp: a conflicting
    /// operation with a newer timestamp is in progress or completed.
    Conflict,
    /// Recovery exhausted its iteration budget (only possible when more
    /// than f processes misbehave, outside the fault model).
    RecoveryExhausted,
    /// An internal invariant was violated and the operation could not
    /// continue safely; details are available via
    /// [`Coordinator::take_protocol_errors`]. Never occurs under the fault
    /// model — it indicates a local bug or >f misbehaving processes.
    Internal,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Conflict => write!(f, "conflicting operation with newer timestamp"),
            AbortReason::RecoveryExhausted => write!(f, "recovery iteration budget exhausted"),
            AbortReason::Internal => write!(f, "internal invariant violation"),
        }
    }
}

/// The value an operation completed with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// `read-stripe` succeeded.
    Stripe(StripeValue),
    /// `read-block` succeeded (`Nil` reads as zeros).
    Block(BlockValue),
    /// `read-blocks` succeeded: one value per requested index, in request
    /// order (`Nil` reads as zeros).
    Blocks(Vec<BlockValue>),
    /// `write-stripe` / `write-block` succeeded.
    Written,
    /// The operation aborted (the paper's `⊥`). Aborted writes may or may
    /// not have taken effect (§3).
    Aborted(AbortReason),
}

impl OpResult {
    /// Returns `true` unless the operation aborted.
    pub fn is_ok(&self) -> bool {
        !matches!(self, OpResult::Aborted(_))
    }
}

/// A finished operation, as reported to the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The operation.
    pub op: OpId,
    /// The stripe register it addressed.
    pub stripe: StripeId,
    /// Outcome.
    pub result: OpResult,
    /// Tick at which the operation was invoked.
    pub invoked_at: u64,
    /// Tick at which it completed.
    pub completed_at: u64,
    /// Whether the slow path (recovery) ran.
    pub recovered: bool,
}

/// Errors rejecting an invocation before any messaging happens.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvokeError {
    /// `write-stripe` needs exactly m blocks.
    WrongBlockCount {
        /// Required count (m).
        expected: usize,
        /// Supplied count.
        actual: usize,
    },
    /// Every block must be exactly `block_size` bytes.
    WrongBlockSize {
        /// Required size.
        expected: usize,
        /// Supplied size.
        actual: usize,
    },
    /// `read-block`/`write-block` address data blocks `0..m` only.
    BlockOutOfRange {
        /// The offending index.
        index: usize,
        /// Exclusive bound (m).
        bound: usize,
    },
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::WrongBlockCount { expected, actual } => {
                write!(f, "write-stripe needs {expected} blocks, got {actual}")
            }
            InvokeError::WrongBlockSize { expected, actual } => {
                write!(f, "blocks must be {expected} bytes, got {actual}")
            }
            InvokeError::BlockOutOfRange { index, bound } => {
                write!(f, "block index {index} out of range 0..{bound}")
            }
        }
    }
}

impl Error for InvokeError {}

/// What the client asked for.
#[derive(Debug, Clone)]
enum OpKind {
    ReadStripe,
    WriteStripe {
        blocks: Vec<Bytes>,
    },
    /// Reads of one or more data blocks (single-block ops are the
    /// `len == 1` case; footnote 2 covers the general form).
    ReadBlocks {
        js: Vec<usize>,
        single: bool,
    },
    /// Writes of one or more data blocks.
    WriteBlocks {
        updates: Vec<(usize, Bytes)>,
    },
    /// Maintenance: recover the current value and write it back at a fresh
    /// timestamp, bringing every reachable replica (not just a quorum)
    /// up to date. Used after brick recovery or replacement.
    Scrub,
}

/// The current messaging phase of an operation.
#[derive(Debug, Clone)]
enum Phase {
    /// Alg. 1 `fast-read-stripe` / Alg. 3 `read-block` first round.
    FastRead { targets: Vec<ProcessId> },
    /// Alg. 1 `write-stripe` first round.
    Order,
    /// Alg. 1 `read-prev-stripe`: one `Order&Read(ALL, bound, ts)` round.
    RecoverOrderRead { bound: Timestamp, iteration: usize },
    /// Alg. 1 `store-stripe`: the `Write` round.
    StoreStripe { value: StripeValue },
    /// Alg. 3 `fast-write-block` first round (`Order&Read(j, HighTS, ts)`).
    FastWriteOrderRead,
    /// Alg. 3 `fast-write-block` second round.
    FastWriteModify,
}

/// One in-flight operation.
#[derive(Debug)]
struct Op {
    id: OpId,
    stripe: StripeId,
    kind: OpKind,
    invoked_at: u64,
    /// The operation timestamp, once `newTS()` has been called.
    ts: Option<Timestamp>,
    phase: Phase,
    round: u64,
    /// Per-destination requests of the current phase (index = pid).
    outgoing: Vec<Request>,
    tracker: QuorumTracker,
    /// First reply per process for the current round (index = pid).
    replies: Vec<Option<Reply>>,
    retransmit_timer: Option<u64>,
    grace_timer: Option<u64>,
    grace_expired: bool,
    recovered: bool,
    /// When the op first entered its final store phase (`StoreStripe` /
    /// `FastWriteModify`) — the order/store latency split for metrics.
    order_done_at: Option<u64>,
    /// Quorum rounds this op has run (1 = still in its first phase).
    rounds_used: u64,
}

/// The per-brick operation coordinator.
///
/// See the [module docs](self) for the operation flow. Drivers call the
/// four `invoke_*` methods to start operations, feed network input through
/// [`Coordinator::on_reply`] and [`Coordinator::on_timer`], and collect
/// results with [`Coordinator::drain_completions`].
#[derive(Debug)]
pub struct Coordinator {
    pid: ProcessId,
    cfg: Arc<RegisterConfig>,
    ts_gen: TimestampGenerator,
    next_op: OpId,
    next_round: u64,
    ops: BTreeMap<OpId, Op>,
    /// Active round → operation (stale rounds are absent).
    rounds: BTreeMap<u64, OpId>,
    timers: BTreeMap<u64, OpId>,
    grace_timers: BTreeMap<u64, OpId>,
    completions: Vec<Completion>,
    tracing: bool,
    traces: BTreeMap<OpId, OpTrace>,
    finished_traces: Vec<OpTrace>,
    /// Invariant violations survived instead of panicked; drained by
    /// [`Coordinator::take_protocol_errors`].
    errors: Vec<ProtocolError>,
    /// Optional op-lifecycle instruments, recorded at the single
    /// completion site so every driver gets identical semantics.
    metrics: Option<Arc<OpMetrics>>,
}

impl Coordinator {
    /// Creates a coordinator hosted on `pid`.
    pub fn new(pid: ProcessId, cfg: Arc<RegisterConfig>) -> Self {
        Coordinator {
            pid,
            ts_gen: TimestampGenerator::new(pid),
            cfg,
            next_op: 0,
            next_round: 0,
            ops: BTreeMap::new(),
            rounds: BTreeMap::new(),
            timers: BTreeMap::new(),
            grace_timers: BTreeMap::new(),
            completions: Vec::new(),
            tracing: false,
            traces: BTreeMap::new(),
            finished_traces: Vec::new(),
            errors: Vec::new(),
            metrics: None,
        }
    }

    /// Records an invariant violation instead of panicking (see
    /// [`ProtocolError`]). In debug builds the violation is also visible to
    /// the driver immediately via [`Coordinator::take_protocol_errors`];
    /// the simulation harness checks this after every run.
    fn record_error(&mut self, err: ProtocolError) {
        self.errors.push(err);
    }

    /// Drains invariant violations recorded since the last call. Under the
    /// fault model this is always empty; drivers and tests should treat a
    /// non-empty result as a bug report.
    pub fn take_protocol_errors(&mut self) -> Vec<ProtocolError> {
        std::mem::take(&mut self.errors)
    }

    /// Installs op-lifecycle instruments (see [`OpMetrics`]). Recording
    /// happens at the coordinator's single completion site and never
    /// feeds back into protocol behavior, so a simulation's fingerprint
    /// is bit-identical with metrics installed or not.
    pub fn set_metrics(&mut self, metrics: Arc<OpMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Enables or disables per-operation tracing. Traces of finished
    /// operations are collected until [`Coordinator::take_traces`] drains
    /// them.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    /// Drains the traces of operations completed since the last call.
    pub fn take_traces(&mut self) -> Vec<OpTrace> {
        std::mem::take(&mut self.finished_traces)
    }

    fn trace(&mut self, op_id: OpId, at: u64, event: TraceEvent) {
        if !self.tracing {
            return;
        }
        if let Some(t) = self.traces.get_mut(&op_id) {
            t.push(at, event);
        }
    }

    /// Creates a coordinator whose `newTS` clock is skewed by `skew` ticks
    /// (for the §3 abort-rate experiments).
    pub fn with_skew(pid: ProcessId, cfg: Arc<RegisterConfig>, skew: i64) -> Self {
        Coordinator {
            ts_gen: TimestampGenerator::with_skew(pid, skew),
            ..Coordinator::new(pid, cfg)
        }
    }

    /// The hosting process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of in-flight operations.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Takes all completions recorded since the last call.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Models a coordinator crash: every in-flight operation is lost
    /// (in-flight state is volatile), leaving partial writes behind for
    /// the next read's recovery to resolve.
    pub fn on_crash(&mut self) {
        self.ops.clear();
        self.rounds.clear();
        self.timers.clear();
        self.grace_timers.clear();
        self.completions.clear();
        self.traces.clear();
        self.finished_traces.clear();
        self.errors.clear();
    }

    // ------------------------------------------------------------------
    // Invocations (Alg. 1 lines 1–23, Alg. 3 lines 61–87)
    // ------------------------------------------------------------------

    /// Starts a `read-stripe` operation (Alg. 1 line 1).
    pub fn invoke_read_stripe(&mut self, fx: &mut dyn Effects, stripe: StripeId) -> OpId {
        if !self.cfg.enable_fast_read {
            return self.start_recovery_read(fx, stripe, OpKind::ReadStripe);
        }
        let targets = sample_processes(fx, self.cfg.n(), self.cfg.m());
        let kind = OpKind::ReadStripe;
        let phase = Phase::FastRead {
            targets: targets.clone(),
        };
        let outgoing = vec![Request::Read { targets }; self.cfg.n()];
        self.start_op(fx, stripe, kind, None, phase, outgoing, false)
    }

    /// Starts a read that goes straight to the recovery path (used when
    /// the fast path is disabled for ablation).
    fn start_recovery_read(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        kind: OpKind,
    ) -> OpId {
        let ts = self.ts_gen.next(fx.now());
        let outgoing = vec![
            Request::OrderRead {
                target: BlockTarget::All,
                below: Timestamp::HIGH,
                ts,
            };
            self.cfg.n()
        ];
        self.start_op(
            fx,
            stripe,
            kind,
            Some(ts),
            Phase::RecoverOrderRead {
                bound: Timestamp::HIGH,
                iteration: 0,
            },
            outgoing,
            true, // counts as recovered: it skipped the fast path
        )
    }

    /// Starts a scrub: a forced recovery pass that reads the current
    /// version and writes it back at a fresh timestamp. The write-back is
    /// broadcast to all n processes, so replicas that missed writes (a
    /// recovered brick, a replacement brick) end up holding the current
    /// version locally and fast reads through them work again.
    pub fn invoke_scrub(&mut self, fx: &mut dyn Effects, stripe: StripeId) -> OpId {
        let ts = self.ts_gen.next(fx.now());
        let outgoing = vec![
            Request::OrderRead {
                target: BlockTarget::All,
                below: Timestamp::HIGH,
                ts,
            };
            self.cfg.n()
        ];
        self.start_op(
            fx,
            stripe,
            OpKind::Scrub,
            Some(ts),
            Phase::RecoverOrderRead {
                bound: Timestamp::HIGH,
                iteration: 0,
            },
            outgoing,
            true, // a scrub is by definition a recovery pass
        )
    }

    /// Starts a `write-stripe` operation (Alg. 1 line 12).
    ///
    /// # Errors
    ///
    /// Rejects a stripe that is not exactly m blocks of `block_size` bytes.
    pub fn invoke_write_stripe(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        blocks: Vec<Bytes>,
    ) -> Result<OpId, InvokeError> {
        if blocks.len() != self.cfg.m() {
            return Err(InvokeError::WrongBlockCount {
                expected: self.cfg.m(),
                actual: blocks.len(),
            });
        }
        for b in &blocks {
            if b.len() != self.cfg.block_size() {
                return Err(InvokeError::WrongBlockSize {
                    expected: self.cfg.block_size(),
                    actual: b.len(),
                });
            }
        }
        let ts = self.ts_gen.next(fx.now());
        let outgoing = vec![Request::Order { ts }; self.cfg.n()];
        Ok(self.start_op(
            fx,
            stripe,
            OpKind::WriteStripe { blocks },
            Some(ts),
            Phase::Order,
            outgoing,
            false,
        ))
    }

    /// Starts a `read-block` operation (Alg. 3 line 61).
    ///
    /// # Errors
    ///
    /// Rejects block indices outside `0..m`.
    pub fn invoke_read_block(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        j: usize,
    ) -> Result<OpId, InvokeError> {
        self.start_read_blocks(fx, stripe, vec![j], true)
    }

    /// Starts a multi-block read (the footnote-2 extension): returns the
    /// listed data blocks as of one consistent version.
    ///
    /// # Errors
    ///
    /// Rejects an empty list, repeated indices, or indices outside `0..m`.
    pub fn invoke_read_blocks(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        js: Vec<usize>,
    ) -> Result<OpId, InvokeError> {
        self.start_read_blocks(fx, stripe, js, false)
    }

    fn start_read_blocks(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        js: Vec<usize>,
        single: bool,
    ) -> Result<OpId, InvokeError> {
        validate_block_set(&js, self.cfg.m())?;
        if !self.cfg.enable_fast_read {
            return Ok(self.start_recovery_read(fx, stripe, OpKind::ReadBlocks { js, single }));
        }
        let targets: Vec<ProcessId> = js.iter().map(|&j| ProcessId::new(j as u32)).collect();
        let outgoing = vec![
            Request::Read {
                targets: targets.clone(),
            };
            self.cfg.n()
        ];
        Ok(self.start_op(
            fx,
            stripe,
            OpKind::ReadBlocks { js, single },
            None,
            Phase::FastRead { targets },
            outgoing,
            false,
        ))
    }

    /// Starts a `write-block` operation (Alg. 3 line 70).
    ///
    /// # Errors
    ///
    /// Rejects block indices outside `0..m` and blocks of the wrong size.
    pub fn invoke_write_block(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        j: usize,
        block: Bytes,
    ) -> Result<OpId, InvokeError> {
        self.start_write_blocks(fx, stripe, vec![(j, block)])
    }

    /// Starts a multi-block write (the footnote-2 extension): writes the
    /// listed data blocks atomically as one register operation.
    ///
    /// # Errors
    ///
    /// Rejects an empty list, repeated indices, indices outside `0..m`,
    /// and blocks of the wrong size.
    pub fn invoke_write_blocks(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        updates: Vec<(usize, Bytes)>,
    ) -> Result<OpId, InvokeError> {
        self.start_write_blocks(fx, stripe, updates)
    }

    fn start_write_blocks(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        mut updates: Vec<(usize, Bytes)>,
    ) -> Result<OpId, InvokeError> {
        updates.sort_by_key(|(j, _)| *j);
        let js: Vec<usize> = updates.iter().map(|(j, _)| *j).collect();
        validate_block_set(&js, self.cfg.m())?;
        for (_, block) in &updates {
            if block.len() != self.cfg.block_size() {
                return Err(InvokeError::WrongBlockSize {
                    expected: self.cfg.block_size(),
                    actual: block.len(),
                });
            }
        }
        let ts = self.ts_gen.next(fx.now());
        let target = if js.len() == 1 {
            BlockTarget::One(ProcessId::new(js[0] as u32))
        } else {
            BlockTarget::Many(js.iter().map(|&j| ProcessId::new(j as u32)).collect())
        };
        let outgoing = vec![
            Request::OrderRead {
                target,
                below: Timestamp::HIGH,
                ts,
            };
            self.cfg.n()
        ];
        Ok(self.start_op(
            fx,
            stripe,
            OpKind::WriteBlocks { updates },
            Some(ts),
            Phase::FastWriteOrderRead,
            outgoing,
            false,
        ))
    }

    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the Op record
    fn start_op(
        &mut self,
        fx: &mut dyn Effects,
        stripe: StripeId,
        kind: OpKind,
        ts: Option<Timestamp>,
        phase: Phase,
        outgoing: Vec<Request>,
        recovered: bool,
    ) -> OpId {
        self.next_op += 1;
        let id = self.next_op;
        self.next_round += 1;
        let round = self.next_round;
        let mut op = Op {
            id,
            stripe,
            kind,
            invoked_at: fx.now(),
            ts,
            phase,
            round,
            outgoing,
            tracker: QuorumTracker::new(self.cfg.quorum()),
            replies: vec![None; self.cfg.n()],
            retransmit_timer: None,
            grace_timer: None,
            grace_expired: false,
            recovered,
            order_done_at: None,
            rounds_used: 1,
        };
        self.rounds.insert(round, id);
        if self.tracing {
            let mut trace = OpTrace::new(id, stripe);
            trace.push(
                fx.now(),
                TraceEvent::Invoked {
                    kind: kind_label(&op.kind),
                },
            );
            if let Some(ts) = ts {
                trace.push(fx.now(), TraceEvent::TimestampAssigned { ts });
            }
            trace.push(
                fx.now(),
                TraceEvent::PhaseEntered {
                    phase: phase_label(&op.phase),
                    round,
                },
            );
            self.traces.insert(id, trace);
        }
        broadcast(fx, &op, None);
        let timer = fx.set_timer(self.cfg.retransmit_interval);
        op.retransmit_timer = Some(timer);
        self.timers.insert(timer, id);
        self.ops.insert(id, op);
        id
    }

    // ------------------------------------------------------------------
    // Input events
    // ------------------------------------------------------------------

    /// Feeds a reply envelope received from `from`. Envelopes whose round
    /// is not an operation's *current* round are stale and ignored.
    pub fn on_reply(&mut self, fx: &mut dyn Effects, from: ProcessId, env: &Envelope) {
        let Payload::Reply(reply) = &env.kind else {
            debug_assert!(false, "on_reply fed a request");
            return;
        };
        let Some(&op_id) = self.rounds.get(&env.round) else {
            return; // stale round
        };
        let Some(op) = self.ops.get_mut(&op_id) else {
            // `rounds` and `ops` are updated together; a round pointing at a
            // dead op is an internal invariant violation, not a peer error.
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        debug_assert_eq!(op.round, env.round);
        let Some(slot) = op.replies.get_mut(from.index()) else {
            return; // alien sender outside 0..n
        };
        if slot.is_some() {
            return; // duplicate reply
        }
        let status = reply.status();
        *slot = Some(reply.clone());
        op.tracker.record(from);
        self.trace(op_id, fx.now(), TraceEvent::Reply { from, status });
        self.progress(fx, op_id);
    }

    /// Feeds a fired timer. Returns `true` if the timer belonged to this
    /// coordinator.
    pub fn on_timer(&mut self, fx: &mut dyn Effects, timer: u64) -> bool {
        if let Some(op_id) = self.timers.remove(&timer) {
            if let Some(op) = self.ops.get_mut(&op_id) {
                // Retransmit the current phase to processes yet to reply.
                broadcast(fx, op, Some(&op.tracker.clone()));
                let t = fx.set_timer(self.cfg.retransmit_interval);
                op.retransmit_timer = Some(t);
                self.timers.insert(t, op_id);
                self.trace(op_id, fx.now(), TraceEvent::Retransmitted);
            }
            return true;
        }
        if let Some(op_id) = self.grace_timers.remove(&timer) {
            if let Some(op) = self.ops.get_mut(&op_id) {
                op.grace_timer = None;
                op.grace_expired = true;
                self.progress(fx, op_id);
            }
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Phase progression
    // ------------------------------------------------------------------

    fn progress(&mut self, fx: &mut dyn Effects, op_id: OpId) {
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        if !op.tracker.is_complete() {
            return; // quorum() has not returned yet
        }
        match op.phase.clone() {
            Phase::FastRead { targets } => self.progress_fast_read(fx, op_id, &targets),
            Phase::Order => self.progress_order(fx, op_id),
            Phase::RecoverOrderRead { bound, iteration } => {
                self.progress_recover(fx, op_id, bound, iteration);
            }
            Phase::StoreStripe { value } => self.progress_store(fx, op_id, value),
            Phase::FastWriteOrderRead => self.progress_fast_write_order(fx, op_id),
            Phase::FastWriteModify => self.progress_fast_write_modify(fx, op_id),
        }
    }

    /// Alg. 1 lines 5–11 / Alg. 3 lines 61–69, success test of the fast
    /// (single-round) read.
    fn progress_fast_read(&mut self, fx: &mut dyn Effects, op_id: OpId, targets: &[ProcessId]) {
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        let received: Vec<(usize, &Reply)> = op
            .replies
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
            .collect();

        // Conditions that no further reply can repair: a false status or
        // disagreeing val-ts among the quorum already collected.
        let any_false = received.iter().any(|(_, r)| !r.status());
        let mut val_ts: Option<Timestamp> = None;
        let mut ts_mismatch = false;
        for (_, r) in &received {
            if let Reply::ReadR { val_ts: t, .. } = r {
                match val_ts {
                    None => val_ts = Some(*t),
                    Some(prev) if prev != *t => ts_mismatch = true,
                    _ => {}
                }
            }
        }
        if any_false || ts_mismatch {
            self.begin_recovery(fx, op_id, false);
            return;
        }

        let all_targets_replied = targets
            .iter()
            .all(|t| matches!(op.replies.get(t.index()), Some(Some(_))));
        if !all_targets_replied {
            if op.grace_expired {
                self.begin_recovery(fx, op_id, false);
            } else if op.grace_timer.is_none() {
                // Give the targets one grace period beyond the quorum.
                let t = fx.set_timer(self.cfg.fast_grace);
                op.grace_timer = Some(t);
                self.grace_timers.insert(t, op_id);
            }
            return;
        }

        // Success: all statuses true, val-ts agree, targets all answered.
        let block_of = |pid: &ProcessId| -> Option<BlockValue> {
            match op.replies.get(pid.index()).and_then(|r| r.as_ref()) {
                Some(Reply::ReadR { block, .. }) => block.clone(),
                _ => None,
            }
        };
        match &op.kind {
            OpKind::ReadBlocks { single, .. } => {
                let single = *single;
                let mut out = Vec::with_capacity(targets.len());
                for t in targets {
                    match block_of(t) {
                        Some(b) => out.push(b),
                        None => {
                            self.begin_recovery(fx, op_id, false);
                            return;
                        }
                    }
                }
                let result = if single {
                    // A single-block read has exactly one (validated) target.
                    let Some(b) = out.pop() else {
                        self.record_error(ProtocolError::Invariant(
                            "single-block read with an empty target set",
                        ));
                        self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
                        return;
                    };
                    OpResult::Block(b)
                } else {
                    OpResult::Blocks(out)
                };
                self.complete(fx, op_id, result);
            }
            OpKind::ReadStripe => {
                let mut blocks = Vec::with_capacity(targets.len());
                for t in targets {
                    match block_of(t) {
                        Some(b) => blocks.push((t.index(), b)),
                        None => {
                            self.begin_recovery(fx, op_id, false);
                            return;
                        }
                    }
                }
                match assemble_stripe(&self.cfg, &blocks) {
                    Some(value) => self.complete(fx, op_id, OpResult::Stripe(value)),
                    None => self.begin_recovery(fx, op_id, false),
                }
            }
            _ => {
                // FastRead only runs for read operations; a write landing
                // here is an internal phase/kind mismatch.
                self.record_error(ProtocolError::PhaseKindMismatch {
                    op: op_id,
                    expected: "a read operation in FastRead",
                });
                self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            }
        }
    }

    /// Alg. 1 lines 14–15: the `Order` round of `write-stripe`.
    fn progress_order(&mut self, fx: &mut dyn Effects, op_id: OpId) {
        if self.any_false(op_id) {
            self.observe_conflict(op_id);
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Conflict));
            return;
        }
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        let OpKind::WriteStripe { blocks } = &op.kind else {
            self.record_error(ProtocolError::PhaseKindMismatch {
                op: op_id,
                expected: "write-stripe in Order",
            });
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        let value = StripeValue::Data(blocks.clone());
        self.enter_store_phase(fx, op_id, value);
    }

    /// Alg. 1 lines 24–33: one iteration of `read-prev-stripe`.
    fn progress_recover(
        &mut self,
        fx: &mut dyn Effects,
        op_id: OpId,
        bound: Timestamp,
        iteration: usize,
    ) {
        if self.any_false(op_id) {
            self.observe_conflict(op_id);
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Conflict));
            return;
        }
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        // max ← the highest timestamp in replies (Alg. 1 line 30).
        let mut max = Timestamp::LOW;
        for r in op.replies.iter().flatten() {
            if let Reply::OrderReadR { lts, .. } = r {
                max = max.max(*lts);
            }
        }
        // blocks ← the blocks in replies with timestamp max (line 31).
        let mut blocks: Vec<(usize, BlockValue)> = Vec::new();
        for (i, r) in op.replies.iter().enumerate() {
            if let Some(Reply::OrderReadR {
                lts,
                block: Some(b),
                ..
            }) = r
            {
                if *lts == max {
                    blocks.push((i, b.clone()));
                }
            }
        }
        if blocks.len() >= self.cfg.m() {
            match assemble_stripe(&self.cfg, &blocks) {
                Some(mut value) => {
                    // A scrub that recovers an untouched register — no reply
                    // carried a real version, so `max` never left LowTS and
                    // the assembled value is nil — completes as a clean no-op
                    // instead of running store-stripe: writing a synthetic
                    // nil at a fresh timestamp would manufacture history for
                    // a stripe nobody ever wrote, and a full-brick rebuild
                    // visits many such stripes.
                    if matches!(op.kind, OpKind::Scrub)
                        && max == Timestamp::LOW
                        && matches!(value, StripeValue::Nil)
                    {
                        self.complete(fx, op_id, OpResult::Stripe(StripeValue::Nil));
                        return;
                    }
                    // slow-write-block grafts the new blocks onto the
                    // recovered stripe (Alg. 3 lines 84–87).
                    if let OpKind::WriteBlocks { updates, .. } = &op.kind {
                        let mut data = value.materialize(self.cfg.m(), self.cfg.block_size());
                        for (j, block) in updates {
                            // `j < m` was validated at invocation; a stale
                            // index is silently skipped rather than panicking.
                            if let Some(slot) = data.get_mut(*j) {
                                *slot = block.clone();
                            }
                        }
                        value = StripeValue::Data(data);
                    }
                    self.enter_store_phase(fx, op_id, value);
                }
                None => {
                    self.complete(fx, op_id, OpResult::Aborted(AbortReason::RecoveryExhausted));
                }
            }
            return;
        }
        // Not enough blocks at `max`: iterate downward (line 26 repeat).
        if iteration + 1 > self.cfg.max_recovery_iterations || max >= bound {
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::RecoveryExhausted));
            return;
        }
        let Some(ts) = op.ts else {
            // Every recovery pass assigns a timestamp on entry
            // (`begin_recovery`, `start_recovery_read`, `invoke_scrub`).
            self.record_error(ProtocolError::MissingTimestamp(op_id));
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        let outgoing = vec![
            Request::OrderRead {
                target: BlockTarget::All,
                below: max,
                ts,
            };
            self.cfg.n()
        ];
        self.restart_phase(
            fx,
            op_id,
            Phase::RecoverOrderRead {
                bound: max,
                iteration: iteration + 1,
            },
            outgoing,
        );
    }

    /// Alg. 1 lines 34–37: the `Write` round of `store-stripe`.
    fn progress_store(&mut self, fx: &mut dyn Effects, op_id: OpId, value: StripeValue) {
        if self.any_false(op_id) {
            self.observe_conflict(op_id);
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Conflict));
            return;
        }
        // All statuses true over an m-quorum: the write is complete.
        let Some(op) = self.ops.get(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        let op_ts = op.ts;
        let result = match &op.kind {
            OpKind::ReadStripe => Some(OpResult::Stripe(value)),
            OpKind::ReadBlocks { js, single } => {
                let mut out: Vec<BlockValue> = js
                    .iter()
                    .map(|&j| stripe_block_value(&value, j, self.cfg.block_size()))
                    .collect();
                if *single {
                    // Exactly one (validated) index for a single-block read.
                    out.pop().map(OpResult::Block)
                } else {
                    Some(OpResult::Blocks(out))
                }
            }
            OpKind::WriteStripe { .. } | OpKind::WriteBlocks { .. } => Some(OpResult::Written),
            OpKind::Scrub => Some(OpResult::Stripe(value)),
        };
        let (Some(ts), Some(result)) = (op_ts, result) else {
            self.record_error(ProtocolError::Invariant(
                "store-stripe without a timestamp or a reportable result",
            ));
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        self.maybe_gc(fx, op_id, ts);
        self.complete(fx, op_id, result);
    }

    /// Alg. 3 lines 74–79: evaluate the `Order&Read` round of
    /// `fast-write-block` (generalized to a block set).
    fn progress_fast_write_order(&mut self, fx: &mut dyn Effects, op_id: OpId) {
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        let OpKind::WriteBlocks { updates, .. } = &op.kind else {
            self.record_error(ProtocolError::PhaseKindMismatch {
                op: op_id,
                expected: "a block write in FastWriteOrderRead",
            });
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        let updates = updates.clone();
        let js: Vec<ProcessId> = updates
            .iter()
            .map(|(j, _)| ProcessId::new(*j as u32))
            .collect();

        if self.any_false(op_id) {
            // Fast write misses; try the slow path with the same ts
            // (Alg. 3 line 72–73).
            self.begin_recovery(fx, op_id, false);
            return;
        }
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        let op_ts = op.ts;
        // Every written process must have answered with its block.
        let mut olds: Vec<BlockValue> = Vec::with_capacity(js.len());
        let mut ts_js: Vec<Timestamp> = Vec::with_capacity(js.len());
        for j in &js {
            match op.replies.get(j.index()).and_then(|r| r.as_ref()) {
                Some(Reply::OrderReadR {
                    lts,
                    block: Some(old),
                    ..
                }) => {
                    olds.push(old.clone());
                    ts_js.push(*lts);
                }
                _ => {
                    // Missing (or blockless) reply from a written process.
                    if op.grace_expired {
                        self.begin_recovery(fx, op_id, false);
                    } else if op.grace_timer.is_none() {
                        let t = fx.set_timer(self.cfg.fast_grace);
                        op.grace_timer = Some(t);
                        self.grace_timers.insert(t, op_id);
                    }
                    return;
                }
            }
        }
        // The fast path needs one consistent base version across all
        // written blocks; mixed versions mean the stripe is mid-update —
        // recover instead (no Modify has been sent, so the same ts is
        // safe).
        let Some(&ts_j) = ts_js.first() else {
            // js was validated non-empty at invocation.
            self.record_error(ProtocolError::Invariant(
                "block write with an empty target set",
            ));
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        if ts_js.iter().any(|t| *t != ts_j) {
            self.begin_recovery(fx, op_id, false);
            return;
        }

        // Build per-destination Modify payloads per the write strategy.
        let Some(ts) = op_ts else {
            self.record_error(ProtocolError::MissingTimestamp(op_id));
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        let n = self.cfg.n();
        let m = self.cfg.m();
        let block_size = self.cfg.block_size();
        let full_updates: Vec<BlockUpdate> = olds
            .iter()
            .zip(&updates)
            .map(|(old, (_, new))| BlockUpdate {
                old: old.clone(),
                new: new.clone(),
            })
            .collect();
        let mut delta_fallbacks = 0usize;
        let mut outgoing = Vec::with_capacity(n);
        for i in 0..n {
            // The new block destined for process i, when i is written.
            let written_new = updates
                .iter()
                .find(|(j, _)| *j == i)
                .map(|(_, new)| new.clone());
            let payload = match self.cfg.write_strategy {
                WriteStrategy::Paper => ModifyPayload::Full {
                    updates: full_updates.clone(),
                },
                WriteStrategy::Targeted => {
                    if let Some(new) = written_new {
                        ModifyPayload::NewValue { new }
                    } else if i >= m {
                        ModifyPayload::Full {
                            updates: full_updates.clone(),
                        }
                    } else {
                        ModifyPayload::Empty
                    }
                }
                WriteStrategy::Delta => {
                    if let Some(new) = written_new {
                        ModifyPayload::NewValue { new }
                    } else if i >= m {
                        // Coded deltas are linear: fold every per-block
                        // contribution straight into one parity patch with
                        // the accumulating (allocation-free) variant — the
                        // seed allocated a fresh delta block per written
                        // block per parity destination.
                        let mut combined = vec![0u8; block_size];
                        let mut ok = true;
                        for (old, (j, new)) in olds.iter().zip(&updates) {
                            let Some(old_bytes) = old.materialize(block_size) else {
                                ok = false; // a ⊥ base has no bytes to diff
                                break;
                            };
                            if self
                                .cfg
                                .codec()
                                .coded_delta_acc(*j, i, &old_bytes, new, &mut combined)
                                .is_err()
                            {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            ModifyPayload::Delta {
                                delta: Bytes::from(combined),
                            }
                        } else {
                            // The full payload is a safe superset of the
                            // delta: the replica recomputes its block from
                            // (old, new) pairs instead of patching.
                            delta_fallbacks += 1;
                            ModifyPayload::Full {
                                updates: full_updates.clone(),
                            }
                        }
                    } else {
                        ModifyPayload::Empty
                    }
                }
            };
            outgoing.push(Request::Modify {
                js: js.clone(),
                ts_j,
                ts,
                payload,
            });
        }
        if delta_fallbacks > 0 {
            self.record_error(ProtocolError::Codec(
                "delta encoding unavailable; fell back to full Modify payloads",
            ));
        }
        self.restart_phase(fx, op_id, Phase::FastWriteModify, outgoing);
    }

    /// Alg. 3 lines 80–82: evaluate the `Modify` round.
    fn progress_fast_write_modify(&mut self, fx: &mut dyn Effects, op_id: OpId) {
        if self.any_false(op_id) {
            // Fall back to slow-write-block with a FRESH timestamp: some
            // replicas may have applied this Modify, and their `[ts, b]`
            // entries would refuse every same-`ts` Order&Read (see
            // `begin_recovery`).
            self.begin_recovery(fx, op_id, true);
            return;
        }
        let Some(ts) = self.ops.get(&op_id).and_then(|op| op.ts) else {
            self.record_error(ProtocolError::MissingTimestamp(op_id));
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        self.maybe_gc(fx, op_id, ts);
        self.complete(fx, op_id, OpResult::Written);
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// Starts the `recover()` flow (Alg. 1 lines 17–23): assign a fresh
    /// timestamp for reads and begin `read-prev-stripe` from `HighTS`.
    ///
    /// `fresh_ts` controls whether a write entering the slow path keeps
    /// its timestamp (Alg. 3 line 73) or mints a new one. The pseudocode
    /// always keeps it, but that is a liveness hole: when a `Modify` round
    /// fails *after applying at some replicas* (e.g. a stale `p_j` that
    /// just recovered applies alone), those appliers hold `[ts, b]` and
    /// will answer `false` to any same-`ts` `Order&Read` forever —
    /// retrying the write can never converge. Minting a fresh timestamp
    /// after a failed `Modify` turns the appliers' residue into an
    /// ordinary partial-write ghost that the recovery scan rolls past,
    /// restoring convergence without weakening the order (the fresh
    /// timestamp still loses to any genuinely newer competitor).
    fn begin_recovery(&mut self, fx: &mut dyn Effects, op_id: OpId, fresh_ts: bool) {
        let now = fx.now();
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        op.recovered = true;
        let existing_ts = op.ts;
        let ts = match (fresh_ts, existing_ts) {
            (false, Some(ts)) => ts,
            _ => {
                let ts = self.ts_gen.next(now);
                if let Some(op) = self.ops.get_mut(&op_id) {
                    op.ts = Some(ts);
                }
                self.trace(op_id, now, TraceEvent::TimestampAssigned { ts });
                ts
            }
        };
        let outgoing = vec![
            Request::OrderRead {
                target: BlockTarget::All,
                below: Timestamp::HIGH,
                ts,
            };
            self.cfg.n()
        ];
        self.restart_phase(
            fx,
            op_id,
            Phase::RecoverOrderRead {
                bound: Timestamp::HIGH,
                iteration: 0,
            },
            outgoing,
        );
    }

    /// Moves `op` into `StoreStripe { value }`, deriving the per-process
    /// `Write` requests. (Taking the phase's payload directly — rather than
    /// a generic `Phase` — makes the one legal transition the only
    /// expressible one; the seed's `enter_phase` needed an `unreachable!`
    /// arm for every other phase.)
    fn enter_store_phase(&mut self, fx: &mut dyn Effects, op_id: OpId, value: StripeValue) {
        let Some(ts) = self.ops.get(&op_id).and_then(|op| op.ts) else {
            self.record_error(ProtocolError::MissingTimestamp(op_id));
            self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
            return;
        };
        let outgoing = match encode_stripe_writes(&self.cfg, &value, ts) {
            Ok(out) => out,
            Err(err) => {
                self.record_error(err);
                self.complete(fx, op_id, OpResult::Aborted(AbortReason::Internal));
                return;
            }
        };
        self.restart_phase(fx, op_id, Phase::StoreStripe { value }, outgoing);
    }

    /// Resets per-phase reply state, installs a fresh round, broadcasts.
    fn restart_phase(
        &mut self,
        fx: &mut dyn Effects,
        op_id: OpId,
        phase: Phase,
        outgoing: Vec<Request>,
    ) {
        self.next_round += 1;
        let round = self.next_round;
        let Some(op) = self.ops.get_mut(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        self.rounds.remove(&op.round);
        self.rounds.insert(round, op_id);
        op.round = round;
        op.phase = phase;
        op.rounds_used += 1;
        if op.order_done_at.is_none()
            && matches!(op.phase, Phase::StoreStripe { .. } | Phase::FastWriteModify)
        {
            op.order_done_at = Some(fx.now());
        }
        op.outgoing = outgoing;
        op.tracker = QuorumTracker::new(self.cfg.quorum());
        op.replies = vec![None; self.cfg.n()];
        if let Some(t) = op.grace_timer.take() {
            self.grace_timers.remove(&t);
            fx.cancel_timer(t);
        }
        op.grace_expired = false;
        let label = phase_label(&op.phase);
        broadcast(fx, op, None);
        self.trace(
            op_id,
            fx.now(),
            TraceEvent::PhaseEntered {
                phase: label,
                round,
            },
        );
    }

    /// Whether any collected reply of the current round has status false.
    fn any_false(&self, op_id: OpId) -> bool {
        self.ops
            .get(&op_id)
            .is_some_and(|op| op.replies.iter().flatten().any(|r| !r.status()))
    }

    /// After a conflict abort, advance our clock past the highest
    /// timestamp the replicas reported so a retry wins (PROGRESS,
    /// Prop. 23).
    fn observe_conflict(&mut self, op_id: OpId) {
        let Some(op) = self.ops.get(&op_id) else {
            return;
        };
        let mut highest = Timestamp::LOW;
        for r in op.replies.iter().flatten() {
            highest = highest.max(r.seen());
        }
        if let Some(ts) = op.ts {
            highest = highest.max(ts);
        }
        self.ts_gen.observe(highest);
    }

    /// Advances this coordinator's `newTS` clock past `ts`. Drivers call
    /// this after recovering replica state from stable storage, so a
    /// restarted process does not mint timestamps below what it already
    /// stored (its pre-crash clock was necessarily ahead of them).
    pub fn observe_timestamp(&mut self, ts: Timestamp) {
        self.ts_gen.observe(ts);
    }

    /// §5.1: after a complete write at `ts`, asynchronously tell everyone
    /// to drop older versions.
    fn maybe_gc(&mut self, fx: &mut dyn Effects, op_id: OpId, ts: Timestamp) {
        if self.cfg.gc != GcPolicy::AfterCompleteWrite {
            return;
        }
        let Some(stripe) = self.ops.get(&op_id).map(|op| op.stripe) else {
            return;
        };
        for i in 0..self.cfg.n() {
            // Coordinator state is volatile by design (§4.1).
            // xtask-allow(log-before-send): fire-and-forget GC hint; nothing to persist
            fx.send(
                ProcessId::new(i as u32),
                Envelope {
                    stripe,
                    round: 0, // fire-and-forget: no reply expected
                    kind: Payload::Request(Request::Gc { up_to: ts }),
                },
            );
        }
    }

    fn complete(&mut self, fx: &mut dyn Effects, op_id: OpId, result: OpResult) {
        let Some(op) = self.ops.remove(&op_id) else {
            self.record_error(ProtocolError::UnknownOp(op_id));
            return;
        };
        self.rounds.remove(&op.round);
        if let Some(t) = op.retransmit_timer {
            self.timers.remove(&t);
            fx.cancel_timer(t);
        }
        if let Some(t) = op.grace_timer {
            self.grace_timers.remove(&t);
            fx.cancel_timer(t);
        }
        if self.tracing {
            if let Some(mut trace) = self.traces.remove(&op_id) {
                let outcome = match &result {
                    OpResult::Aborted(r) => format!("aborted: {r}"),
                    OpResult::Written => "written".to_string(),
                    OpResult::Stripe(_) | OpResult::Block(_) | OpResult::Blocks(_) => {
                        "read ok".to_string()
                    }
                };
                trace.push(fx.now(), TraceEvent::Completed { outcome });
                self.finished_traces.push(trace);
            }
        }
        if let Some(metrics) = &self.metrics {
            let now = fx.now();
            let latency = now.saturating_sub(op.invoked_at);
            metrics.record_rounds(op.rounds_used);
            match &result {
                OpResult::Aborted(_) => metrics.record_abort(),
                _ => match &op.kind {
                    OpKind::ReadStripe | OpKind::ReadBlocks { .. } => {
                        metrics.record_read(op.recovered, latency);
                    }
                    OpKind::WriteStripe { .. } | OpKind::WriteBlocks { .. } => {
                        let order = op.order_done_at.map(|t| t.saturating_sub(op.invoked_at));
                        let store = op.order_done_at.map(|t| now.saturating_sub(t));
                        metrics.record_write(latency, order, store);
                    }
                    OpKind::Scrub => metrics.record_scrub(),
                },
            }
        }
        self.completions.push(Completion {
            op: op.id,
            stripe: op.stripe,
            result,
            invoked_at: op.invoked_at,
            completed_at: fx.now(),
            recovered: op.recovered,
        });
    }
}

/// Sends the current phase's request to every process (or, when `only_missing`
/// carries the phase tracker, only to processes that have not replied).
fn broadcast(fx: &mut dyn Effects, op: &Op, only_missing: Option<&QuorumTracker>) {
    for (i, req) in op.outgoing.iter().enumerate() {
        let pid = ProcessId::new(i as u32);
        if let Some(tracker) = only_missing {
            if tracker.has_replied(pid) {
                continue;
            }
        }
        // Coordinator state is volatile by design (§4.1); durability lives in
        // the replica logs, so there is nothing to persist before a request.
        // xtask-allow(log-before-send): coordinator requests carry no durable state
        fx.send(
            pid,
            Envelope {
                stripe: op.stripe,
                round: op.round,
                kind: Payload::Request(req.clone()),
            },
        );
    }
}

/// A short label for an operation kind (traces).
fn kind_label(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::ReadStripe => "read-stripe",
        OpKind::WriteStripe { .. } => "write-stripe",
        OpKind::ReadBlocks { single: true, .. } => "read-block",
        OpKind::ReadBlocks { .. } => "read-blocks",
        OpKind::WriteBlocks { updates } if updates.len() == 1 => "write-block",
        OpKind::WriteBlocks { .. } => "write-blocks",
        OpKind::Scrub => "scrub",
    }
}

/// A short label for a phase (traces).
fn phase_label(phase: &Phase) -> String {
    match phase {
        Phase::FastRead { .. } => "FastRead".to_string(),
        Phase::Order => "Order".to_string(),
        Phase::RecoverOrderRead { iteration, .. } => {
            format!("RecoverOrderRead#{iteration}")
        }
        Phase::StoreStripe { .. } => "StoreStripe".to_string(),
        Phase::FastWriteOrderRead => "FastWriteOrderRead".to_string(),
        Phase::FastWriteModify => "FastWriteModify".to_string(),
    }
}

/// Validates a block-index set: non-empty, strictly ascending (thus
/// distinct), within `0..m`.
fn validate_block_set(js: &[usize], m: usize) -> Result<(), InvokeError> {
    if js.is_empty() {
        return Err(InvokeError::BlockOutOfRange { index: 0, bound: m });
    }
    for (i, &j) in js.iter().enumerate() {
        if j >= m {
            return Err(InvokeError::BlockOutOfRange { index: j, bound: m });
        }
        if i > 0 && js[i - 1] >= j {
            return Err(InvokeError::BlockOutOfRange { index: j, bound: m });
        }
    }
    Ok(())
}

/// Reconstructs a stripe value from ≥ m `(process-index, block)` pairs that
/// are valid at one version. All-`nil` blocks yield the nil stripe;
/// otherwise the blocks decode through the codec, with `nil` materialized
/// as zeros (a block write onto a fresh stripe leaves its untouched
/// siblings at `nil`, which reads as zeros — encode(zero stripe) is zero
/// everywhere, so the arithmetic is consistent).
fn assemble_stripe(cfg: &RegisterConfig, blocks: &[(usize, BlockValue)]) -> Option<StripeValue> {
    debug_assert!(blocks.len() >= cfg.m());
    if blocks.iter().all(|(_, b)| b.is_nil()) {
        return Some(StripeValue::Nil);
    }
    let mut shares: Vec<(usize, Bytes)> = Vec::with_capacity(cfg.m());
    for (i, b) in blocks {
        match b {
            BlockValue::Data(bytes) => shares.push((*i, bytes.clone())),
            BlockValue::Nil => shares.push((*i, Bytes::from(vec![0u8; cfg.block_size()]))),
            BlockValue::Bottom => continue,
        }
        if shares.len() == cfg.m() {
            break;
        }
    }
    if shares.len() < cfg.m() {
        return None; // ⊥ blocks in an assembled group: outside the fault model
    }
    let share_refs: Vec<Share<'_>> = shares
        .iter()
        .map(|(i, b)| Share::new(*i, b.as_ref()))
        .collect();
    let data = cfg.codec().decode(&share_refs).ok()?;
    Some(StripeValue::Data(
        data.into_iter().map(Bytes::from).collect(),
    ))
}

/// Extracts block `j` of a stripe value as a `BlockValue`.
fn stripe_block_value(value: &StripeValue, j: usize, block_size: usize) -> BlockValue {
    match value {
        StripeValue::Nil => BlockValue::Nil,
        StripeValue::Data(_) => BlockValue::Data(value.block(j, block_size)),
    }
}

/// Encodes a stripe value into per-destination `Write` requests.
///
/// # Errors
///
/// Returns [`ProtocolError::Codec`] when the codec rejects the stripe
/// (wrong block count or size — impossible for invocation-validated input).
fn encode_stripe_writes(
    cfg: &RegisterConfig,
    value: &StripeValue,
    ts: Timestamp,
) -> Result<Vec<Request>, ProtocolError> {
    match value {
        StripeValue::Nil => Ok((0..cfg.n())
            .map(|_| Request::Write {
                block: BlockValue::Nil,
                ts,
            })
            .collect()),
        StripeValue::Data(blocks) => {
            let encoded = cfg
                .codec()
                .encode(blocks)
                .map_err(|_| ProtocolError::Codec("stripe encode rejected validated dimensions"))?;
            Ok(encoded
                .into_iter()
                .map(|b| Request::Write {
                    block: BlockValue::Data(Bytes::from(b)),
                    ts,
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::mock::MockFx;

    fn cfg(m: usize, n: usize) -> Arc<RegisterConfig> {
        Arc::new(RegisterConfig::new(m, n, 8).unwrap())
    }

    fn stripe0() -> StripeId {
        StripeId(0)
    }

    #[test]
    fn read_stripe_broadcasts_read_to_all() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        let _op = c.invoke_read_stripe(&mut fx, stripe0());
        assert_eq!(fx.sent.len(), 4);
        let mut target_count = 0;
        for (to, env) in &fx.sent {
            assert!(to.index() < 4);
            match &env.kind {
                Payload::Request(Request::Read { targets }) => {
                    assert_eq!(targets.len(), 2, "m targets");
                    if targets.contains(to) {
                        target_count += 1;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(target_count, 2);
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn write_stripe_validates_input() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        let err = c
            .invoke_write_stripe(&mut fx, stripe0(), vec![Bytes::from(vec![0u8; 8])])
            .unwrap_err();
        assert!(matches!(err, InvokeError::WrongBlockCount { .. }));
        let err = c
            .invoke_write_stripe(
                &mut fx,
                stripe0(),
                vec![Bytes::from(vec![0u8; 3]), Bytes::from(vec![0u8; 3])],
            )
            .unwrap_err();
        assert!(matches!(err, InvokeError::WrongBlockSize { .. }));
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn block_ops_validate_index() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        assert!(matches!(
            c.invoke_read_block(&mut fx, stripe0(), 2),
            Err(InvokeError::BlockOutOfRange { index: 2, bound: 2 })
        ));
        assert!(matches!(
            c.invoke_write_block(&mut fx, stripe0(), 5, Bytes::from(vec![0u8; 8])),
            Err(InvokeError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn write_stripe_orders_then_stores() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        let blocks = vec![Bytes::from(vec![1u8; 8]), Bytes::from(vec![2u8; 8])];
        let _op = c.invoke_write_stripe(&mut fx, stripe0(), blocks).unwrap();
        // Phase 1: Order to all 4.
        assert_eq!(fx.sent.len(), 4);
        let round = match &fx.sent[0].1.kind {
            Payload::Request(Request::Order { .. }) => fx.sent[0].1.round,
            other => panic!("expected Order, got {other:?}"),
        };
        fx.sent.clear();
        // Feed an all-true quorum (size 3 for 2-of-4).
        for i in 0..3u32 {
            c.on_reply(
                &mut fx,
                ProcessId::new(i),
                &Envelope {
                    stripe: stripe0(),
                    round,
                    kind: Payload::Reply(Reply::OrderR {
                        status: true,
                        seen: Timestamp::LOW,
                    }),
                },
            );
        }
        // Phase 2: Write to all 4, carrying distinct encoded blocks.
        assert_eq!(fx.sent.len(), 4);
        let write_round = fx.sent[0].1.round;
        assert_ne!(write_round, round, "fresh round per phase");
        for (to, env) in &fx.sent {
            match &env.kind {
                Payload::Request(Request::Write { block, .. }) => {
                    let b = block.materialize(8).unwrap();
                    if to.index() == 0 {
                        assert_eq!(b.as_ref(), &[1u8; 8]);
                    } else if to.index() == 1 {
                        assert_eq!(b.as_ref(), &[2u8; 8]);
                    }
                }
                other => panic!("expected Write, got {other:?}"),
            }
        }
        fx.sent.clear();
        // All-true Write quorum completes the op (plus async GC to all).
        for i in 0..3u32 {
            c.on_reply(
                &mut fx,
                ProcessId::new(i),
                &Envelope {
                    stripe: stripe0(),
                    round: write_round,
                    kind: Payload::Reply(Reply::WriteR {
                        status: true,
                        seen: Timestamp::LOW,
                    }),
                },
            );
        }
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].result, OpResult::Written);
        assert!(!done[0].recovered);
        assert_eq!(c.in_flight(), 0);
        // Default GC policy broadcast Gc to all n.
        let gcs = fx
            .sent
            .iter()
            .filter(|(_, e)| matches!(e.kind, Payload::Request(Request::Gc { .. })))
            .count();
        assert_eq!(gcs, 4);
    }

    #[test]
    fn order_conflict_aborts() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        let blocks = vec![Bytes::from(vec![1u8; 8]), Bytes::from(vec![2u8; 8])];
        c.invoke_write_stripe(&mut fx, stripe0(), blocks).unwrap();
        let round = fx.sent[0].1.round;
        for (i, status) in [(0u32, true), (1, false), (2, true)] {
            c.on_reply(
                &mut fx,
                ProcessId::new(i),
                &Envelope {
                    stripe: stripe0(),
                    round,
                    kind: Payload::Reply(Reply::OrderR {
                        status,
                        seen: Timestamp::LOW,
                    }),
                },
            );
        }
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].result, OpResult::Aborted(AbortReason::Conflict));
    }

    #[test]
    fn stale_and_duplicate_replies_are_ignored() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        let blocks = vec![Bytes::from(vec![1u8; 8]), Bytes::from(vec![2u8; 8])];
        c.invoke_write_stripe(&mut fx, stripe0(), blocks).unwrap();
        let round = fx.sent[0].1.round;
        let reply = |status| Envelope {
            stripe: stripe0(),
            round,
            kind: Payload::Reply(Reply::OrderR {
                status,
                seen: Timestamp::LOW,
            }),
        };
        c.on_reply(&mut fx, ProcessId::new(0), &reply(true));
        // Duplicate from p0 with status false must be ignored.
        c.on_reply(&mut fx, ProcessId::new(0), &reply(false));
        // Stale round must be ignored.
        c.on_reply(
            &mut fx,
            ProcessId::new(1),
            &Envelope {
                stripe: stripe0(),
                round: round + 999,
                kind: Payload::Reply(Reply::OrderR {
                    status: false,
                    seen: Timestamp::LOW,
                }),
            },
        );
        c.on_reply(&mut fx, ProcessId::new(1), &reply(true));
        c.on_reply(&mut fx, ProcessId::new(2), &reply(true));
        // Op progressed to the Write phase rather than aborting.
        assert_eq!(c.in_flight(), 1);
        assert!(c.drain_completions().is_empty());
    }

    #[test]
    fn retransmit_timer_resends_to_missing_only() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        c.invoke_read_stripe(&mut fx, stripe0());
        let round = fx.sent[0].1.round;
        fx.sent.clear();
        // One reply arrives, then the retransmit timer fires.
        c.on_reply(
            &mut fx,
            ProcessId::new(2),
            &Envelope {
                stripe: stripe0(),
                round,
                kind: Payload::Reply(Reply::ReadR {
                    status: true,
                    val_ts: Timestamp::LOW,
                    block: None,
                }),
            },
        );
        let owned = c.on_timer(&mut fx, 1); // first timer id from MockFx
        assert!(owned);
        let resent: Vec<u32> = fx.sent.iter().map(|(to, _)| to.value()).collect();
        assert_eq!(resent, vec![0, 1, 3], "p2 already replied");
    }

    #[test]
    fn unknown_timer_is_not_ours() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        assert!(!c.on_timer(&mut fx, 4242));
    }

    #[test]
    fn coordinator_crash_forgets_in_flight_ops() {
        let mut fx = MockFx::default();
        let mut c = Coordinator::new(ProcessId::new(0), cfg(2, 4));
        c.invoke_read_stripe(&mut fx, stripe0());
        assert_eq!(c.in_flight(), 1);
        c.on_crash();
        assert_eq!(c.in_flight(), 0);
        assert!(c.drain_completions().is_empty());
    }

    #[test]
    fn assemble_stripe_handles_nil_and_data() {
        let cfg = cfg(2, 4);
        let nil = assemble_stripe(&cfg, &[(0, BlockValue::Nil), (3, BlockValue::Nil)]);
        assert_eq!(nil, Some(StripeValue::Nil));

        let stripe: Vec<Vec<u8>> = vec![vec![7u8; 8], vec![9u8; 8]];
        let enc = cfg.codec().encode(&stripe).unwrap();
        let got = assemble_stripe(
            &cfg,
            &[
                (1, BlockValue::Data(Bytes::from(enc[1].clone()))),
                (3, BlockValue::Data(Bytes::from(enc[3].clone()))),
            ],
        )
        .unwrap();
        match got {
            StripeValue::Data(blocks) => {
                assert_eq!(blocks[0].as_ref(), &[7u8; 8]);
                assert_eq!(blocks[1].as_ref(), &[9u8; 8]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
