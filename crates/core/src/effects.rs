//! The driver interface for sans-io protocol state machines.
//!
//! Coordinators never perform I/O directly: they emit sends and timer
//! operations through an [`Effects`] implementation supplied by the driver.
//! Two drivers exist in this repository — the deterministic simulator
//! ([`crate::brick`], over `fab-simnet`) and the threaded cluster runtime
//! (`fab-runtime`) — and both reuse the identical protocol logic, which is
//! the point: the algorithm is tested under simulated asynchrony and then
//! deployed unchanged on real threads.

use crate::messages::Envelope;
use fab_timestamp::ProcessId;

/// Driver-provided I/O capabilities for one protocol participant.
pub trait Effects {
    /// Sends an envelope to `to` (which may be the sender itself).
    fn send(&mut self, to: ProcessId, env: Envelope);

    /// Arms a one-shot timer `delay` ticks from now, returning its id.
    fn set_timer(&mut self, delay: u64) -> u64;

    /// Cancels a pending timer; unknown ids are ignored.
    fn cancel_timer(&mut self, id: u64);

    /// Current time in ticks (virtual in the simulator, microseconds on
    /// the threaded runtime). Used only as the `newTS` clock hint.
    fn now(&self) -> u64;

    /// Uniform random 64-bit value (for fast-read target selection).
    fn rand_u64(&mut self) -> u64;
}

/// Samples `k` distinct process ids from `0..n` using driver randomness
/// (the "pick m random processes" of Alg. 1 line 6).
pub fn sample_processes(fx: &mut dyn Effects, n: usize, k: usize) -> Vec<ProcessId> {
    debug_assert!(k <= n);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    // Partial Fisher–Yates: fix up the first k slots.
    for i in 0..k {
        let j = i + (fx.rand_u64() as usize) % (n - i);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.sort_unstable();
    ids.into_iter().map(ProcessId::new).collect()
}

#[cfg(test)]
pub(crate) mod mock {
    //! A recording [`Effects`] implementation for unit tests.

    use super::*;

    #[derive(Debug, Default)]
    pub struct MockFx {
        pub sent: Vec<(ProcessId, Envelope)>,
        pub now: u64,
        pub next_timer: u64,
        pub cancelled: Vec<u64>,
        pub rand_state: u64,
    }

    impl Effects for MockFx {
        fn send(&mut self, to: ProcessId, env: Envelope) {
            self.sent.push((to, env));
        }
        fn set_timer(&mut self, _delay: u64) -> u64 {
            self.next_timer += 1;
            self.next_timer
        }
        fn cancel_timer(&mut self, id: u64) {
            self.cancelled.push(id);
        }
        fn now(&self) -> u64 {
            self.now
        }
        fn rand_u64(&mut self) -> u64 {
            // xorshift: deterministic but varied.
            self.rand_state ^= self.rand_state << 13;
            self.rand_state ^= self.rand_state >> 7;
            self.rand_state ^= self.rand_state << 17;
            self.rand_state = self.rand_state.wrapping_add(0x9E3779B97F4A7C15);
            self.rand_state
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::MockFx;
    use super::*;

    #[test]
    fn sample_is_distinct_sorted_and_in_range() {
        let mut fx = MockFx::default();
        for k in 0..=8 {
            let picked = sample_processes(&mut fx, 8, k);
            assert_eq!(picked.len(), k);
            assert!(picked.windows(2).all(|w| w[0] < w[1]), "distinct + sorted");
            assert!(picked.iter().all(|p| p.index() < 8));
        }
    }

    #[test]
    fn sample_varies_across_calls() {
        let mut fx = MockFx::default();
        let a = sample_processes(&mut fx, 16, 8);
        let b = sample_processes(&mut fx, 16, 8);
        let c = sample_processes(&mut fx, 16, 8);
        assert!(a != b || b != c, "three identical samples are implausible");
    }
}
