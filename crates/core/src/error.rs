//! Typed protocol errors.
//!
//! The coordinator and replica state machines never panic on malformed or
//! surprising input (enforced by `cargo xtask analyze`, lint `no-panic`).
//! Conditions that the seed implementation treated as `unreachable!` /
//! `.expect()` are instead surfaced as [`ProtocolError`] values: replicas
//! refuse the request (`status: false`), and coordinators record the error
//! for the driver to inspect via
//! [`Coordinator::take_protocol_errors`](crate::Coordinator::take_protocol_errors).
//!
//! Rationale: a brick is a long-lived storage appliance. A single corrupted
//! or adversarially-crafted message must not take down the whole process —
//! the fault model (§2.1) already forces every handler to tolerate
//! arbitrary message loss and reordering, so "refuse and keep serving" is
//! strictly more robust than "abort the process", and the error channel
//! keeps the misbehaviour observable instead of silently swallowed.

use crate::coordinator::OpId;
use std::error::Error;
use std::fmt;

/// An internal invariant violation detected (and survived) by the protocol
/// state machines.
///
/// Under the fault model, none of these occur; each one indicates either a
/// local bug or input from a process misbehaving beyond crash-recovery
/// faults. They are recorded rather than panicked so a production brick
/// degrades per-operation, not per-process.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// An event referenced an operation id with no live operation.
    UnknownOp(OpId),
    /// An operation that must already carry a timestamp does not.
    MissingTimestamp(OpId),
    /// An operation's phase does not match its kind (e.g. an `Order` phase
    /// on a read operation).
    PhaseKindMismatch {
        /// The operation.
        op: OpId,
        /// What the phase logic required.
        expected: &'static str,
    },
    /// The erasure codec rejected dimensions the coordinator had already
    /// validated.
    Codec(&'static str),
    /// Any other broken invariant, described statically.
    Invariant(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownOp(op) => write!(f, "no live operation with id {op}"),
            ProtocolError::MissingTimestamp(op) => {
                write!(f, "operation {op} is missing its timestamp")
            }
            ProtocolError::PhaseKindMismatch { op, expected } => {
                write!(f, "operation {op}: phase/kind mismatch (expected {expected})")
            }
            ProtocolError::Codec(detail) => write!(f, "codec invariant violated: {detail}"),
            ProtocolError::Invariant(detail) => write!(f, "invariant violated: {detail}"),
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ProtocolError::UnknownOp(7).to_string().contains('7'));
        assert!(ProtocolError::Codec("encode failed")
            .to_string()
            .contains("encode failed"));
        let e = ProtocolError::PhaseKindMismatch {
            op: 3,
            expected: "write-stripe",
        };
        assert!(e.to_string().contains("write-stripe"));
    }
}
