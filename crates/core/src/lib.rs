//! Strictly linearizable erasure-coded storage registers over m-quorums —
//! the core algorithm of *"A Decentralized Algorithm for Erasure-Coded
//! Virtual Disks"* (Frølund, Merchant, Saito, Spence, Veitch; DSN 2004).
//!
//! A set of n storage bricks collectively emulates, per stripe of data, a
//! **storage register**: a read/write register that is *strictly
//! linearizable* — operations appear to execute atomically between
//! invocation and response, and a write whose coordinator crashes either
//! takes effect before the crash or not at all (no delayed mutations),
//! which is the property that makes the register safe to put under a
//! virtual disk. The register tolerates `f = ⌊(n−m)/2⌋` crash-recovery
//! faulty bricks with no failure detection at all: every operation simply
//! runs a vote over an m-quorum (any two quorums intersect in ≥ m bricks,
//! enough to decode m-of-n erasure-coded data).
//!
//! The crate is layered:
//!
//! * [`messages`] — the wire protocol of Algorithms 2–3,
//! * [`log`] / [`value`] — the persistent per-brick version log,
//! * [`replica`] — the brick-side message handlers,
//! * [`coordinator`] — the operation state machines of Algorithms 1 and 3
//!   (reads with a one-round fast path, two-phase writes, recovery that
//!   rolls partial writes forward or back, §5.1 garbage collection, §5.2
//!   write optimizations),
//! * [`effects`] — the sans-io driver interface,
//! * [`error`] — typed invariant-violation reporting (protocol code never
//!   panics; see `cargo xtask analyze`),
//! * [`brick`] — a deterministic-simulation driver ([`SimCluster`]) used
//!   by the test suite and benchmarks.
//!
//! # Quick start
//!
//! ```
//! use fab_core::{OpResult, RegisterConfig, SimCluster, StripeId, StripeValue};
//! use fab_simnet::SimConfig;
//! use fab_timestamp::ProcessId;
//! use bytes::Bytes;
//!
//! // 5-of-8 erasure coding, 1 KiB blocks, simulated network.
//! let cfg = RegisterConfig::new(5, 8, 1024)?;
//! let mut cluster = SimCluster::new(cfg, SimConfig::ideal(1));
//!
//! let stripe: Vec<Bytes> = (0..5).map(|i| Bytes::from(vec![i as u8; 1024])).collect();
//! let w = cluster.write_stripe(ProcessId::new(0), StripeId(0), stripe.clone());
//! assert_eq!(w, OpResult::Written);
//!
//! // Any brick can coordinate the read.
//! let r = cluster.read_stripe(ProcessId::new(7), StripeId(0));
//! assert_eq!(r, OpResult::Stripe(StripeValue::Data(stripe)));
//! # Ok::<(), fab_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod brick;
pub mod config;
pub mod coordinator;
pub mod effects;
pub mod error;
pub mod log;
pub mod messages;
pub mod obs;
pub mod replica;
pub mod trace;
pub mod value;

pub use brick::{Brick, OpCosts, SimCluster};
pub use config::{ConfigError, GcPolicy, RegisterConfig, WriteStrategy};
pub use coordinator::{AbortReason, Completion, Coordinator, InvokeError, OpId, OpResult};
pub use effects::Effects;
pub use error::ProtocolError;
pub use log::Log;
pub use messages::{
    BlockTarget, BlockUpdate, Envelope, ModifyPayload, Payload, Reply, Request, StripeId,
};
pub use obs::OpMetrics;
pub use replica::{DiskMetrics, PersistEvent, Replica};
pub use trace::{OpTrace, TraceEvent};
pub use value::{BlockValue, StripeValue};
