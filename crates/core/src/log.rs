//! The per-process persistent log of `⟨timestamp, block⟩` pairs (§4.2).
//!
//! Each process keeps a log of past write requests so that a read can
//! recover an older complete version when the newest write is partial
//! (§4.1.1). The log supports the three functions the pseudocode uses:
//!
//! * `max-ts(log)` — highest timestamp in the log,
//! * `max-block(log)` — the non-`⊥` value with the highest timestamp,
//! * `max-below(log, ts)` — the non-`⊥` value with the highest timestamp
//!   *strictly below* `ts`.
//!
//! Logs start as `{[LowTS, nil]}` and that sentinel entry is never removed
//! (it is zero-sized), so `max-block` and `max-below` always find a value.
//! Garbage collection (§5.1) removes data entries older than a timestamp
//! known to be part of a complete write, always retaining the newest entry
//! and the `LowTS` sentinel.

use crate::value::BlockValue;
use fab_timestamp::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The persistent per-process version log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log {
    entries: BTreeMap<Timestamp, BlockValue>,
}

impl Log {
    /// Creates the initial log `{[LowTS, nil]}`.
    pub fn new() -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(Timestamp::LOW, BlockValue::Nil);
        Log { entries }
    }

    /// `max-ts(log)`: the highest timestamp in the log (at least `LowTS`).
    pub fn max_ts(&self) -> Timestamp {
        // The LowTS sentinel is inserted at construction and never removed,
        // so the fallback is unreachable; it exists because protocol code
        // must not be able to panic (xtask lint `no-panic`).
        self.entries
            .keys()
            .next_back()
            .copied()
            .unwrap_or(Timestamp::LOW)
    }

    /// `max-block(log)`: the non-`⊥` value with the highest timestamp,
    /// together with that timestamp.
    pub fn max_block(&self) -> (Timestamp, &BlockValue) {
        // Falls back to the `[LowTS, nil]` sentinel that `new()` installs
        // and `gc()` retains — the same default `max_below` uses.
        self.entries
            .iter()
            .rev()
            .find(|(_, v)| !v.is_bottom())
            .map(|(ts, v)| (*ts, v))
            .unwrap_or((Timestamp::LOW, &BlockValue::Nil))
    }

    /// `max-below(log, ts)`: the non-`⊥` value with the highest timestamp
    /// strictly smaller than `ts`, together with that timestamp.
    ///
    /// Returns the `LowTS` sentinel when nothing smaller exists (matching
    /// the pseudocode's initialization `lts ← LowTS`, Alg. 2 line 51).
    pub fn max_below(&self, ts: Timestamp) -> (Timestamp, &BlockValue) {
        self.entries
            .range(..ts)
            .rev()
            .find(|(_, v)| !v.is_bottom())
            .map(|(t, v)| (*t, v))
            .unwrap_or((Timestamp::LOW, &BlockValue::Nil))
    }

    /// The *versioned* variant of `max-below` used by the `Order&Read`
    /// handler: returns the newest non-`⊥` value strictly below `ts`
    /// together with its **validity timestamp** — the newest entry
    /// timestamp (of any kind) strictly below `ts`.
    ///
    /// A `⊥` entry at `t` means "this process's block is unchanged at
    /// version `t`" (Alg. 3 line 96), so the block below it is still the
    /// correct content *at* `t`. Grouping recovery replies by validity
    /// timestamp lets `read-prev-stripe` reconstruct a version written by
    /// `write-block`, where only `k+1` processes hold fresh blocks and the
    /// other data processes hold `⊥` — fewer than m fresh blocks exist at
    /// that timestamp, but ≥ m *valid* ones do. (Grouping strictly by the
    /// blocks' own entry timestamps, a literal reading of Alg. 1 line 31,
    /// would make recovery skip past committed block writes whenever
    /// `n < 2m − 1`.)
    pub fn version_below(&self, ts: Timestamp) -> (Timestamp, &BlockValue) {
        let validity = self
            .entries
            .range(..ts)
            .next_back()
            .map(|(t, _)| *t)
            .unwrap_or(Timestamp::LOW);
        let (_, value) = self.max_below(ts);
        (validity, value)
    }

    /// Returns the entry at exactly `ts`, if present. Used for idempotent
    /// replay of retransmitted `Write`/`Modify` requests.
    pub fn entry_at(&self, ts: Timestamp) -> Option<&BlockValue> {
        self.entries.get(&ts)
    }

    /// Appends `[ts, value]` to the log (the pseudocode's
    /// `log ← log ∪ {[ts, b]}`). Overwrites an existing entry at `ts`
    /// (timestamps are globally unique so this only happens on replay).
    pub fn insert(&mut self, ts: Timestamp, value: BlockValue) {
        self.entries.insert(ts, value);
    }

    /// Number of entries, including the `LowTS` sentinel.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// A log is never empty (it always holds the sentinel).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total bytes of block data retained (the quantity GC bounds).
    pub fn data_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|v| match v {
                BlockValue::Data(b) => b.len(),
                _ => 0,
            })
            .sum()
    }

    /// Garbage-collects entries with timestamps strictly below `up_to`
    /// (§5.1), always retaining the `LowTS` sentinel, the newest entry, and
    /// the newest **non-`⊥`** entry. Returns the number of removed entries.
    ///
    /// Safety argument: `up_to` is the timestamp of a write that reached a
    /// full m-quorum, so every future read quorum intersects that quorum in
    /// ≥ m processes and recovery never needs a version older than `up_to`.
    /// The newest non-`⊥` entry must additionally survive because a `⊥`
    /// entry means "this process's block is *unchanged* at that version"
    /// (Alg. 3 line 96): the block content a `Read` must report is the
    /// newest non-`⊥` value, which may sit below the GC horizon.
    pub fn gc(&mut self, up_to: Timestamp) -> usize {
        let newest = self.max_ts();
        let (newest_block, _) = self.max_block();
        let before = self.entries.len();
        self.entries.retain(|&ts, _| {
            ts >= up_to || ts == newest || ts == newest_block || ts == Timestamp::LOW
        });
        before - self.entries.len()
    }

    /// Iterates over `(timestamp, value)` pairs in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, &BlockValue)> {
        self.entries.iter().map(|(ts, v)| (*ts, v))
    }
}

impl Default for Log {
    fn default() -> Self {
        Log::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fab_timestamp::ProcessId;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_parts(t, ProcessId::new(0))
    }

    fn data(s: &'static [u8]) -> BlockValue {
        BlockValue::Data(Bytes::from_static(s))
    }

    #[test]
    fn initial_log_is_low_nil() {
        let log = Log::new();
        assert_eq!(log.max_ts(), Timestamp::LOW);
        let (t, v) = log.max_block();
        assert_eq!(t, Timestamp::LOW);
        assert!(v.is_nil());
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
    }

    #[test]
    fn max_ts_tracks_highest_entry_even_bottom() {
        let mut log = Log::new();
        log.insert(ts(5), data(b"a"));
        log.insert(ts(9), BlockValue::Bottom);
        assert_eq!(log.max_ts(), ts(9));
    }

    #[test]
    fn max_block_skips_bottom() {
        let mut log = Log::new();
        log.insert(ts(5), data(b"a"));
        log.insert(ts(9), BlockValue::Bottom);
        let (t, v) = log.max_block();
        assert_eq!(t, ts(5));
        assert_eq!(v, &data(b"a"));
    }

    #[test]
    fn max_below_is_strict_and_skips_bottom() {
        let mut log = Log::new();
        log.insert(ts(3), data(b"x"));
        log.insert(ts(5), BlockValue::Bottom);
        log.insert(ts(7), data(b"y"));

        let (t, v) = log.max_below(ts(7));
        assert_eq!(t, ts(3), "skips the ⊥ at 5, excludes 7 itself");
        assert_eq!(v, &data(b"x"));

        let (t, _) = log.max_below(ts(8));
        assert_eq!(t, ts(7));

        let (t, v) = log.max_below(ts(3));
        assert_eq!(t, Timestamp::LOW);
        assert!(v.is_nil());

        // Below everything: the sentinel default.
        let (t, v) = log.max_below(Timestamp::LOW);
        assert_eq!(t, Timestamp::LOW);
        assert!(v.is_nil());
    }

    #[test]
    fn max_below_high_finds_newest_block() {
        let mut log = Log::new();
        log.insert(ts(3), data(b"x"));
        let (t, _) = log.max_below(Timestamp::HIGH);
        assert_eq!(t, ts(3));
    }

    #[test]
    fn entry_at_exact() {
        let mut log = Log::new();
        log.insert(ts(4), data(b"q"));
        assert_eq!(log.entry_at(ts(4)), Some(&data(b"q")));
        assert_eq!(log.entry_at(ts(5)), None);
    }

    #[test]
    fn gc_removes_old_data_keeps_sentinel_and_newest() {
        let mut log = Log::new();
        log.insert(ts(1), data(b"a"));
        log.insert(ts(2), data(b"b"));
        log.insert(ts(3), data(b"c"));
        let removed = log.gc(ts(3));
        assert_eq!(removed, 2);
        assert_eq!(log.entry_at(ts(1)), None);
        assert_eq!(log.entry_at(ts(2)), None);
        assert_eq!(log.entry_at(ts(3)), Some(&data(b"c")));
        assert_eq!(log.entry_at(Timestamp::LOW), Some(&BlockValue::Nil));
        assert_eq!(log.max_ts(), ts(3));
    }

    #[test]
    fn gc_on_stale_process_keeps_its_newest() {
        // A process whose newest entry is older than the GC horizon keeps
        // that entry so max-ts never regresses.
        let mut log = Log::new();
        log.insert(ts(1), data(b"a"));
        log.insert(ts(2), data(b"b"));
        let removed = log.gc(ts(10));
        assert_eq!(removed, 1);
        assert_eq!(log.max_ts(), ts(2));
        assert_eq!(log.entry_at(ts(2)), Some(&data(b"b")));
    }

    #[test]
    fn gc_bounds_data_bytes() {
        let mut log = Log::new();
        for i in 1..=100u64 {
            log.insert(ts(i), BlockValue::Data(Bytes::from(vec![0u8; 64])));
        }
        assert_eq!(log.data_bytes(), 6400);
        log.gc(ts(100));
        assert_eq!(log.data_bytes(), 64);
        assert_eq!(log.len(), 2); // sentinel + newest
    }

    #[test]
    fn insert_at_existing_ts_replaces() {
        let mut log = Log::new();
        log.insert(ts(4), BlockValue::Bottom);
        log.insert(ts(4), data(b"r"));
        assert_eq!(log.entry_at(ts(4)), Some(&data(b"r")));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn iter_is_ordered() {
        let mut log = Log::new();
        log.insert(ts(9), data(b"z"));
        log.insert(ts(2), data(b"a"));
        let keys: Vec<Timestamp> = log.iter().map(|(t, _)| t).collect();
        assert_eq!(keys, vec![Timestamp::LOW, ts(2), ts(9)]);
    }
}
