//! Protocol messages: the requests of Algorithms 2–3 and their replies.
//!
//! Every message travels inside an [`Envelope`] carrying the stripe it
//! addresses (one brick hosts one register instance per stripe; instances
//! share nothing, §4) and a *round* number. A round uniquely identifies one
//! messaging phase of one operation at one coordinator; replies echo it so
//! the coordinator can route them and discard stragglers from completed
//! phases. Retransmissions reuse the round number, and replica handlers are
//! idempotent, so fair-loss channels plus retransmission realize the
//! paper's non-blocking `quorum()` primitive (§2.2).

use crate::value::BlockValue;
use bytes::Bytes;
use fab_simnet::WireSize;
use fab_timestamp::{ProcessId, Timestamp};
use serde::{Deserialize, Serialize};

/// Identifies one storage-register instance hosted by the bricks (one per
/// stripe of a logical volume). Instances are fully independent (§4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct StripeId(pub u64);

impl std::fmt::Display for StripeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stripe{}", self.0)
    }
}

/// The block parameter of an `Order&Read` request: a specific process's
/// block, or `ALL` for whole-stripe recovery (Alg. 2 line 49).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockTarget {
    /// Every recipient reports its block (`j = ALL`).
    All,
    /// Only process `j` reports its block.
    One(ProcessId),
    /// The listed processes report their blocks (the footnote-2 extension
    /// to multi-block operations).
    Many(Vec<ProcessId>),
}

impl BlockTarget {
    /// Whether `pid` should report its block under this target.
    pub fn includes(&self, pid: ProcessId) -> bool {
        match self {
            BlockTarget::All => true,
            BlockTarget::One(j) => *j == pid,
            BlockTarget::Many(js) => js.contains(&pid),
        }
    }
}

/// One block update inside a `Modify` request: the old and new values of
/// one data block (the paper's `b_j` and `b`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockUpdate {
    /// The old value of the block (may be `nil` for a fresh stripe).
    pub old: BlockValue,
    /// The new value of the block.
    pub new: Bytes,
}

impl WireSize for BlockUpdate {
    fn wire_size(&self) -> usize {
        self.old.wire_size() + self.new.len()
    }
}

/// Block data attached to a `Modify` request, by §5.2 write strategy.
/// Updates are parallel to the request's `js` list (single-block writes
/// carry exactly one entry; the footnote-2 multi-block extension carries
/// several).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModifyPayload {
    /// The paper's pseudocode payload: old and new values of every written
    /// block. Serves both the written processes (each stores its new
    /// value) and parity processes (incremental `modify_{j,i}` folds).
    Full {
        /// Old/new pairs, parallel to the request's `js`.
        updates: Vec<BlockUpdate>,
    },
    /// §5.2(a) targeted variant for a written process: just its new value.
    NewValue {
        /// The new value of the recipient's block.
        new: Bytes,
    },
    /// §5.2(b) delta variant for one parity process: the pre-coded block
    /// `Σ_j g_{i,j} · (b_j′ − b_j)` the recipient XORs into its parity
    /// (coded deltas are linear, so multi-block updates combine into one).
    Delta {
        /// The combined coded parity delta.
        delta: Bytes,
    },
    /// Timestamp-only participation (processes that store neither a
    /// written block nor parity log `⊥`).
    Empty,
}

impl WireSize for ModifyPayload {
    fn wire_size(&self) -> usize {
        match self {
            ModifyPayload::Full { updates } => updates.iter().map(WireSize::wire_size).sum(),
            ModifyPayload::NewValue { new } => new.len(),
            ModifyPayload::Delta { delta } => delta.len(),
            ModifyPayload::Empty => 1,
        }
    }
}

/// A coordinator-to-replica request (Algorithms 2 and 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// `[Read, targets]` — report `max-ts`, and the newest block if the
    /// recipient is in `targets`.
    Read {
        /// Processes asked to return their block contents.
        targets: Vec<ProcessId>,
    },
    /// `[Order, ts]` — phase one of a write: reserve the place of `ts` in
    /// the operation order.
    Order {
        /// The write's timestamp.
        ts: Timestamp,
    },
    /// `[Order&Read, j, max, ts]` — order `ts` *and* report the newest
    /// block below `max` (recovery and fast block writes).
    OrderRead {
        /// Whose block to report.
        target: BlockTarget,
        /// Strict upper bound on the reported block's timestamp.
        below: Timestamp,
        /// The operation's timestamp.
        ts: Timestamp,
    },
    /// `[Write, b_i, ts]` — store the recipient's block for version `ts`.
    /// (The pseudocode broadcasts the whole encoded stripe; sending each
    /// process only its own block is the obvious optimization and is what
    /// Table 1's `nB` bandwidth figure assumes.)
    Write {
        /// The block for the recipient to append.
        block: BlockValue,
        /// The write's timestamp.
        ts: Timestamp,
    },
    /// `[Modify, j, b_j, b, ts_j, ts]` — incremental block write,
    /// generalized to a set of data blocks (footnote 2).
    Modify {
        /// The data blocks being written (ascending, distinct).
        js: Vec<ProcessId>,
        /// Timestamp of the version the coordinator read from the written
        /// processes (all must agree for the fast path).
        ts_j: Timestamp,
        /// The write's timestamp.
        ts: Timestamp,
        /// Block data (varies by write strategy).
        payload: ModifyPayload,
    },
    /// §5.1 — discard log entries older than `up_to` (fire-and-forget).
    Gc {
        /// Horizon of a known-complete write.
        up_to: Timestamp,
    },
}

impl Request {
    /// Short operation name for traces.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Read { .. } => "Read",
            Request::Order { .. } => "Order",
            Request::OrderRead { .. } => "Order&Read",
            Request::Write { .. } => "Write",
            Request::Modify { .. } => "Modify",
            Request::Gc { .. } => "Gc",
        }
    }
}

impl WireSize for Request {
    fn wire_size(&self) -> usize {
        match self {
            Request::Read { targets } => 1 + targets.len() * 4,
            Request::Order { .. } => 1 + TS_BYTES,
            Request::OrderRead { .. } => 1 + 2 * TS_BYTES + 5,
            Request::Write { block, .. } => 1 + TS_BYTES + block.wire_size(),
            Request::Modify { js, payload, .. } => {
                1 + 2 * TS_BYTES + 4 * js.len() + payload.wire_size()
            }
            Request::Gc { .. } => 1 + TS_BYTES,
        }
    }
}

/// Serialized size of a timestamp on the wire.
const TS_BYTES: usize = 12;

/// A replica-to-coordinator reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reply {
    /// Reply to `Read`.
    ReadR {
        /// `max-ts(log) ≥ ord-ts` — no partial write observed.
        status: bool,
        /// `max-ts(log)` — the replica's newest version timestamp.
        val_ts: Timestamp,
        /// The newest block, if the replica was a target and `status`.
        block: Option<BlockValue>,
    },
    /// Reply to `Order`.
    OrderR {
        /// Whether `ts` was accepted into the order.
        status: bool,
        /// The replica's highest known timestamp (max of `ord-ts` and
        /// `max-ts(log)`); lets a refused coordinator advance its clock
        /// past the competitor before retrying (the PROGRESS acceleration
        /// behind Proposition 23).
        seen: Timestamp,
    },
    /// Reply to `Order&Read`.
    OrderReadR {
        /// Whether `ts` was accepted into the order.
        status: bool,
        /// Timestamp of the reported block (`LowTS` if none reported).
        lts: Timestamp,
        /// The newest block below the request's bound, if asked and
        /// `status`.
        block: Option<BlockValue>,
        /// The replica's highest known timestamp (see [`Reply::OrderR`]).
        seen: Timestamp,
    },
    /// Reply to `Write`.
    WriteR {
        /// Whether the block was appended.
        status: bool,
        /// The replica's highest known timestamp (see [`Reply::OrderR`]).
        seen: Timestamp,
    },
    /// Reply to `Modify`.
    ModifyR {
        /// Whether the modified block was appended.
        status: bool,
        /// The replica's highest known timestamp (see [`Reply::OrderR`]).
        seen: Timestamp,
    },
}

impl Reply {
    /// The reply's status bit.
    pub fn status(&self) -> bool {
        match self {
            Reply::ReadR { status, .. }
            | Reply::OrderR { status, .. }
            | Reply::OrderReadR { status, .. }
            | Reply::WriteR { status, .. }
            | Reply::ModifyR { status, .. } => *status,
        }
    }

    /// The replica's highest known timestamp at reply time.
    pub fn seen(&self) -> Timestamp {
        match self {
            Reply::ReadR { val_ts, .. } => *val_ts,
            Reply::OrderR { seen, .. }
            | Reply::OrderReadR { seen, .. }
            | Reply::WriteR { seen, .. }
            | Reply::ModifyR { seen, .. } => *seen,
        }
    }
}

impl WireSize for Reply {
    fn wire_size(&self) -> usize {
        match self {
            Reply::ReadR { block, .. } => 2 + TS_BYTES + block.wire_size(),
            Reply::OrderR { .. } => 2 + TS_BYTES,
            Reply::OrderReadR { block, .. } => 2 + 2 * TS_BYTES + block.wire_size(),
            Reply::WriteR { .. } => 2 + TS_BYTES,
            Reply::ModifyR { .. } => 2 + TS_BYTES,
        }
    }
}

/// A routed protocol message: request or reply for one stripe's register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Which register instance this message addresses.
    pub stripe: StripeId,
    /// Phase identifier: unique per (coordinator, operation, phase,
    /// iteration); replies echo the request's round.
    pub round: u64,
    /// Request or reply.
    pub kind: Payload,
}

/// The two directions of protocol traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Coordinator → replica.
    Request(Request),
    /// Replica → coordinator.
    Reply(Reply),
}

/// Fixed per-message framing overhead charged by the wire-size model.
pub const HEADER_BYTES: usize = 24;

impl WireSize for Envelope {
    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match &self.kind {
                Payload::Request(r) => r.wire_size(),
                Payload::Reply(r) => r.wire_size(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_parts(t, ProcessId::new(1))
    }

    #[test]
    fn block_target_includes() {
        assert!(BlockTarget::All.includes(ProcessId::new(5)));
        assert!(BlockTarget::One(ProcessId::new(5)).includes(ProcessId::new(5)));
        assert!(!BlockTarget::One(ProcessId::new(5)).includes(ProcessId::new(6)));
    }

    #[test]
    fn reply_status_extraction() {
        assert!(Reply::OrderR {
            status: true,
            seen: Timestamp::LOW
        }
        .status());
        assert!(!Reply::WriteR {
            status: false,
            seen: ts(9)
        }
        .status());
        assert_eq!(
            Reply::WriteR {
                status: false,
                seen: ts(9)
            }
            .seen(),
            ts(9)
        );
        assert!(Reply::ReadR {
            status: true,
            val_ts: ts(1),
            block: None
        }
        .status());
    }

    #[test]
    fn wire_size_counts_blocks() {
        let small = Envelope {
            stripe: StripeId(0),
            round: 1,
            kind: Payload::Request(Request::Order { ts: ts(1) }),
        };
        let big = Envelope {
            stripe: StripeId(0),
            round: 1,
            kind: Payload::Request(Request::Write {
                block: BlockValue::Data(Bytes::from(vec![0u8; 1024])),
                ts: ts(1),
            }),
        };
        assert!(big.wire_size() > small.wire_size() + 1000);
        assert!(small.wire_size() >= HEADER_BYTES);
    }

    #[test]
    fn modify_payload_sizes_reflect_strategy() {
        let full = ModifyPayload::Full {
            updates: vec![BlockUpdate {
                old: BlockValue::Data(Bytes::from(vec![0u8; 100])),
                new: Bytes::from(vec![0u8; 100]),
            }],
        };
        let delta = ModifyPayload::Delta {
            delta: Bytes::from(vec![0u8; 100]),
        };
        assert!(full.wire_size() > 200);
        assert!(delta.wire_size() < 110);
        assert_eq!(ModifyPayload::Empty.wire_size(), 1);
    }

    #[test]
    fn request_names() {
        assert_eq!(Request::Order { ts: ts(1) }.name(), "Order");
        assert_eq!(Request::Gc { up_to: ts(1) }.name(), "Gc");
    }
}
