//! Coordinator op-lifecycle metrics.
//!
//! [`OpMetrics`] is the one bundle of instruments every driver of a
//! [`Coordinator`](crate::Coordinator) shares — simulation bricks,
//! `fab-runtime` threads, and `fab-net` servers all install it with
//! [`Coordinator::set_metrics`](crate::Coordinator::set_metrics) and get
//! identical semantics, because recording happens at the coordinator's
//! single completion site rather than at each driver's drain loop.
//!
//! The headline instrument is the `op_reads` [`PairCounter`]: reads that
//! finished on the fast path versus reads that went through recovery,
//! packed into one atomic so `fastpath + recovered` is exact at a single
//! linearization point. The torture suite reconciles both halves against
//! journal ground truth after every campaign; a mismatch is a convicting
//! violation, so the pair must never tear (model-checked in
//! `crates/obs/tests/loom.rs`).
//!
//! Latency values are whatever the driver's [`Effects::now`] reports —
//! sim ticks under `fab-simnet`, monotonic microseconds under `fab-net`.
//! The `_micros` suffix names the production unit; in simulation the
//! numbers are deterministic tick counts, which is exactly what the
//! determinism-fingerprint tests want.
//!
//! [`Effects::now`]: crate::Effects::now
//! [`PairCounter`]: fab_obs::PairCounter

use std::sync::Arc;

use fab_obs::{Counter, Histogram, PairCounter, Registry};

/// Instrument bundle for coordinator operation lifecycles. Create one per
/// node with [`OpMetrics::register`] and hand it to
/// [`Coordinator::set_metrics`](crate::Coordinator::set_metrics).
#[derive(Debug)]
pub struct OpMetrics {
    /// `(fastpath, recovered)` completed reads — one atomic, never tears.
    reads: Arc<PairCounter>,
    /// Latency of reads that finished on the fast path.
    read_fastpath_micros: Arc<Histogram>,
    /// Latency of reads that needed recovery (or write-back).
    read_recovered_micros: Arc<Histogram>,
    /// Writes that committed (stripe or block, not aborted).
    writes_committed: Arc<Counter>,
    /// End-to-end committed-write latency.
    write_micros: Arc<Histogram>,
    /// Time from invocation to the order/read phase finishing (the point
    /// the final store phase starts).
    write_order_micros: Arc<Histogram>,
    /// Time spent in the final store phase of a committed write.
    write_store_micros: Arc<Histogram>,
    /// Quorum rounds per completed operation (1 = pure fast path).
    quorum_rounds: Arc<Histogram>,
    /// Scrub operations that completed successfully.
    scrubs_completed: Arc<Counter>,
    /// Operations that completed as `Aborted` (any kind).
    ops_aborted: Arc<Counter>,
}

impl OpMetrics {
    /// Creates the bundle, registering every instrument in `registry`
    /// under the `op_` prefix (so one registry can also hold store, net,
    /// and repair instruments without collisions).
    #[must_use]
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(OpMetrics {
            reads: registry.pair("op_reads", "op_reads_fastpath", "op_reads_recovered"),
            read_fastpath_micros: registry.histogram("op_read_fastpath_micros"),
            read_recovered_micros: registry.histogram("op_read_recovered_micros"),
            writes_committed: registry.counter("op_writes_committed"),
            write_micros: registry.histogram("op_write_micros"),
            write_order_micros: registry.histogram("op_write_order_micros"),
            write_store_micros: registry.histogram("op_write_store_micros"),
            quorum_rounds: registry.histogram("op_quorum_rounds"),
            scrubs_completed: registry.counter("op_scrubs_completed"),
            ops_aborted: registry.counter("op_aborted"),
        })
    }

    /// Records a completed (non-aborted) read. `recovered` is the
    /// completion's recovery flag: false means the fast path served it.
    pub fn record_read(&self, recovered: bool, latency: u64) {
        if recovered {
            self.reads.inc_second();
            self.read_recovered_micros.record(latency);
        } else {
            self.reads.inc_first();
            self.read_fastpath_micros.record(latency);
        }
    }

    /// Records a committed write. When the op's order phase boundary was
    /// observed, `order`/`store` carry the per-phase split.
    pub fn record_write(&self, latency: u64, order: Option<u64>, store: Option<u64>) {
        self.writes_committed.inc();
        self.write_micros.record(latency);
        if let Some(order) = order {
            self.write_order_micros.record(order);
        }
        if let Some(store) = store {
            self.write_store_micros.record(store);
        }
    }

    /// Records a completed scrub.
    pub fn record_scrub(&self) {
        self.scrubs_completed.inc();
    }

    /// Records an aborted operation (any kind).
    pub fn record_abort(&self) {
        self.ops_aborted.inc();
    }

    /// Records how many quorum rounds an operation used before completing
    /// (aborted or not).
    pub fn record_rounds(&self, rounds: u64) {
        self.quorum_rounds.record(rounds);
    }

    /// Untearable `(fastpath, recovered)` read counts — the values the
    /// torture reconciliation probe compares against the journal.
    #[must_use]
    pub fn reads(&self) -> (u64, u64) {
        self.reads.get()
    }

    /// Committed writes so far.
    #[must_use]
    pub fn writes_committed(&self) -> u64 {
        self.writes_committed.get()
    }

    /// Completed scrubs so far.
    #[must_use]
    pub fn scrubs_completed(&self) -> u64 {
        self.scrubs_completed.get()
    }

    /// Aborted operations so far.
    #[must_use]
    pub fn aborts(&self) -> u64 {
        self.ops_aborted.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_split_is_recorded_per_path() {
        let reg = Registry::new();
        let m = OpMetrics::register(&reg);
        m.record_read(false, 10);
        m.record_read(false, 12);
        m.record_read(true, 90);
        assert_eq!(m.reads(), (2, 1));
        let snap = reg.export();
        assert_eq!(snap.counter("op_reads_fastpath"), Some(2));
        assert_eq!(snap.counter("op_reads_recovered"), Some(1));
        let fast = snap
            .histograms
            .iter()
            .find(|(n, _)| *n == "op_read_fastpath_micros")
            .map(|(_, h)| h.count);
        assert_eq!(fast, Some(2));
    }

    #[test]
    fn write_phase_split_is_optional() {
        let reg = Registry::new();
        let m = OpMetrics::register(&reg);
        m.record_write(100, Some(60), Some(40));
        m.record_write(50, None, None);
        assert_eq!(m.writes_committed(), 2);
        let snap = reg.export();
        let count_of = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, h)| h.count)
        };
        assert_eq!(count_of("op_write_micros"), Some(2));
        assert_eq!(count_of("op_write_order_micros"), Some(1));
        assert_eq!(count_of("op_write_store_micros"), Some(1));
    }

    #[test]
    fn registering_twice_shares_instruments() {
        let reg = Registry::new();
        let a = OpMetrics::register(&reg);
        let b = OpMetrics::register(&reg);
        a.record_scrub();
        b.record_scrub();
        assert_eq!(a.scrubs_completed(), 2);
        assert_eq!(reg.export().counter("op_scrubs_completed"), Some(2));
    }
}
