//! The replica side of the storage register: the message handlers of
//! Algorithm 2 and the `Modify` / `Gc` handlers of Algorithm 3 / §5.1.
//!
//! A replica's entire protocol state — `ord-ts` and the version log — is
//! persistent (the paper's `store(var)` primitive; timestamps live in
//! NVRAM, blocks on disk). A crash therefore erases nothing a handler
//! relies on; [`Replica::on_crash`] exists only to model the event.
//!
//! ## Handler idempotency
//!
//! The `quorum()` primitive retransmits requests until a quorum replies, so
//! every handler must tolerate replays. `Read`, `Order`, and `Order&Read`
//! are naturally idempotent; `Write` and `Modify` replay-detect via the log
//! entry they created (timestamps are globally unique, so an entry at `ts`
//! can only mean this exact request already executed) and re-reply `true`
//! without re-appending.

use crate::config::RegisterConfig;
use crate::log::Log;
use crate::messages::{BlockTarget, ModifyPayload, Reply, Request};
use crate::value::BlockValue;
use bytes::Bytes;
use fab_timestamp::{ProcessId, Timestamp};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Disk-I/O counters following Table 1's cost model: reading a block from
/// the log = one disk read, appending a block = one disk write, timestamp
/// updates (including `⊥` entries) are NVRAM and free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskMetrics {
    /// Block reads from the log.
    pub reads: u64,
    /// Block appends to the log.
    pub writes: u64,
    /// `store(var)` invocations (NVRAM syncs; not counted as disk I/O).
    pub nvram_stores: u64,
}

impl DiskMetrics {
    /// Element-wise difference `self − earlier`.
    pub fn since(&self, earlier: &DiskMetrics) -> DiskMetrics {
        DiskMetrics {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            nvram_stores: self.nvram_stores - earlier.nvram_stores,
        }
    }
}

/// A mutation to the replica's persistent state, emitted for drivers that
/// back replicas with real stable storage (the paper's `store(var)`
/// primitive). The simulator models persistence implicitly and leaves
/// emission disabled; the threaded runtime appends these to an on-disk
/// log (`fab-store`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistEvent {
    /// `store(ord-ts)`: the ordered timestamp advanced.
    OrdTs(Timestamp),
    /// `store(log)`: an entry was appended.
    Entry(Timestamp, BlockValue),
    /// §5.1 garbage collection ran up to this horizon.
    Gc(Timestamp),
}

/// One process's replica of a single storage register.
#[derive(Debug, Clone)]
pub struct Replica {
    pid: ProcessId,
    cfg: Arc<RegisterConfig>,
    /// Persistent: logical time of the most recently *ordered* write.
    ord_ts: Timestamp,
    /// Persistent: the version log.
    log: Log,
    metrics: DiskMetrics,
    /// When enabled, mutations are queued as [`PersistEvent`]s for the
    /// driver to flush to stable storage.
    persist: Option<Vec<PersistEvent>>,
}

impl Replica {
    /// Creates the replica hosted by `pid` with initial state
    /// `ord-ts = LowTS`, `log = {[LowTS, nil]}`.
    pub fn new(pid: ProcessId, cfg: Arc<RegisterConfig>) -> Self {
        Replica {
            pid,
            cfg,
            ord_ts: Timestamp::LOW,
            log: Log::new(),
            metrics: DiskMetrics::default(),
            persist: None,
        }
    }

    /// Reconstructs a replica from recovered persistent state (driver-side
    /// restart from stable storage).
    pub fn from_parts(
        pid: ProcessId,
        cfg: Arc<RegisterConfig>,
        ord_ts: Timestamp,
        log: Log,
    ) -> Self {
        Replica {
            pid,
            cfg,
            ord_ts,
            log,
            metrics: DiskMetrics::default(),
            persist: None,
        }
    }

    /// Enables persistence-event emission. The driver must drain
    /// [`Replica::take_persist_events`] after every handled request or the
    /// queue grows without bound.
    pub fn enable_persistence(&mut self) {
        if self.persist.is_none() {
            self.persist = Some(Vec::new());
        }
    }

    /// Drains queued persistence events (empty when emission is disabled).
    pub fn take_persist_events(&mut self) -> Vec<PersistEvent> {
        match &mut self.persist {
            Some(q) => std::mem::take(q),
            None => Vec::new(),
        }
    }

    fn emit(&mut self, event: PersistEvent) {
        if let Some(q) = &mut self.persist {
            q.push(event);
        }
    }

    /// The hosting process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The persistent `ord-ts`.
    pub fn ord_ts(&self) -> Timestamp {
        self.ord_ts
    }

    /// The persistent version log.
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Cumulative disk-I/O counters.
    pub fn metrics(&self) -> DiskMetrics {
        self.metrics
    }

    /// Resets the disk-I/O counters (between measured operations).
    pub fn reset_metrics(&mut self) {
        self.metrics = DiskMetrics::default();
    }

    /// Models a crash. All replica state is persistent, so nothing changes;
    /// the method documents (and asserts) that invariant.
    pub fn on_crash(&mut self) {
        // ord_ts and log survive: they are store()d on every mutation.
        //
        // Mutation-smoke variant (`cargo xtask torture --mutation-smoke`):
        // pretend ord-ts lived in volatile RAM and was lost on crash,
        // falling back to the log's max timestamp. The torture suite must
        // detect the resulting ord-ts regression / partial-write exposure.
        #[cfg(fab_mutation = "skip_ord_persist")]
        {
            self.ord_ts = self.log.max_ts();
        }
    }

    /// The replica's highest known timestamp (max of `ord-ts` and
    /// `max-ts(log)`), reported in replies so refused coordinators can
    /// catch their clocks up before retrying.
    fn seen(&self) -> Timestamp {
        self.ord_ts.max(self.log.max_ts())
    }

    /// Handles one request, returning the reply to send back (or `None`
    /// for fire-and-forget requests like `Gc`).
    pub fn handle(&mut self, req: &Request) -> Option<Reply> {
        match req {
            Request::Read { targets } => Some(self.on_read(targets)),
            Request::Order { ts } => Some(self.on_order(*ts)),
            Request::OrderRead { target, below, ts } => {
                Some(self.on_order_read(target, *below, *ts))
            }
            Request::Write { block, ts } => Some(self.on_write(block, *ts)),
            Request::Modify {
                js,
                ts_j,
                ts,
                payload,
            } => Some(self.on_modify(js, *ts_j, *ts, payload)),
            Request::Gc { up_to } => {
                self.log.gc(*up_to);
                self.emit(PersistEvent::Gc(*up_to));
                None
            }
        }
    }

    /// Alg. 2 lines 38–44.
    fn on_read(&mut self, targets: &[ProcessId]) -> Reply {
        let val_ts = self.log.max_ts();
        #[cfg(not(fab_mutation = "read_ignores_ord"))]
        let status = val_ts >= self.ord_ts;
        // Mutation-smoke variant: serve reads without the partial-write
        // guard, re-introducing the Figure-5 anomaly.
        #[cfg(fab_mutation = "read_ignores_ord")]
        let status = true;
        let mut block = None;
        if status && targets.contains(&self.pid) {
            let (_, b) = self.log.max_block();
            self.metrics.reads += b.disk_read_cost();
            block = Some(b.clone());
        }
        Reply::ReadR {
            status,
            val_ts,
            block,
        }
    }

    /// Alg. 2 lines 45–48.
    fn on_order(&mut self, ts: Timestamp) -> Reply {
        #[cfg(not(fab_mutation = "accept_stale_order"))]
        let status = ts > self.log.max_ts() && ts >= self.ord_ts;
        // Mutation-smoke variant: drop the `ts >= ord-ts` half of the
        // guard, letting a slow coordinator roll the order point backwards.
        #[cfg(fab_mutation = "accept_stale_order")]
        let status = ts > self.log.max_ts();
        if status {
            self.ord_ts = ts;
            self.store_nvram();
            self.emit(PersistEvent::OrdTs(ts));
        }
        Reply::OrderR {
            status,
            seen: self.seen(),
        }
    }

    /// Alg. 2 lines 49–56.
    fn on_order_read(&mut self, target: &BlockTarget, below: Timestamp, ts: Timestamp) -> Reply {
        let status = ts > self.log.max_ts() && ts >= self.ord_ts;
        let mut lts = Timestamp::LOW;
        let mut block = None;
        if status {
            self.ord_ts = ts;
            self.store_nvram();
            self.emit(PersistEvent::OrdTs(ts));
            if target.includes(self.pid) {
                let (t, b) = self.log.version_below(below);
                self.metrics.reads += b.disk_read_cost();
                lts = t;
                block = Some(b.clone());
            }
        }
        Reply::OrderReadR {
            status,
            lts,
            block,
            seen: self.seen(),
        }
    }

    /// Alg. 2 lines 57–60, with replay detection.
    fn on_write(&mut self, block: &BlockValue, ts: Timestamp) -> Reply {
        if self.log.entry_at(ts).is_some() {
            // Retransmission of a Write we already applied.
            return Reply::WriteR {
                status: true,
                seen: self.seen(),
            };
        }
        let status = ts > self.log.max_ts() && ts >= self.ord_ts;
        if status {
            self.metrics.writes += block.disk_write_cost();
            // Mutation-smoke variant: acknowledge the write without
            // appending it to the log (durability silently lost).
            #[cfg(not(fab_mutation = "skip_write_append"))]
            self.log.insert(ts, block.clone());
            self.store_nvram();
            self.emit(PersistEvent::Entry(ts, block.clone()));
        }
        Reply::WriteR {
            status,
            seen: self.seen(),
        }
    }

    /// Alg. 3 lines 88–98 with replay detection, §5.2 payloads, and the
    /// footnote-2 generalization to a set of written blocks.
    fn on_modify(
        &mut self,
        js: &[ProcessId],
        ts_j: Timestamp,
        ts: Timestamp,
        payload: &ModifyPayload,
    ) -> Reply {
        if self.log.entry_at(ts).is_some() {
            return Reply::ModifyR {
                status: true,
                seen: self.seen(),
            };
        }
        let status = ts_j == self.log.max_ts() && ts >= self.ord_ts;
        if !status {
            return Reply::ModifyR {
                status: false,
                seen: self.seen(),
            };
        }
        let m = self.cfg.m();
        let i = self.pid.index();
        let value = if let Some(pos) = js.iter().position(|j| *j == self.pid) {
            // Line 92: a written process stores its new value directly.
            match payload {
                ModifyPayload::Full { updates } => match updates.get(pos) {
                    Some(u) => BlockValue::Data(u.new.clone()),
                    None => {
                        return Reply::ModifyR {
                            status: false,
                            seen: self.seen(),
                        }
                    }
                },
                ModifyPayload::NewValue { new } => BlockValue::Data(new.clone()),
                // A coordinator bug would have to send a written process a
                // parity delta; refuse rather than corrupt.
                ModifyPayload::Delta { .. } | ModifyPayload::Empty => {
                    return Reply::ModifyR {
                        status: false,
                        seen: self.seen(),
                    }
                }
            }
        } else if i >= m {
            // Lines 93–94: incremental parity update, folded over every
            // written block (the per-block deltas are independent linear
            // contributions). The status guard `ts_j == max-ts(log)`
            // ensures our newest block (whose validity extends through any
            // ⊥ entries up to max-ts) is the version the coordinator read.
            let (_, cur) = self.log.max_block();
            self.metrics.reads += cur.disk_read_cost();
            // One owned parity buffer, patched in place by every update —
            // the seed allocated a fresh parity block per written block.
            // `max_block` never returns `⊥`, but a replica refuses rather
            // than trusts that (no-panic discipline: corrupt state must not
            // take the brick down).
            let Some(cur_bytes) = cur.materialize(self.cfg.block_size()) else {
                return Reply::ModifyR {
                    status: false,
                    seen: self.seen(),
                };
            };
            let mut parity = cur_bytes.to_vec();
            match payload {
                ModifyPayload::Full { updates } => {
                    if updates.len() != js.len() {
                        return Reply::ModifyR {
                            status: false,
                            seen: self.seen(),
                        };
                    }
                    for (j, u) in js.iter().zip(updates) {
                        // A `⊥` old value or codec-rejected dimensions mean
                        // the request is malformed: refuse it (`status:
                        // false`) instead of corrupting parity or panicking.
                        let Some(old_data) = u.old.materialize(self.cfg.block_size()) else {
                            return Reply::ModifyR {
                                status: false,
                                seen: self.seen(),
                            };
                        };
                        if self
                            .cfg
                            .codec()
                            .modify_in_place(j.index(), i, &old_data, &u.new, &mut parity)
                            .is_err()
                        {
                            return Reply::ModifyR {
                                status: false,
                                seen: self.seen(),
                            };
                        }
                    }
                    BlockValue::Data(Bytes::from(parity))
                }
                ModifyPayload::Delta { delta } => {
                    if self
                        .cfg
                        .codec()
                        .apply_coded_delta_in_place(&mut parity, delta)
                        .is_err()
                    {
                        return Reply::ModifyR {
                            status: false,
                            seen: self.seen(),
                        };
                    }
                    BlockValue::Data(Bytes::from(parity))
                }
                ModifyPayload::NewValue { .. } | ModifyPayload::Empty => {
                    return Reply::ModifyR {
                        status: false,
                        seen: self.seen(),
                    }
                }
            }
        } else {
            // Line 96: a data process outside `js` logs ⊥.
            BlockValue::Bottom
        };
        self.metrics.writes += value.disk_write_cost();
        self.log.insert(ts, value.clone());
        self.store_nvram();
        self.emit(PersistEvent::Entry(ts, value));
        Reply::ModifyR {
            status: true,
            seen: self.seen(),
        }
    }

    fn store_nvram(&mut self) {
        self.metrics.nvram_stores += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_erasure::Share;

    fn cfg(m: usize, n: usize) -> Arc<RegisterConfig> {
        Arc::new(RegisterConfig::new(m, n, 8).unwrap())
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_parts(t, ProcessId::new(0))
    }

    fn data(byte: u8) -> BlockValue {
        BlockValue::Data(Bytes::from(vec![byte; 8]))
    }

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn read_reports_val_ts_and_block_for_targets() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        let reply = r.handle(&Request::Read {
            targets: vec![pid(0)],
        });
        match reply {
            Some(Reply::ReadR {
                status,
                val_ts,
                block,
            }) => {
                assert!(status);
                assert_eq!(val_ts, Timestamp::LOW);
                assert_eq!(block, Some(BlockValue::Nil));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-target: no block.
        let reply = r.handle(&Request::Read {
            targets: vec![pid(1)],
        });
        match reply {
            Some(Reply::ReadR { block, .. }) => assert_eq!(block, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_detects_partial_write() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        // An Order without a matching Write leaves ord-ts > max-ts.
        assert!(matches!(
            r.handle(&Request::Order { ts: ts(5) }),
            Some(Reply::OrderR { status: true, .. })
        ));
        let reply = r.handle(&Request::Read { targets: vec![] });
        match reply {
            Some(Reply::ReadR { status, .. }) => assert!(!status, "partial write visible"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_rejects_stale_timestamps() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        assert!(matches!(
            r.handle(&Request::Order { ts: ts(10) }),
            Some(Reply::OrderR { status: true, .. })
        ));
        // A smaller timestamp is refused — and the refusal reports the
        // replica's highest known timestamp for clock catch-up.
        match r.handle(&Request::Order { ts: ts(5) }) {
            Some(Reply::OrderR { status, seen }) => {
                assert!(!status);
                assert_eq!(seen, ts(10));
            }
            other => panic!("unexpected {other:?}"),
        }
        // ...while the same timestamp is accepted again (idempotent).
        assert!(matches!(
            r.handle(&Request::Order { ts: ts(10) }),
            Some(Reply::OrderR { status: true, .. })
        ));
        assert_eq!(r.ord_ts(), ts(10));
    }

    #[test]
    fn order_rejects_ts_not_above_max_ts() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        r.handle(&Request::Order { ts: ts(5) });
        r.handle(&Request::Write {
            block: data(1),
            ts: ts(5),
        });
        // ts == max_ts: refused (must be strictly greater).
        assert!(matches!(
            r.handle(&Request::Order { ts: ts(5) }),
            Some(Reply::OrderR { status: false, .. })
        ));
    }

    #[test]
    fn write_appends_and_is_idempotent() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        r.handle(&Request::Order { ts: ts(5) });
        let reply = r.handle(&Request::Write {
            block: data(7),
            ts: ts(5),
        });
        assert!(matches!(reply, Some(Reply::WriteR { status: true, .. })));
        assert_eq!(r.log().max_ts(), ts(5));
        assert_eq!(r.metrics().writes, 1);

        // Replay: true again, no double append, no extra disk write.
        let reply = r.handle(&Request::Write {
            block: data(7),
            ts: ts(5),
        });
        assert!(matches!(reply, Some(Reply::WriteR { status: true, .. })));
        assert_eq!(r.log().len(), 2);
        assert_eq!(r.metrics().writes, 1);
    }

    #[test]
    fn write_rejected_when_outrun() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        r.handle(&Request::Order { ts: ts(10) });
        // A write with a smaller timestamp than ord-ts is refused: a newer
        // write has been ordered between this write's two phases.
        assert!(matches!(
            r.handle(&Request::Write {
                block: data(1),
                ts: ts(5)
            }),
            Some(Reply::WriteR { status: false, .. })
        ));
    }

    #[test]
    fn order_read_reports_newest_below_bound() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        r.handle(&Request::Order { ts: ts(5) });
        r.handle(&Request::Write {
            block: data(1),
            ts: ts(5),
        });
        let reply = r.handle(&Request::OrderRead {
            target: BlockTarget::All,
            below: Timestamp::HIGH,
            ts: ts(9),
        });
        match reply {
            Some(Reply::OrderReadR {
                status, lts, block, ..
            }) => {
                assert!(status);
                assert_eq!(lts, ts(5));
                assert_eq!(block, Some(data(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.ord_ts(), ts(9));

        // Bounded below the entry: reports the nil sentinel.
        let reply = r.handle(&Request::OrderRead {
            target: BlockTarget::All,
            below: ts(5),
            ts: ts(9), // same ts: idempotent re-order
        });
        match reply {
            Some(Reply::OrderReadR {
                status, lts, block, ..
            }) => {
                assert!(status);
                assert_eq!(lts, Timestamp::LOW);
                assert_eq!(block, Some(BlockValue::Nil));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_read_respects_target_selector() {
        let mut r = Replica::new(pid(2), cfg(2, 4));
        let reply = r.handle(&Request::OrderRead {
            target: BlockTarget::One(pid(1)),
            below: Timestamp::HIGH,
            ts: ts(3),
        });
        match reply {
            Some(Reply::OrderReadR { status, block, .. }) => {
                assert!(status);
                assert_eq!(block, None, "p2 was not asked for its block");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Full single-block write at the replica level across a 2-of-4 stripe:
    /// p0 gets the new value, parity p2/p3 update incrementally, data p1
    /// logs ⊥ — and the resulting blocks decode to the updated stripe.
    #[test]
    fn modify_roles_produce_decodable_stripe() {
        let c = cfg(2, 4);
        let codec = c.codec().clone();
        // Establish version ts(5) with a complete stripe on all 4 replicas.
        let stripe: Vec<Vec<u8>> = vec![vec![1u8; 8], vec![2u8; 8]];
        let encoded = codec.encode(&stripe).unwrap();
        let mut replicas: Vec<Replica> = (0..4).map(|i| Replica::new(pid(i), c.clone())).collect();
        for (i, r) in replicas.iter_mut().enumerate() {
            r.handle(&Request::Order { ts: ts(5) });
            r.handle(&Request::Write {
                block: BlockValue::Data(Bytes::from(encoded[i].clone())),
                ts: ts(5),
            });
        }

        // Now write-block j=0 with value 9s at ts(9) via Modify.
        let new = Bytes::from(vec![9u8; 8]);
        let payload = ModifyPayload::Full {
            updates: vec![crate::messages::BlockUpdate {
                old: BlockValue::Data(Bytes::from(encoded[0].clone())),
                new: new.clone(),
            }],
        };
        for r in &mut replicas {
            // Order&Read phase (fast-write-block) first.
            r.handle(&Request::OrderRead {
                target: BlockTarget::One(pid(0)),
                below: Timestamp::HIGH,
                ts: ts(9),
            });
            let reply = r.handle(&Request::Modify {
                js: vec![pid(0)],
                ts_j: ts(5),
                ts: ts(9),
                payload: payload.clone(),
            });
            assert!(matches!(reply, Some(Reply::ModifyR { status: true, .. })));
        }

        // p1 logged ⊥; p0, p2, p3 hold decodable blocks of the new stripe.
        assert!(replicas[1].log().entry_at(ts(9)).unwrap().is_bottom());
        let b0 = replicas[0].log().entry_at(ts(9)).unwrap().materialize(8).unwrap();
        let b2 = replicas[2].log().entry_at(ts(9)).unwrap().materialize(8).unwrap();
        let b3 = replicas[3].log().entry_at(ts(9)).unwrap().materialize(8).unwrap();
        let decoded = codec
            .decode(&[Share::new(0, &b0), Share::new(2, &b2), Share::new(3, &b3)])
            .unwrap();
        assert_eq!(decoded[0], vec![9u8; 8]);
        assert_eq!(decoded[1], vec![2u8; 8]);
    }

    #[test]
    fn modify_delta_payload_matches_full() {
        let c = cfg(2, 4);
        let codec = c.codec().clone();
        let stripe: Vec<Vec<u8>> = vec![vec![3u8; 8], vec![4u8; 8]];
        let encoded = codec.encode(&stripe).unwrap();
        let new = vec![0xAAu8; 8];

        let run = |payload: ModifyPayload| -> BlockValue {
            let mut parity = Replica::new(pid(2), c.clone());
            parity.handle(&Request::Order { ts: ts(5) });
            parity.handle(&Request::Write {
                block: BlockValue::Data(Bytes::from(encoded[2].clone())),
                ts: ts(5),
            });
            parity.handle(&Request::OrderRead {
                target: BlockTarget::One(pid(1)),
                below: Timestamp::HIGH,
                ts: ts(9),
            });
            let r = parity.handle(&Request::Modify {
                js: vec![pid(1)],
                ts_j: ts(5),
                ts: ts(9),
                payload,
            });
            assert!(matches!(r, Some(Reply::ModifyR { status: true, .. })));
            parity.log().entry_at(ts(9)).unwrap().clone()
        };

        let via_full = run(ModifyPayload::Full {
            updates: vec![crate::messages::BlockUpdate {
                old: BlockValue::Data(Bytes::from(encoded[1].clone())),
                new: Bytes::from(new.clone()),
            }],
        });
        let delta = codec.coded_delta(1, 2, &encoded[1], &new).unwrap();
        let via_delta = run(ModifyPayload::Delta {
            delta: Bytes::from(delta),
        });
        assert_eq!(via_full, via_delta);
    }

    #[test]
    fn modify_rejects_version_mismatch() {
        let mut r = Replica::new(pid(2), cfg(2, 4));
        // Replica is still at LowTS but the coordinator read ts(5).
        r.handle(&Request::OrderRead {
            target: BlockTarget::One(pid(0)),
            below: Timestamp::HIGH,
            ts: ts(9),
        });
        let reply = r.handle(&Request::Modify {
            js: vec![pid(0)],
            ts_j: ts(5),
            ts: ts(9),
            payload: ModifyPayload::Empty,
        });
        assert!(matches!(reply, Some(Reply::ModifyR { status: false, .. })));
    }

    #[test]
    fn modify_replay_is_true_without_reapply() {
        let c = cfg(2, 4);
        let mut r = Replica::new(pid(1), c);
        r.handle(&Request::OrderRead {
            target: BlockTarget::One(pid(0)),
            below: Timestamp::HIGH,
            ts: ts(9),
        });
        let req = Request::Modify {
            js: vec![pid(0)],
            ts_j: Timestamp::LOW,
            ts: ts(9),
            payload: ModifyPayload::Empty,
        };
        assert!(matches!(
            r.handle(&req),
            Some(Reply::ModifyR { status: true, .. })
        ));
        let len = r.log().len();
        assert!(matches!(
            r.handle(&req),
            Some(Reply::ModifyR { status: true, .. })
        ));
        assert_eq!(r.log().len(), len);
    }

    #[test]
    fn modify_on_nil_stripe_uses_zero_blocks() {
        // Writing block 0 of a never-written 2-of-4 stripe: parity is
        // computed against the zero stripe.
        let c = cfg(2, 4);
        let codec = c.codec().clone();
        let new = vec![0x55u8; 8];
        let mut parity = Replica::new(pid(3), c.clone());
        parity.handle(&Request::OrderRead {
            target: BlockTarget::One(pid(0)),
            below: Timestamp::HIGH,
            ts: ts(9),
        });
        let reply = parity.handle(&Request::Modify {
            js: vec![pid(0)],
            ts_j: Timestamp::LOW,
            ts: ts(9),
            payload: ModifyPayload::Full {
                updates: vec![crate::messages::BlockUpdate {
                    old: BlockValue::Nil,
                    new: Bytes::from(new.clone()),
                }],
            },
        });
        assert!(matches!(reply, Some(Reply::ModifyR { status: true, .. })));
        let got = parity.log().entry_at(ts(9)).unwrap().materialize(8).unwrap();
        // Expected: parity of the stripe (new, 0).
        let expected = codec.encode(&[new, vec![0u8; 8]]).unwrap()[3].clone();
        assert_eq!(got.to_vec(), expected);
    }

    #[test]
    fn gc_request_trims_log_without_reply() {
        let c = cfg(2, 4);
        let mut r = Replica::new(pid(0), c);
        for t in [2u64, 4, 6] {
            r.handle(&Request::Order { ts: ts(t) });
            r.handle(&Request::Write {
                block: data(t as u8),
                ts: ts(t),
            });
        }
        assert_eq!(r.log().len(), 4);
        let reply = r.handle(&Request::Gc { up_to: ts(6) });
        assert!(reply.is_none());
        assert_eq!(r.log().len(), 2); // sentinel + ts(6)
        assert_eq!(r.log().max_ts(), ts(6));
    }

    #[test]
    fn crash_preserves_persistent_state() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        r.handle(&Request::Order { ts: ts(5) });
        r.handle(&Request::Write {
            block: data(1),
            ts: ts(5),
        });
        let (log_before, ord_before) = (r.log().clone(), r.ord_ts());
        r.on_crash();
        assert_eq!(r.log(), &log_before);
        assert_eq!(r.ord_ts(), ord_before);
    }

    #[test]
    fn disk_metrics_follow_cost_model() {
        let mut r = Replica::new(pid(0), cfg(2, 4));
        // Order: NVRAM only.
        r.handle(&Request::Order { ts: ts(5) });
        assert_eq!(r.metrics().reads + r.metrics().writes, 0);
        // Write of data: 1 disk write.
        r.handle(&Request::Write {
            block: data(1),
            ts: ts(5),
        });
        assert_eq!(r.metrics().writes, 1);
        // Read as target: 1 disk read.
        r.handle(&Request::Read {
            targets: vec![pid(0)],
        });
        assert_eq!(r.metrics().reads, 1);
        // Read as non-target: no disk read.
        r.handle(&Request::Read {
            targets: vec![pid(1)],
        });
        assert_eq!(r.metrics().reads, 1);
        // ⊥ append (Modify on unrelated data process): NVRAM only.
        r.reset_metrics();
        let mut other = Replica::new(pid(1), cfg(2, 4));
        other.handle(&Request::Modify {
            js: vec![pid(0)],
            ts_j: Timestamp::LOW,
            ts: ts(3),
            payload: ModifyPayload::Empty,
        });
        assert_eq!(other.metrics().writes, 0);
    }
}
