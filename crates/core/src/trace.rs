//! Structured operation traces.
//!
//! When enabled on a [`Coordinator`](crate::Coordinator), every operation
//! records its phase transitions, reply arrivals, retransmissions, and
//! outcome with virtual-time stamps. Traces explain *why* an operation took
//! the path it took — which replica's `false` vote forced recovery, how
//! many `read-prev-stripe` iterations ran, when retransmissions fired —
//! and they render compactly for logs and test failure messages.

use crate::messages::StripeId;
use fab_timestamp::{ProcessId, Timestamp};
use std::fmt;

/// One event in an operation's life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The operation was invoked.
    Invoked {
        /// Operation kind label ("read-stripe", "write-block", …).
        kind: &'static str,
    },
    /// A messaging phase began (fresh round broadcast to all n).
    PhaseEntered {
        /// Phase label ("FastRead", "Order", "RecoverOrderRead#2", …).
        phase: String,
        /// The round number used by this phase.
        round: u64,
    },
    /// A reply was recorded (first one from that process this round).
    Reply {
        /// The responder.
        from: ProcessId,
        /// Its status bit.
        status: bool,
    },
    /// The retransmission timer fired; the request was re-sent to the
    /// processes that had not answered.
    Retransmitted,
    /// A timestamp was generated for the operation.
    TimestampAssigned {
        /// The generated `newTS` value.
        ts: Timestamp,
    },
    /// The operation finished.
    Completed {
        /// Outcome label ("ok", "aborted: conflict", …).
        outcome: String,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Invoked { kind } => write!(f, "invoked {kind}"),
            TraceEvent::PhaseEntered { phase, round } => {
                write!(f, "phase {phase} (round {round})")
            }
            TraceEvent::Reply { from, status } => {
                write!(
                    f,
                    "reply from {from}: {}",
                    if *status { "yes" } else { "NO" }
                )
            }
            TraceEvent::Retransmitted => write!(f, "retransmitted"),
            TraceEvent::TimestampAssigned { ts } => write!(f, "ts := {ts}"),
            TraceEvent::Completed { outcome } => write!(f, "completed: {outcome}"),
        }
    }
}

/// The recorded trace of one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// The operation id (per coordinator).
    pub op: u64,
    /// The stripe register it addressed.
    pub stripe: StripeId,
    /// Time-stamped events, in order.
    pub events: Vec<(u64, TraceEvent)>,
}

impl OpTrace {
    /// Creates an empty trace.
    pub fn new(op: u64, stripe: StripeId) -> Self {
        OpTrace {
            op,
            stripe,
            events: Vec::new(),
        }
    }

    /// Appends an event at virtual time `at`.
    pub fn push(&mut self, at: u64, event: TraceEvent) {
        self.events.push((at, event));
    }

    /// Number of messaging phases the operation ran.
    pub fn phases(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::PhaseEntered { .. }))
            .count()
    }

    /// Number of `false` votes observed.
    pub fn refusals(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Reply { status: false, .. }))
            .count()
    }

    /// Number of retransmissions.
    pub fn retransmissions(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Retransmitted))
            .count()
    }
}

impl fmt::Display for OpTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "op {} on {}:", self.op, self.stripe)?;
        for (at, e) in &self.events {
            writeln!(f, "  t={at:<8} {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_display() {
        let mut t = OpTrace::new(1, StripeId(7));
        t.push(
            0,
            TraceEvent::Invoked {
                kind: "read-stripe",
            },
        );
        t.push(
            0,
            TraceEvent::PhaseEntered {
                phase: "FastRead".into(),
                round: 1,
            },
        );
        t.push(
            2,
            TraceEvent::Reply {
                from: ProcessId::new(0),
                status: true,
            },
        );
        t.push(
            2,
            TraceEvent::Reply {
                from: ProcessId::new(1),
                status: false,
            },
        );
        t.push(
            3,
            TraceEvent::PhaseEntered {
                phase: "RecoverOrderRead#1".into(),
                round: 2,
            },
        );
        t.push(200, TraceEvent::Retransmitted);
        t.push(
            210,
            TraceEvent::Completed {
                outcome: "ok".into(),
            },
        );
        assert_eq!(t.phases(), 2);
        assert_eq!(t.refusals(), 1);
        assert_eq!(t.retransmissions(), 1);
        let s = t.to_string();
        assert!(s.contains("stripe7"));
        assert!(s.contains("reply from p1: NO"));
        assert!(s.contains("phase RecoverOrderRead#1"));
    }
}
