//! Block and stripe value types.
//!
//! The protocol distinguishes three kinds of per-process log values (§4.2):
//!
//! * **`Data`** — an actual erasure-coded block,
//! * **`Nil`** — the distinguished initial register value (the paper's
//!   `nil`, the value of the `[LowTS, nil]` entry every log starts with).
//!   A virtual disk reads `nil` as a zero-filled block, so [`BlockValue::Nil`]
//!   materializes as zeros when arithmetic needs bytes,
//! * **`Bottom`** — the paper's `⊥` marker: a timestamp-only log entry used
//!   by `Modify` on processes that store neither the written block nor
//!   parity (Alg. 3 line 96). `⊥` entries order operations but carry no
//!   block, so they cost no disk write (Table 1's cost model keeps
//!   timestamps in NVRAM).

use bytes::Bytes;
use fab_simnet::WireSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value a process may hold in its log for one timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockValue {
    /// The paper's `⊥`: a timestamp-only entry with no block.
    Bottom,
    /// The paper's `nil`: the initial (zero) content of the register.
    Nil,
    /// An erasure-coded block.
    Data(Bytes),
}

impl BlockValue {
    /// Returns `true` for `⊥`.
    pub fn is_bottom(&self) -> bool {
        matches!(self, BlockValue::Bottom)
    }

    /// Returns `true` for `nil`.
    pub fn is_nil(&self) -> bool {
        matches!(self, BlockValue::Nil)
    }

    /// Returns the block bytes, materializing `Nil` as `block_size` zeros.
    ///
    /// Returns `None` for `Bottom` — `⊥` is a timestamp-only marker and
    /// never participates in block arithmetic. (The seed panicked here;
    /// handlers now *refuse* requests that would materialize `⊥`, per the
    /// no-panic discipline enforced by `cargo xtask analyze`.)
    pub fn materialize(&self, block_size: usize) -> Option<Bytes> {
        match self {
            BlockValue::Bottom => None,
            BlockValue::Nil => Some(Bytes::from(vec![0u8; block_size])),
            BlockValue::Data(b) => Some(b.clone()),
        }
    }

    /// The number of disk-block writes persisting this value costs: 1 for
    /// `Data`, 0 for `Nil` and `Bottom` (timestamp-only NVRAM updates).
    pub fn disk_write_cost(&self) -> u64 {
        match self {
            BlockValue::Data(_) => 1,
            _ => 0,
        }
    }

    /// The number of disk-block reads fetching this value costs.
    pub fn disk_read_cost(&self) -> u64 {
        match self {
            BlockValue::Data(_) => 1,
            _ => 0,
        }
    }
}

impl WireSize for BlockValue {
    fn wire_size(&self) -> usize {
        match self {
            BlockValue::Bottom | BlockValue::Nil => 1,
            BlockValue::Data(b) => 1 + b.len(),
        }
    }
}

impl fmt::Display for BlockValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockValue::Bottom => write!(f, "⊥"),
            BlockValue::Nil => write!(f, "nil"),
            BlockValue::Data(b) => write!(f, "data[{}B]", b.len()),
        }
    }
}

/// The value of a whole stripe: either the distinguished initial `nil`
/// (reads as zeros) or `m` data blocks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StripeValue {
    /// The register has its initial content (all zeros).
    Nil,
    /// `m` data blocks.
    Data(Vec<Bytes>),
}

impl StripeValue {
    /// Returns the `m` data blocks, materializing `Nil` as zeros.
    pub fn materialize(&self, m: usize, block_size: usize) -> Vec<Bytes> {
        match self {
            StripeValue::Nil => vec![Bytes::from(vec![0u8; block_size]); m],
            StripeValue::Data(blocks) => blocks.clone(),
        }
    }

    /// Returns block `j` of the stripe, materializing `Nil` as zeros.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range for a `Data` stripe.
    pub fn block(&self, j: usize, block_size: usize) -> Bytes {
        match self {
            StripeValue::Nil => Bytes::from(vec![0u8; block_size]),
            StripeValue::Data(blocks) => blocks[j].clone(),
        }
    }

    /// Returns `true` if this is the initial `nil` value.
    pub fn is_nil(&self) -> bool {
        matches!(self, StripeValue::Nil)
    }
}

impl fmt::Display for StripeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StripeValue::Nil => write!(f, "nil"),
            StripeValue::Data(blocks) => write!(f, "stripe[{} blocks]", blocks.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_nil_is_zeros() {
        assert_eq!(
            BlockValue::Nil.materialize(4),
            Some(Bytes::from(vec![0u8; 4]))
        );
        let s = StripeValue::Nil;
        assert_eq!(s.materialize(2, 3), vec![Bytes::from(vec![0u8; 3]); 2]);
        assert_eq!(s.block(1, 3), Bytes::from(vec![0u8; 3]));
    }

    #[test]
    fn materialize_data_is_identity() {
        let b = BlockValue::Data(Bytes::from_static(b"abc"));
        assert_eq!(b.materialize(99), Some(Bytes::from_static(b"abc")));
    }

    #[test]
    fn materialize_bottom_is_none() {
        assert_eq!(BlockValue::Bottom.materialize(4), None);
    }

    #[test]
    fn disk_costs_follow_table1_model() {
        assert_eq!(
            BlockValue::Data(Bytes::from_static(b"x")).disk_write_cost(),
            1
        );
        assert_eq!(BlockValue::Nil.disk_write_cost(), 0);
        assert_eq!(BlockValue::Bottom.disk_write_cost(), 0);
        assert_eq!(
            BlockValue::Data(Bytes::from_static(b"x")).disk_read_cost(),
            1
        );
        assert_eq!(BlockValue::Bottom.disk_read_cost(), 0);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(BlockValue::Bottom.wire_size(), 1);
        assert_eq!(BlockValue::Nil.wire_size(), 1);
        assert_eq!(
            BlockValue::Data(Bytes::from(vec![0u8; 100])).wire_size(),
            101
        );
    }

    #[test]
    fn stripe_block_access() {
        let s = StripeValue::Data(vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")]);
        assert_eq!(s.block(1, 1), Bytes::from_static(b"b"));
        assert!(!s.is_nil());
        assert!(StripeValue::Nil.is_nil());
    }

    #[test]
    fn display_forms() {
        assert_eq!(BlockValue::Bottom.to_string(), "⊥");
        assert_eq!(BlockValue::Nil.to_string(), "nil");
        assert_eq!(StripeValue::Nil.to_string(), "nil");
    }
}
