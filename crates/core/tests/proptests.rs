//! Property tests for the storage-register core: log invariants, replica
//! handler invariants, and model-checked sequential behavior over random
//! parameters, payloads, and network schedules.

use bytes::Bytes;
use fab_core::{
    BlockValue, Log, OpResult, RegisterConfig, Replica, Request, SimCluster, StripeId, StripeValue,
};
use fab_simnet::SimConfig;
use fab_timestamp::{ProcessId, Timestamp};
use proptest::prelude::*;
use std::sync::Arc;

fn ts(t: u64) -> Timestamp {
    Timestamp::from_parts(t, ProcessId::new(1))
}

/// A random log mutation.
#[derive(Debug, Clone)]
enum LogOp {
    Insert(u64, Option<u8>), // ts ticks, None = ⊥, Some(tag) = data
    Gc(u64),
}

fn log_ops() -> impl Strategy<Value = Vec<LogOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..100, proptest::option::of(any::<u8>())).prop_map(|(t, v)| LogOp::Insert(t, v)),
            (1u64..100).prop_map(LogOp::Gc),
        ],
        0..60,
    )
}

proptest! {
    /// The log's structural invariants hold under arbitrary insert/GC
    /// interleavings: the LowTS sentinel survives, `max_ts` dominates all
    /// queries, `max_block` is never ⊥, `version_below` is consistent.
    #[test]
    fn log_invariants_under_random_mutation(ops in log_ops()) {
        let mut log = Log::new();
        for op in &ops {
            match op {
                LogOp::Insert(t, v) => {
                    let value = match v {
                        None => BlockValue::Bottom,
                        Some(tag) => BlockValue::Data(Bytes::from(vec![*tag; 4])),
                    };
                    log.insert(ts(*t), value);
                }
                LogOp::Gc(t) => {
                    log.gc(ts(*t));
                }
            }
            // Sentinel and shape invariants.
            prop_assert_eq!(log.entry_at(Timestamp::LOW), Some(&BlockValue::Nil));
            prop_assert!(!log.is_empty());
            let (bt, bv) = log.max_block();
            prop_assert!(!bv.is_bottom());
            prop_assert!(bt <= log.max_ts());
            // version_below(HighTS): validity is exactly max_ts, and the
            // block is the newest non-⊥.
            let (validity, v) = log.version_below(Timestamp::HIGH);
            prop_assert_eq!(validity, log.max_ts());
            prop_assert!(!v.is_bottom());
            // max_below is strictly below its bound.
            let (mt, _) = log.max_below(log.max_ts());
            prop_assert!(mt < log.max_ts() || log.max_ts() == Timestamp::LOW);
        }
    }

    /// GC never changes what `max_block` answers, no matter when it runs.
    #[test]
    fn gc_preserves_newest_block(ops in log_ops(), horizon in 1u64..100) {
        let mut log = Log::new();
        for op in &ops {
            if let LogOp::Insert(t, v) = op {
                let value = match v {
                    None => BlockValue::Bottom,
                    Some(tag) => BlockValue::Data(Bytes::from(vec![*tag; 4])),
                };
                log.insert(ts(*t), value);
            }
        }
        let before_block = {
            let (t, v) = log.max_block();
            (t, v.clone())
        };
        let before_max = log.max_ts();
        log.gc(ts(horizon));
        let (t, v) = log.max_block();
        prop_assert_eq!((t, v.clone()), before_block);
        prop_assert_eq!(log.max_ts(), before_max);
    }

    /// Replica invariants under arbitrary request streams: `ord-ts` is
    /// monotone, `max-ts` is monotone, and every reply's status is
    /// consistent with the pre-state.
    #[test]
    fn replica_invariants_under_random_requests(
        reqs in proptest::collection::vec((0u8..4, 1u64..64, any::<u8>()), 0..80),
    ) {
        let cfg = Arc::new(RegisterConfig::new(2, 4, 4).unwrap());
        let mut r = Replica::new(ProcessId::new(0), cfg);
        for (kind, t, tag) in reqs {
            let prev_ord = r.ord_ts();
            let prev_max = r.log().max_ts();
            let req = match kind {
                0 => Request::Read { targets: vec![ProcessId::new(0)] },
                1 => Request::Order { ts: ts(t) },
                2 => Request::Write {
                    block: BlockValue::Data(Bytes::from(vec![tag; 4])),
                    ts: ts(t),
                },
                _ => Request::Gc { up_to: ts(t) },
            };
            r.handle(&req);
            prop_assert!(r.ord_ts() >= prev_ord, "ord-ts must be monotone");
            prop_assert!(r.log().max_ts() >= prev_max, "max-ts must be monotone");
            // The permanent structural invariant.
            prop_assert_eq!(r.log().entry_at(Timestamp::LOW), Some(&BlockValue::Nil));
        }
    }

    /// Sequential operations against a simulated cluster always agree with
    /// a trivial model register, across random (m, n), seeds, network
    /// harshness, and operation mixes.
    #[test]
    fn sequential_ops_match_model(
        seed in any::<u64>(),
        mn in prop_oneof![Just((1usize, 3usize)), Just((2, 4)), Just((3, 5)), Just((5, 8))],
        harsh in any::<bool>(),
        script in proptest::collection::vec((0u8..4, any::<u8>(), 0u8..8), 1..12),
    ) {
        let (m, n) = mn;
        let size = 8usize;
        let cfg = RegisterConfig::new(m, n, size).unwrap();
        let net = if harsh {
            SimConfig::ideal(seed).delays(1, 10).drop_probability(0.05)
        } else {
            SimConfig::ideal(seed)
        };
        let mut c = SimCluster::new(cfg, net);
        let s = StripeId(0);
        // Model: the current stripe (None = nil).
        let mut model: Option<Vec<Bytes>> = None;
        for (step, (kind, tag, who)) in script.into_iter().enumerate() {
            let coordinator = ProcessId::new(u32::from(who) % (n as u32));
            match kind {
                0 => {
                    let blocks: Vec<Bytes> =
                        (0..m).map(|i| Bytes::from(vec![tag.wrapping_add(i as u8); size])).collect();
                    let r = c.write_stripe(coordinator, s, blocks.clone());
                    prop_assert_eq!(r, OpResult::Written, "step {}", step);
                    model = Some(blocks);
                }
                1 => {
                    let j = (tag as usize) % m;
                    let b = Bytes::from(vec![tag ^ 0x5A; size]);
                    let r = c.write_block(coordinator, s, j, b.clone());
                    prop_assert_eq!(r, OpResult::Written, "step {}", step);
                    let mut cur = model.take().unwrap_or_else(|| {
                        vec![Bytes::from(vec![0u8; size]); m]
                    });
                    cur[j] = b;
                    model = Some(cur);
                }
                2 => {
                    let r = c.read_stripe(coordinator, s);
                    match (&model, r) {
                        (None, OpResult::Stripe(StripeValue::Nil)) => {}
                        (Some(want), OpResult::Stripe(StripeValue::Data(got))) => {
                            prop_assert_eq!(&got, want, "step {}", step);
                        }
                        (want, got) => {
                            return Err(TestCaseError::fail(format!(
                                "step {step}: model {want:?} vs read {got:?}"
                            )))
                        }
                    }
                }
                _ => {
                    let j = (tag as usize) % m;
                    let r = c.read_block(coordinator, s, j);
                    let want = model
                        .as_ref()
                        .map(|blocks| blocks[j].clone())
                        .unwrap_or_else(|| Bytes::from(vec![0u8; size]));
                    match r {
                        OpResult::Block(v) => {
                            prop_assert_eq!(v.materialize(size), Some(want), "step {}", step);
                        }
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "step {step}: read-block returned {other:?}"
                            )))
                        }
                    }
                }
            }
        }
    }

    /// Identical seeds and scripts replay identically, even under the
    /// harsh network (end-to-end determinism of the whole stack).
    #[test]
    fn end_to_end_determinism(seed in any::<u64>()) {
        let run = || {
            let cfg = RegisterConfig::new(2, 4, 8).unwrap();
            let mut c = SimCluster::new(cfg, SimConfig::harsh(seed));
            let s = StripeId(0);
            for i in 0..4u8 {
                c.write_stripe(
                    ProcessId::new(u32::from(i % 4)),
                    s,
                    vec![Bytes::from(vec![i; 8]), Bytes::from(vec![i + 1; 8])],
                );
            }
            let r = c.read_stripe(ProcessId::new(0), s);
            (c.sim().fingerprint(), format!("{r:?}"))
        };
        prop_assert_eq!(run(), run());
    }
}

/// A random replica-facing request (for the crash-recovery replay test).
#[derive(Debug, Clone)]
enum ReplicaOp {
    Order(u64),
    Write(u64, u8),
    Gc(u64),
}

fn replica_ops() -> impl Strategy<Value = Vec<ReplicaOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..200).prop_map(ReplicaOp::Order),
            (1u64..200, any::<u8>()).prop_map(|(t, v)| ReplicaOp::Write(t, v)),
            (1u64..200).prop_map(ReplicaOp::Gc),
        ],
        1..80,
    )
}

proptest! {
    /// Crash-recovery replay of an arbitrary persist-event prefix: the
    /// events a replica emits are themselves replayable — `ord-ts` only
    /// ever advances along the stream, folding any *prefix* into
    /// [`Replica::from_parts`] yields watermarks bounded by the
    /// originals and inside the timestamp sentinels, and the recovered
    /// replica still enforces the write-ordering guard (refuses stale
    /// `Order`s, accepts fresh ones).
    #[test]
    fn replica_recovery_from_replayed_event_prefix(
        ops in replica_ops(),
        cut in any::<prop::sample::Index>(),
    ) {
        use fab_core::PersistEvent;

        let cfg = Arc::new(RegisterConfig::new(2, 4, 8).expect("valid config"));
        let pid = ProcessId::new(1);
        let mut replica = Replica::new(pid, cfg.clone());
        replica.enable_persistence();

        let mut events: Vec<PersistEvent> = Vec::new();
        for op in &ops {
            let req = match op {
                ReplicaOp::Order(t) => Request::Order { ts: ts(*t) },
                ReplicaOp::Write(t, v) => Request::Write {
                    block: BlockValue::Data(Bytes::from(vec![*v; 8])),
                    ts: ts(*t),
                },
                ReplicaOp::Gc(t) => Request::Gc { up_to: ts(*t) },
            };
            let _ = replica.handle(&req);
            events.extend(replica.take_persist_events());
        }

        // Fold an arbitrary prefix of the persisted stream, checking that
        // ord-ts never rolls backwards along it.
        let cut = cut.index(events.len() + 1);
        let mut ord = Timestamp::LOW;
        let mut log = Log::new();
        for event in &events[..cut] {
            match event {
                PersistEvent::OrdTs(t) => {
                    prop_assert!(*t >= ord, "persisted ord-ts regressed: {ord} -> {t}");
                    ord = *t;
                }
                PersistEvent::Entry(t, v) => log.insert(*t, v.clone()),
                PersistEvent::Gc(t) => {
                    log.gc(*t);
                }
            }
        }

        let mut recovered = Replica::from_parts(pid, cfg, ord, log);

        // Watermarks: bounded by the pre-crash replica and the sentinels.
        prop_assert!(recovered.ord_ts() <= replica.ord_ts());
        prop_assert!(recovered.log().max_ts() <= replica.log().max_ts());
        prop_assert!(recovered.ord_ts() < Timestamp::HIGH);
        prop_assert!(recovered.log().max_ts() < Timestamp::HIGH);
        prop_assert_eq!(
            recovered.log().entry_at(Timestamp::LOW),
            Some(&BlockValue::Nil)
        );

        // Guard survives recovery: an Order at LowTS can never pass (the
        // log's sentinel dominates it) ...
        let reply = recovered.handle(&Request::Order { ts: Timestamp::LOW });
        prop_assert!(
            matches!(reply, Some(fab_core::Reply::OrderR { status: false, .. })),
            "recovered replica accepted a LowTS order"
        );
        // ... and one strictly above both watermarks must pass and advance
        // ord-ts (monotone across the crash).
        let fresh_ticks = recovered
            .ord_ts()
            .ticks()
            .max(recovered.log().max_ts().ticks())
            + 1;
        let fresh = ts(fresh_ticks);
        let before = recovered.ord_ts();
        let reply = recovered.handle(&Request::Order { ts: fresh });
        prop_assert!(
            matches!(reply, Some(fab_core::Reply::OrderR { status: true, .. })),
            "recovered replica refused a fresh order"
        );
        prop_assert!(recovered.ord_ts() >= before);
        prop_assert_eq!(recovered.ord_ts(), fresh);
    }
}
