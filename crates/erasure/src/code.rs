//! Erasure-code parameters, errors, and the [`Codec`] front end.
//!
//! The paper (§2.1) characterizes a deterministic erasure code by two
//! parameters *m* and *n*: a stripe holds *m* data blocks from which
//! *n − m* parity blocks are computed, and the original data can be
//! reconstructed from **any** *m* of the *n* blocks. Three primitive
//! operations are required (Figure 4):
//!
//! * `encode` — m data blocks → n blocks (the first m are the originals),
//! * `decode` — any m of the n blocks → the m data blocks,
//! * `modify_{i,j}` — incremental recomputation of parity block *j* after
//!   data block *i* changed, without touching the other m−1 data blocks.
//!
//! [`Codec`] implements all three for the three code families the paper
//! discusses: full replication (m = 1, the "special case of erasure coding"
//! used in Figure 5), single-parity / RAID-5 style XOR codes (m = n − 1),
//! and general Reed–Solomon codes (any m ≤ n).

use crate::kernel::{mul_acc_xor, xor_slice};
use crate::parity::ParityCode;
use crate::reed_solomon::ReedSolomon;
use crate::replication::Replication;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Clears `buf` and refills it with a copy of `src`, reusing the existing
/// capacity. Reallocates only when `src` is longer than every block `buf`
/// previously held — i.e. never in the steady state of a reused buffer.
#[inline]
pub(crate) fn fill_from(buf: &mut Vec<u8>, src: &[u8]) {
    buf.clear();
    buf.extend_from_slice(src);
}

/// Clears `buf` and refills it with `len` zero bytes, reusing the existing
/// capacity (no reallocation in the steady state).
#[inline]
pub(crate) fn fill_zeroed(buf: &mut Vec<u8>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// Maximum number of blocks per stripe supported by the GF(2⁸) codes.
pub const MAX_N: usize = 255;

/// Errors from erasure-code construction or use.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The (m, n) pair is not a valid code: requires 1 ≤ m ≤ n ≤ 255.
    InvalidParams {
        /// Requested number of data blocks.
        m: usize,
        /// Requested total number of blocks.
        n: usize,
    },
    /// An operation was given a different number of blocks than it needs.
    WrongBlockCount {
        /// How many blocks the operation needs.
        expected: usize,
        /// How many were supplied.
        actual: usize,
    },
    /// Blocks within one operation must all have the same length.
    UnequalBlockLengths,
    /// A block index was outside `0..n` (or outside the parity range for
    /// parity-specific operations).
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The exclusive upper bound that was violated.
        bound: usize,
    },
    /// The same block index appeared twice in a decode request.
    DuplicateShare {
        /// The duplicated index.
        index: usize,
    },
    /// Fewer than m distinct shares were supplied to `decode`.
    NotEnoughShares {
        /// How many shares decoding needs (m).
        needed: usize,
        /// How many distinct shares were supplied.
        actual: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParams { m, n } => {
                write!(f, "invalid erasure-code parameters m={m}, n={n}")
            }
            CodeError::WrongBlockCount { expected, actual } => {
                write!(f, "expected {expected} blocks, got {actual}")
            }
            CodeError::UnequalBlockLengths => {
                write!(f, "blocks in one stripe must have equal lengths")
            }
            CodeError::IndexOutOfRange { index, bound } => {
                write!(f, "block index {index} out of range (bound {bound})")
            }
            CodeError::DuplicateShare { index } => {
                write!(f, "duplicate share for block index {index}")
            }
            CodeError::NotEnoughShares { needed, actual } => {
                write!(f, "decoding needs {needed} distinct shares, got {actual}")
            }
        }
    }
}

impl Error for CodeError {}

/// A convenient result alias for erasure-code operations.
pub type Result<T> = std::result::Result<T, CodeError>;

/// Validated (m, n) erasure-code parameters.
///
/// # Examples
///
/// ```
/// use fab_erasure::CodeParams;
///
/// let p = CodeParams::new(5, 8)?;
/// assert_eq!(p.parity_count(), 3);
/// // A 5-of-8 code loses data only when more than 3 blocks disappear.
/// assert_eq!(p.loss_tolerance(), 3);
/// assert!((p.storage_overhead() - 1.6).abs() < 1e-9);
/// # Ok::<(), fab_erasure::CodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeParams {
    m: usize,
    n: usize,
}

impl CodeParams {
    /// Validates and creates (m, n) parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] unless `1 ≤ m ≤ n ≤ 255`.
    pub fn new(m: usize, n: usize) -> Result<Self> {
        if m == 0 || n < m || n > MAX_N {
            return Err(CodeError::InvalidParams { m, n });
        }
        Ok(CodeParams { m, n })
    }

    /// Number of data blocks per stripe.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of blocks per stripe (data + parity).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of parity blocks per stripe (n − m).
    pub fn parity_count(&self) -> usize {
        self.n - self.m
    }

    /// Number of simultaneously *lost* blocks the code tolerates without
    /// data loss (n − m). Note this differs from the number of *faulty*
    /// processes the protocol tolerates, which is ⌊(n − m)/2⌋ (§2.2).
    pub fn loss_tolerance(&self) -> usize {
        self.n - self.m
    }

    /// Raw-to-logical storage ratio, n / m (compare Figure 3).
    pub fn storage_overhead(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Returns `true` if `index` names a data block (`0..m`).
    pub fn is_data_index(&self, index: usize) -> bool {
        index < self.m
    }

    /// Returns `true` if `index` names a parity block (`m..n`).
    pub fn is_parity_index(&self, index: usize) -> bool {
        index >= self.m && index < self.n
    }
}

impl fmt::Display for CodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-of-{}", self.m, self.n)
    }
}

/// A single erasure-coded block tagged with its position in the stripe.
///
/// `index` is the absolute block index in `0..n`: indices `0..m` are data
/// blocks, `m..n` are parity blocks.
#[derive(Debug, Clone, Copy)]
pub struct Share<'a> {
    /// Absolute block index in `0..n`.
    pub index: usize,
    /// The block contents.
    pub data: &'a [u8],
}

impl<'a> Share<'a> {
    /// Creates a share from an index and block contents.
    pub fn new(index: usize, data: &'a [u8]) -> Self {
        Share { index, data }
    }
}

impl<'a> From<(usize, &'a [u8])> for Share<'a> {
    fn from((index, data): (usize, &'a [u8])) -> Self {
        Share { index, data }
    }
}

/// Which code family a [`Codec`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeKind {
    /// m = 1: every block is a full copy of the datum.
    Replication,
    /// m = n − 1: one XOR parity block (RAID-5 layout across bricks).
    Parity,
    /// General m-of-n Reed–Solomon.
    ReedSolomon,
}

/// An m-of-n erasure codec implementing the paper's `encode` / `decode` /
/// `modify` primitives (§2.1, Figure 4).
///
/// # Examples
///
/// The Figure 4 scenario — a 3-of-5 code, update block 3 (index 2), patch
/// parity incrementally, then decode from blocks {b₁, b₂, c₁′}:
///
/// ```
/// use fab_erasure::{Codec, Share};
///
/// let codec = Codec::new(3, 5)?;
/// let stripe: [&[u8]; 3] = [b"b1..", b"b2..", b"b3.."];
/// let blocks = codec.encode(&stripe)?;
///
/// // modify(3,1): recompute parity c1 (absolute index 3) after b3 changes.
/// let b3_new = b"B3!!";
/// let c1_new = codec.modify(2, 3, &blocks[2], b3_new, &blocks[3])?;
///
/// let data = codec.decode(&[
///     Share::new(0, &blocks[0]),
///     Share::new(1, &blocks[1]),
///     Share::new(3, &c1_new),
/// ])?;
/// assert_eq!(data[0], b"b1..");
/// assert_eq!(data[1], b"b2..");
/// assert_eq!(data[2], b"B3!!");
/// # Ok::<(), fab_erasure::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub enum Codec {
    /// Replication codec (m = 1).
    Replication(Replication),
    /// Single XOR parity codec (m = n − 1).
    Parity(ParityCode),
    /// General Reed–Solomon codec.
    ReedSolomon(ReedSolomon),
}

impl Codec {
    /// Creates a codec for the given (m, n), choosing the cheapest family
    /// that realizes it: replication for m = 1, XOR parity for m = n − 1
    /// (with n > 2), Reed–Solomon otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for invalid (m, n).
    pub fn new(m: usize, n: usize) -> Result<Self> {
        let params = CodeParams::new(m, n)?;
        if m == 1 {
            Ok(Codec::Replication(Replication::new(n)?))
        } else if m == n - 1 {
            Ok(Codec::Parity(ParityCode::new(n)?))
        } else {
            Ok(Codec::ReedSolomon(ReedSolomon::new(
                params.m(),
                params.n(),
            )?))
        }
    }

    /// Creates a Reed–Solomon codec even where a cheaper family exists.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for invalid (m, n).
    pub fn reed_solomon(m: usize, n: usize) -> Result<Self> {
        Ok(Codec::ReedSolomon(ReedSolomon::new(m, n)?))
    }

    /// Creates an n-way replication codec (m = 1).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `n` is 0 or exceeds 255.
    pub fn replication(n: usize) -> Result<Self> {
        Ok(Codec::Replication(Replication::new(n)?))
    }

    /// Creates a single-parity codec with m = n − 1.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `n < 2` or `n > 255`.
    pub fn parity(n: usize) -> Result<Self> {
        Ok(Codec::Parity(ParityCode::new(n)?))
    }

    /// The validated code parameters.
    pub fn params(&self) -> CodeParams {
        match self {
            Codec::Replication(c) => c.params(),
            Codec::Parity(c) => c.params(),
            Codec::ReedSolomon(c) => c.params(),
        }
    }

    /// Which family this codec belongs to.
    pub fn kind(&self) -> CodeKind {
        match self {
            Codec::Replication(_) => CodeKind::Replication,
            Codec::Parity(_) => CodeKind::Parity,
            Codec::ReedSolomon(_) => CodeKind::ReedSolomon,
        }
    }

    /// Number of data blocks per stripe.
    pub fn m(&self) -> usize {
        self.params().m()
    }

    /// Total number of blocks per stripe.
    pub fn n(&self) -> usize {
        self.params().n()
    }

    /// Encodes a stripe of m data blocks into n blocks.
    ///
    /// The first m returned blocks are the original data blocks (the code is
    /// systematic, matching the paper's definition of `encode`), the last
    /// n − m are parity.
    ///
    /// Allocates the n output blocks; hot paths that encode repeatedly
    /// should prefer [`Codec::encode_into`] with reused buffers.
    ///
    /// # Errors
    ///
    /// * [`CodeError::WrongBlockCount`] if `stripe.len() != m`.
    /// * [`CodeError::UnequalBlockLengths`] if the blocks differ in length.
    pub fn encode<B: AsRef<[u8]>>(&self, stripe: &[B]) -> Result<Vec<Vec<u8>>> {
        let mut out = vec![Vec::new(); self.n()];
        self.encode_into(stripe, &mut out)?;
        Ok(out)
    }

    /// Encodes a stripe of m data blocks into n caller-provided buffers.
    ///
    /// Byte-identical to [`Codec::encode`], but writes into `out` instead
    /// of allocating: each `out[k]` is cleared and refilled in place, so a
    /// buffer that already has sufficient capacity (any buffer reused from
    /// a previous call at the same block size) is **never reallocated** —
    /// the steady state performs no heap allocation.
    ///
    /// # Errors
    ///
    /// * [`CodeError::WrongBlockCount`] if `stripe.len() != m` **or**
    ///   `out.len() != n`.
    /// * [`CodeError::UnequalBlockLengths`] if the blocks differ in length.
    pub fn encode_into<B: AsRef<[u8]>>(&self, stripe: &[B], out: &mut [Vec<u8>]) -> Result<()> {
        let refs = check_stripe(stripe, self.m())?;
        if out.len() != self.n() {
            return Err(CodeError::WrongBlockCount {
                expected: self.n(),
                actual: out.len(),
            });
        }
        match self {
            Codec::Replication(c) => c.encode_into(&refs, out),
            Codec::Parity(c) => c.encode_into(&refs, out),
            Codec::ReedSolomon(c) => c.encode_into(&refs, out),
        }
        Ok(())
    }

    /// Decodes the m data blocks from any m distinct shares.
    ///
    /// Extra shares beyond the first m distinct ones are ignored.
    ///
    /// Allocates the m output blocks; hot paths that decode repeatedly
    /// should prefer [`Codec::decode_into`] with reused buffers.
    ///
    /// # Errors
    ///
    /// * [`CodeError::NotEnoughShares`] with fewer than m distinct shares.
    /// * [`CodeError::DuplicateShare`] on repeated indices.
    /// * [`CodeError::IndexOutOfRange`] on indices ≥ n.
    /// * [`CodeError::UnequalBlockLengths`] if shares differ in length.
    pub fn decode(&self, shares: &[Share<'_>]) -> Result<Vec<Vec<u8>>> {
        let mut out = vec![Vec::new(); self.m()];
        self.decode_into(shares, &mut out)?;
        Ok(out)
    }

    /// Decodes the m data blocks into m caller-provided buffers.
    ///
    /// Byte-identical to [`Codec::decode`], but writes into `out` instead
    /// of allocating the output blocks: each `out[k]` is cleared and
    /// refilled in place, so reused buffers are never reallocated in the
    /// steady state. (A non-systematic Reed–Solomon decode still builds its
    /// tiny m × m inversion matrix — that cost is independent of the block
    /// size.)
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode`], plus
    /// [`CodeError::WrongBlockCount`] if `out.len() != m`.
    pub fn decode_into(&self, shares: &[Share<'_>], out: &mut [Vec<u8>]) -> Result<()> {
        let shares = check_shares(shares, self.params())?;
        if out.len() != self.m() {
            return Err(CodeError::WrongBlockCount {
                expected: self.m(),
                actual: out.len(),
            });
        }
        match self {
            Codec::Replication(c) => c.decode_into(&shares, out),
            Codec::Parity(c) => c.decode_into(&shares, out),
            Codec::ReedSolomon(c) => c.decode_into(&shares, out),
        }
        Ok(())
    }

    /// Reconstructs one block (data *or* parity) at `target` from any m
    /// distinct shares. Used for brick rebuild after permanent failures.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode`], plus
    /// [`CodeError::IndexOutOfRange`] if `target ≥ n`.
    pub fn reconstruct(&self, target: usize, shares: &[Share<'_>]) -> Result<Vec<u8>> {
        if target >= self.n() {
            return Err(CodeError::IndexOutOfRange {
                index: target,
                bound: self.n(),
            });
        }
        // Fast path: the target is among the shares already.
        if let Some(s) = shares.iter().find(|s| s.index == target) {
            return Ok(s.data.to_vec());
        }
        let data = self.decode(shares)?;
        if target < self.m() {
            return Ok(data[target].clone());
        }
        let encoded = self.encode(&data)?;
        Ok(encoded[target].clone())
    }

    /// The paper's `modify_{i,j}` primitive: recomputes parity block `j`
    /// after data block `i` is updated from `old_data` to `new_data`,
    /// given the old parity contents `old_parity`.
    ///
    /// `i` is an absolute data index in `0..m`; `j` is an absolute parity
    /// index in `m..n`.
    ///
    /// # Errors
    ///
    /// * [`CodeError::IndexOutOfRange`] if `i` is not a data index or `j`
    ///   not a parity index.
    /// * [`CodeError::UnequalBlockLengths`] if the three blocks differ in
    ///   length.
    pub fn modify(
        &self,
        i: usize,
        j: usize,
        old_data: &[u8],
        new_data: &[u8],
        old_parity: &[u8],
    ) -> Result<Vec<u8>> {
        let p = self.params();
        if !p.is_data_index(i) {
            return Err(CodeError::IndexOutOfRange {
                index: i,
                bound: p.m(),
            });
        }
        if !p.is_parity_index(j) {
            return Err(CodeError::IndexOutOfRange {
                index: j,
                bound: p.n(),
            });
        }
        if old_data.len() != new_data.len() || old_data.len() != old_parity.len() {
            return Err(CodeError::UnequalBlockLengths);
        }
        let mut parity = old_parity.to_vec();
        self.modify_in_place(i, j, old_data, new_data, &mut parity)?;
        Ok(parity)
    }

    /// In-place variant of [`Codec::modify`]: patches `parity` from the old
    /// to the new contents of parity block `j` directly, without allocating
    /// a result block or an intermediate difference block.
    ///
    /// This is the allocation-free core of the paper's `modify_{i,j}`:
    /// `c_j ^= g_{j,i} · (b_i ⊕ b_i′)` computed by one fused kernel pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::modify`] (with `parity` playing the role
    /// of `old_parity` for the length check).
    pub fn modify_in_place(
        &self,
        i: usize,
        j: usize,
        old_data: &[u8],
        new_data: &[u8],
        parity: &mut [u8],
    ) -> Result<()> {
        let p = self.params();
        if !p.is_data_index(i) {
            return Err(CodeError::IndexOutOfRange {
                index: i,
                bound: p.m(),
            });
        }
        if !p.is_parity_index(j) {
            return Err(CodeError::IndexOutOfRange {
                index: j,
                bound: p.n(),
            });
        }
        if old_data.len() != new_data.len() || old_data.len() != parity.len() {
            return Err(CodeError::UnequalBlockLengths);
        }
        match self {
            Codec::Replication(_) => parity.copy_from_slice(new_data),
            // p' = p ⊕ b ⊕ b' — two word-wide XOR passes.
            Codec::Parity(_) => {
                xor_slice(parity, old_data);
                xor_slice(parity, new_data);
            }
            Codec::ReedSolomon(c) => {
                mul_acc_xor(parity, old_data, new_data, c.coefficient(j, i));
            }
        }
        Ok(())
    }

    /// Computes the coded delta `g_{j,i} · (new − old)` that parity process
    /// `j` must XOR into its parity block when data block `i` changes.
    ///
    /// This implements the §5.2(b) optimization: the coordinator sends each
    /// parity process a single pre-coded block instead of the old and new
    /// data values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::modify`].
    pub fn coded_delta(
        &self,
        i: usize,
        j: usize,
        old_data: &[u8],
        new_data: &[u8],
    ) -> Result<Vec<u8>> {
        let p = self.params();
        if !p.is_data_index(i) {
            return Err(CodeError::IndexOutOfRange {
                index: i,
                bound: p.m(),
            });
        }
        if !p.is_parity_index(j) {
            return Err(CodeError::IndexOutOfRange {
                index: j,
                bound: p.n(),
            });
        }
        if old_data.len() != new_data.len() {
            return Err(CodeError::UnequalBlockLengths);
        }
        let mut delta = vec![0u8; old_data.len()];
        self.coded_delta_acc(i, j, old_data, new_data, &mut delta)?;
        Ok(delta)
    }

    /// Accumulating variant of [`Codec::coded_delta`]: XORs the coded delta
    /// `g_{j,i} · (new ⊕ old)` into `acc` without allocating.
    ///
    /// Coded deltas are linear, so a coordinator combining the
    /// contributions of several written blocks into one parity patch can
    /// fold them all into a single reused buffer (§5.2(b)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::coded_delta`], plus
    /// [`CodeError::UnequalBlockLengths`] if `acc` differs in length.
    pub fn coded_delta_acc(
        &self,
        i: usize,
        j: usize,
        old_data: &[u8],
        new_data: &[u8],
        acc: &mut [u8],
    ) -> Result<()> {
        let p = self.params();
        if !p.is_data_index(i) {
            return Err(CodeError::IndexOutOfRange {
                index: i,
                bound: p.m(),
            });
        }
        if !p.is_parity_index(j) {
            return Err(CodeError::IndexOutOfRange {
                index: j,
                bound: p.n(),
            });
        }
        if old_data.len() != new_data.len() || old_data.len() != acc.len() {
            return Err(CodeError::UnequalBlockLengths);
        }
        match self {
            // A replica's "parity" is the value itself; the delta is the
            // XOR difference (coefficient 1).
            Codec::Replication(_) | Codec::Parity(_) => {
                xor_slice(acc, old_data);
                xor_slice(acc, new_data);
            }
            Codec::ReedSolomon(c) => {
                mul_acc_xor(acc, old_data, new_data, c.coefficient(j, i));
            }
        }
        Ok(())
    }

    /// Applies a coded delta produced by [`Codec::coded_delta`] to the old
    /// parity contents, yielding the new parity block.
    ///
    /// # Errors
    ///
    /// [`CodeError::UnequalBlockLengths`] if lengths differ.
    pub fn apply_coded_delta(&self, old_parity: &[u8], delta: &[u8]) -> Result<Vec<u8>> {
        let mut parity = old_parity.to_vec();
        self.apply_coded_delta_in_place(&mut parity, delta)?;
        Ok(parity)
    }

    /// In-place variant of [`Codec::apply_coded_delta`]: XORs `delta` into
    /// `parity` with the word-wide kernel, avoiding the result allocation.
    ///
    /// # Errors
    ///
    /// [`CodeError::UnequalBlockLengths`] if lengths differ.
    pub fn apply_coded_delta_in_place(&self, parity: &mut [u8], delta: &[u8]) -> Result<()> {
        if parity.len() != delta.len() {
            return Err(CodeError::UnequalBlockLengths);
        }
        xor_slice(parity, delta);
        Ok(())
    }
}

/// Validates a stripe argument and borrows its blocks.
fn check_stripe<B: AsRef<[u8]>>(stripe: &[B], m: usize) -> Result<Vec<&[u8]>> {
    if stripe.len() != m {
        return Err(CodeError::WrongBlockCount {
            expected: m,
            actual: stripe.len(),
        });
    }
    let refs: Vec<&[u8]> = stripe.iter().map(AsRef::as_ref).collect();
    let len = refs[0].len();
    if refs.iter().any(|b| b.len() != len) {
        return Err(CodeError::UnequalBlockLengths);
    }
    Ok(refs)
}

/// Validates shares: distinct in-range indices, equal lengths, at least m.
/// Returns exactly m shares (extras dropped), sorted by index.
fn check_shares<'a>(shares: &[Share<'a>], params: CodeParams) -> Result<Vec<Share<'a>>> {
    let mut seen = vec![false; params.n()];
    let mut picked: Vec<Share<'a>> = Vec::with_capacity(params.m());
    for s in shares {
        if s.index >= params.n() {
            return Err(CodeError::IndexOutOfRange {
                index: s.index,
                bound: params.n(),
            });
        }
        if seen[s.index] {
            return Err(CodeError::DuplicateShare { index: s.index });
        }
        seen[s.index] = true;
        if picked.len() < params.m() {
            picked.push(*s);
        }
    }
    if picked.len() < params.m() {
        return Err(CodeError::NotEnoughShares {
            needed: params.m(),
            actual: picked.len(),
        });
    }
    if !picked.is_empty() {
        let len = picked[0].data.len();
        if picked.iter().any(|s| s.data.len() != len) {
            return Err(CodeError::UnequalBlockLengths);
        }
    }
    picked.sort_by_key(|s| s.index);
    Ok(picked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(CodeParams::new(0, 5).is_err());
        assert!(CodeParams::new(3, 2).is_err());
        assert!(CodeParams::new(1, 256).is_err());
        assert!(CodeParams::new(1, 1).is_ok());
        assert!(CodeParams::new(5, 8).is_ok());
        assert!(CodeParams::new(255, 255).is_ok());
    }

    #[test]
    fn params_accessors() {
        let p = CodeParams::new(5, 8).unwrap();
        assert_eq!(p.m(), 5);
        assert_eq!(p.n(), 8);
        assert_eq!(p.parity_count(), 3);
        assert_eq!(p.loss_tolerance(), 3);
        assert!(p.is_data_index(4));
        assert!(!p.is_data_index(5));
        assert!(p.is_parity_index(5));
        assert!(!p.is_parity_index(8));
        assert_eq!(p.to_string(), "5-of-8");
    }

    #[test]
    fn codec_family_selection() {
        assert_eq!(Codec::new(1, 4).unwrap().kind(), CodeKind::Replication);
        assert_eq!(Codec::new(4, 5).unwrap().kind(), CodeKind::Parity);
        assert_eq!(Codec::new(5, 8).unwrap().kind(), CodeKind::ReedSolomon);
        // m = n with m > 1 is "striping": Reed-Solomon with no parity rows.
        assert_eq!(Codec::new(3, 3).unwrap().kind(), CodeKind::ReedSolomon);
    }

    #[test]
    fn encode_rejects_bad_stripe() {
        let c = Codec::new(3, 5).unwrap();
        let two: [&[u8]; 2] = [b"ab", b"cd"];
        assert!(matches!(
            c.encode(&two),
            Err(CodeError::WrongBlockCount {
                expected: 3,
                actual: 2
            })
        ));
        let uneven: [&[u8]; 3] = [b"ab", b"cd", b"e"];
        assert!(matches!(
            c.encode(&uneven),
            Err(CodeError::UnequalBlockLengths)
        ));
    }

    #[test]
    fn decode_rejects_bad_shares() {
        let c = Codec::new(2, 4).unwrap();
        let blocks = c.encode(&[b"ab".as_slice(), b"cd".as_slice()]).unwrap();
        // Too few.
        assert!(matches!(
            c.decode(&[Share::new(0, &blocks[0])]),
            Err(CodeError::NotEnoughShares {
                needed: 2,
                actual: 1
            })
        ));
        // Duplicate index.
        assert!(matches!(
            c.decode(&[Share::new(0, &blocks[0]), Share::new(0, &blocks[0])]),
            Err(CodeError::DuplicateShare { index: 0 })
        ));
        // Out of range.
        assert!(matches!(
            c.decode(&[Share::new(0, &blocks[0]), Share::new(9, &blocks[1])]),
            Err(CodeError::IndexOutOfRange { index: 9, bound: 4 })
        ));
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = CodeError::NotEnoughShares {
            needed: 5,
            actual: 3,
        };
        assert_eq!(e.to_string(), "decoding needs 5 distinct shares, got 3");
        let e = CodeError::InvalidParams { m: 9, n: 3 };
        assert!(e.to_string().contains("m=9"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeError>();
        assert_send_sync::<Codec>();
    }

    fn stripe(m: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| {
                (0..len)
                    .map(|k| (seed as usize ^ (i * 37 + k * 11)) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_into_matches_encode_all_families() {
        for (m, n) in [(1usize, 3usize), (3, 4), (5, 8), (2, 5)] {
            let codec = Codec::new(m, n).unwrap();
            let data = stripe(m, 40, 17);
            let fresh = codec.encode(&data).unwrap();
            let mut reused = vec![Vec::new(); n];
            codec.encode_into(&data, &mut reused).unwrap();
            assert_eq!(fresh, reused, "({m},{n})");
        }
    }

    #[test]
    fn decode_into_matches_decode_all_families() {
        for (m, n) in [(1usize, 3usize), (3, 4), (5, 8), (2, 5)] {
            let codec = Codec::new(m, n).unwrap();
            let data = stripe(m, 40, 23);
            let blocks = codec.encode(&data).unwrap();
            // Parity-heavy share selection exercises the real decode path.
            let shares: Vec<Share<'_>> = (n - m..n)
                .map(|i| Share::new(i, blocks[i].as_slice()))
                .collect();
            let fresh = codec.decode(&shares).unwrap();
            let mut reused = vec![Vec::new(); m];
            codec.decode_into(&shares, &mut reused).unwrap();
            assert_eq!(fresh, reused, "({m},{n})");
            assert_eq!(fresh, data, "({m},{n})");
        }
    }

    #[test]
    fn into_variants_reject_wrong_output_arity() {
        let codec = Codec::new(3, 5).unwrap();
        let data = stripe(3, 8, 1);
        let mut too_small = vec![Vec::new(); 4];
        assert!(matches!(
            codec.encode_into(&data, &mut too_small),
            Err(CodeError::WrongBlockCount {
                expected: 5,
                actual: 4
            })
        ));
        let blocks = codec.encode(&data).unwrap();
        let shares: Vec<Share<'_>> = (0..3).map(|i| Share::new(i, blocks[i].as_slice())).collect();
        let mut too_big = vec![Vec::new(); 4];
        assert!(matches!(
            codec.decode_into(&shares, &mut too_big),
            Err(CodeError::WrongBlockCount {
                expected: 3,
                actual: 4
            })
        ));
    }

    #[test]
    fn steady_state_encode_decode_do_not_reallocate() {
        let codec = Codec::new(5, 8).unwrap();
        let mut enc_out = vec![Vec::new(); 8];
        let mut dec_out = vec![Vec::new(); 5];
        codec.encode_into(&stripe(5, 256, 3), &mut enc_out).unwrap();
        {
            let shares: Vec<Share<'_>> = (3..8)
                .map(|i| Share::new(i, enc_out[i].as_slice()))
                .collect();
            codec.decode_into(&shares, &mut dec_out).unwrap();
        }
        let enc_ptrs: Vec<*const u8> = enc_out.iter().map(std::vec::Vec::as_ptr).collect();
        let dec_ptrs: Vec<*const u8> = dec_out.iter().map(std::vec::Vec::as_ptr).collect();
        // Ten more rounds at the same block size: every buffer stays put.
        for round in 0..10u8 {
            let data = stripe(5, 256, round.wrapping_mul(41));
            codec.encode_into(&data, &mut enc_out).unwrap();
            let shares: Vec<Share<'_>> = (3..8)
                .map(|i| Share::new(i, enc_out[i].as_slice()))
                .collect();
            let decoded_ok = codec.decode_into(&shares, &mut dec_out).is_ok();
            assert!(decoded_ok);
            assert_eq!(dec_out, data, "round {round}");
        }
        assert_eq!(
            enc_ptrs,
            enc_out.iter().map(std::vec::Vec::as_ptr).collect::<Vec<_>>(),
            "encode_into reallocated in steady state"
        );
        assert_eq!(
            dec_ptrs,
            dec_out.iter().map(std::vec::Vec::as_ptr).collect::<Vec<_>>(),
            "decode_into reallocated in steady state"
        );
    }

    #[test]
    fn modify_in_place_matches_modify_all_families() {
        for (m, n) in [(1usize, 3usize), (3, 4), (5, 8)] {
            let codec = Codec::new(m, n).unwrap();
            let data = stripe(m, 32, 9);
            let blocks = codec.encode(&data).unwrap();
            let new_b0 = vec![0x3Cu8; 32];
            for (j, block) in blocks.iter().enumerate().take(n).skip(m) {
                let owned = codec.modify(0, j, &data[0], &new_b0, block).unwrap();
                let mut in_place = block.clone();
                codec
                    .modify_in_place(0, j, &data[0], &new_b0, &mut in_place)
                    .unwrap();
                assert_eq!(owned, in_place, "({m},{n}) j={j}");
            }
        }
    }

    #[test]
    fn coded_delta_acc_folds_multiple_contributions() {
        let codec = Codec::new(5, 8).unwrap();
        let data = stripe(5, 24, 5);
        let new0 = vec![0x11u8; 24];
        let new2 = vec![0x77u8; 24];
        for j in 5..8 {
            // Reference: two allocating deltas XOR-ed together.
            let d0 = codec.coded_delta(0, j, &data[0], &new0).unwrap();
            let d2 = codec.coded_delta(2, j, &data[2], &new2).unwrap();
            let want: Vec<u8> = d0.iter().zip(&d2).map(|(a, b)| a ^ b).collect();
            // Accumulating: folded into one reused buffer.
            let mut acc = vec![0u8; 24];
            codec.coded_delta_acc(0, j, &data[0], &new0, &mut acc).unwrap();
            codec.coded_delta_acc(2, j, &data[2], &new2, &mut acc).unwrap();
            assert_eq!(want, acc, "j={j}");
        }
    }

    #[test]
    fn apply_coded_delta_in_place_matches_allocating() {
        let codec = Codec::new(3, 5).unwrap();
        let parity = stripe(1, 16, 31).pop().unwrap();
        let delta = stripe(1, 16, 77).pop().unwrap();
        let owned = codec.apply_coded_delta(&parity, &delta).unwrap();
        let mut in_place = parity.clone();
        codec.apply_coded_delta_in_place(&mut in_place, &delta).unwrap();
        assert_eq!(owned, in_place);
        assert!(codec
            .apply_coded_delta_in_place(&mut in_place, &delta[..8])
            .is_err());
    }

    #[test]
    fn share_conversions() {
        let data = b"abc";
        let s: Share<'_> = (3usize, data.as_slice()).into();
        assert_eq!(s.index, 3);
        assert_eq!(s.data, b"abc");
    }
}
