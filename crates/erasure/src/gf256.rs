//! Arithmetic in the finite field GF(2⁸).
//!
//! All Reed–Solomon computations in this crate happen in GF(2⁸) with the
//! primitive polynomial x⁸ + x⁴ + x³ + x² + 1 (0x11D), the polynomial used
//! by most storage-oriented Reed–Solomon deployments. Addition is XOR;
//! multiplication and division go through logarithm/antilogarithm tables
//! that are computed at compile time.
//!
//! The paper's erasure-code primitives (`encode`, `decode`, `modify`; see
//! §2.1 and Figure 4 of Frølund et al., DSN 2004) are all linear maps over
//! this field, which is what makes the incremental parity update
//! `modify_{i,j}` possible: a parity block is a GF(2⁸)-linear combination of
//! the data blocks, so replacing data block *i* changes parity block *j* by
//! `a_{j,i} · (b_i' − b_i)`.

use std::fmt;

/// The primitive polynomial x⁸ + x⁴ + x³ + x² + 1 used to reduce products.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Order of the multiplicative group of GF(2⁸).
pub const GROUP_ORDER: usize = 255;

/// Builds the antilog (exponential) table `EXP[i] = g^i` for the generator
/// `g = 2`, extended to 512 entries so products of logs need no modular
/// reduction.
///
/// `pub(crate)` so the [`kernel`](crate::kernel) layer can derive its full
/// multiplication and nibble tables from the same ground truth at compile
/// time.
pub(crate) const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        exp[i + GROUP_ORDER] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Positions 510 and 511 are never indexed (max log sum is 254+254=508),
    // but fill them consistently anyway.
    exp[510] = exp[0];
    exp[511] = exp[1];
    exp
}

/// Builds the log table: `LOG[EXP[i]] = i`. `LOG[0]` is a sentinel that must
/// never be consumed; multiplication guards the zero cases explicitly.
pub(crate) const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < GROUP_ORDER {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

static EXP: [u8; 512] = build_exp();
static LOG: [u8; 256] = build_log();

/// An element of GF(2⁸).
///
/// `Gf256` is a transparent wrapper over `u8`; the wrapper keeps field
/// arithmetic from being confused with ordinary byte arithmetic
/// (C-NEWTYPE). All operations are total: division by zero panics, exactly
/// like integer division.
///
/// # Examples
///
/// ```
/// use fab_erasure::gf256::Gf256;
///
/// let a = Gf256::new(0x53);
/// let b = Gf256::new(0xCA);
/// // Addition in a binary field is XOR and is its own inverse.
/// assert_eq!(a + b, Gf256::new(0x53 ^ 0xCA));
/// assert_eq!((a + b) + b, a);
/// // Multiplication distributes over addition.
/// let c = Gf256::new(7);
/// assert_eq!(c * (a + b), c * a + c * b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The canonical generator of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies two field elements.
    ///
    /// Implemented as a single branch-free lookup in the kernel layer's
    /// full 256 × 256 product table (the zero rows/columns of the table are
    /// zero, so no explicit zero guard is needed).
    #[inline]
    #[allow(clippy::should_implement_trait)] // also exposed via std::ops::Mul
    pub fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(crate::kernel::MUL_TABLE[self.0 as usize][rhs.0 as usize])
    }

    /// Divides `self` by `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    #[allow(clippy::should_implement_trait)] // also exposed via std::ops::Div
    pub fn div(self, rhs: Gf256) -> Gf256 {
        assert!(rhs.0 != 0, "division by zero in GF(256)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + GROUP_ORDER - LOG[rhs.0 as usize] as usize;
        Gf256(EXP[idx])
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf256 {
        assert!(self.0 != 0, "zero has no multiplicative inverse in GF(256)");
        Gf256(EXP[GROUP_ORDER - LOG[self.0 as usize] as usize])
    }

    /// Raises `self` to the power `exp`.
    ///
    /// `0⁰` is defined as `1`, matching the convention used when evaluating
    /// Vandermonde matrices. The exponent is reduced modulo the group order
    /// *before* being multiplied by the base's logarithm (`a^255 = 1` for
    /// non-zero `a`), so arbitrarily large exponents — up to `usize::MAX` —
    /// cannot overflow the intermediate product.
    pub fn pow(self, exp: usize) -> Gf256 {
        if exp == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let log = LOG[self.0 as usize] as usize;
        // Reduce first: log ≤ 254 and exp % 255 ≤ 254, so the product is at
        // most 254 · 254 = 64 516 — far below any overflow boundary. The
        // seed code computed `(log * exp) % GROUP_ORDER`, which overflows
        // (panicking in debug, silently wrapping in release) once
        // `exp > usize::MAX / 254`.
        Gf256(EXP[(log * (exp % GROUP_ORDER)) % GROUP_ORDER])
    }

    /// Returns `g^i` where `g` is [`Gf256::GENERATOR`].
    #[inline]
    pub fn exp(i: usize) -> Gf256 {
        Gf256(EXP[i % GROUP_ORDER])
    }

    /// Returns the discrete logarithm base `g`, or `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl std::ops::Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // addition in GF(2^8) IS xor
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl std::ops::AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // addition in GF(2^8) IS xor
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl std::ops::Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // subtraction in GF(2^8) IS xor
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Subtraction and addition coincide in binary fields.
        Gf256(self.0 ^ rhs.0)
    }
}

impl std::ops::SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // subtraction in GF(2^8) IS xor
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl std::ops::Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256::mul(self, rhs)
    }
}

impl std::ops::MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = Gf256::mul(*self, rhs);
    }
}

impl std::ops::Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256::div(self, rhs)
    }
}

impl std::ops::DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = Gf256::div(*self, rhs);
    }
}

impl std::ops::Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        // Every element is its own additive inverse.
        self
    }
}

// The bulk block operations (`mul_acc`, `mul_slice`, `mul_acc_xor`,
// `xor_slice`) live in the [`kernel`](crate::kernel) module, which selects
// between scalar, full-table, and SIMD implementations at runtime. They are
// re-exported here so existing `gf256::mul_acc`-style paths keep working.
pub use crate::kernel::{mul_acc, mul_acc_xor, mul_slice, xor_slice};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // indexing two parallel tables
    fn tables_are_consistent() {
        for i in 0..GROUP_ORDER {
            let e = EXP[i];
            assert_ne!(e, 0, "generator powers never hit zero");
            assert_eq!(LOG[e as usize] as usize, i);
        }
        // The extended half mirrors the first half.
        for i in 0..GROUP_ORDER {
            assert_eq!(EXP[i], EXP[i + GROUP_ORDER]);
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        for i in 0..GROUP_ORDER {
            let v = Gf256::exp(i).value();
            assert!(!seen[v as usize], "generator order < 255");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 17, 128, 255] {
                let x = Gf256(a) + Gf256(b);
                assert_eq!(x.value(), a ^ b);
                assert_eq!(x + Gf256(b), Gf256(a));
                assert_eq!(Gf256(a) - Gf256(b), x);
            }
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            let a = Gf256(a);
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
            assert_eq!(Gf256::ZERO * a, Gf256::ZERO);
        }
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        let samples = [0u8, 1, 2, 3, 5, 9, 100, 200, 255];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
                for &c in &samples {
                    assert_eq!(
                        (Gf256(a) * Gf256(b)) * Gf256(c),
                        Gf256(a) * (Gf256(b) * Gf256(c))
                    );
                }
            }
        }
    }

    #[test]
    fn mul_distributes_over_add() {
        let samples = [0u8, 1, 2, 7, 31, 130, 254, 255];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert_eq!(
                        Gf256(a) * (Gf256(b) + Gf256(c)),
                        Gf256(a) * Gf256(b) + Gf256(a) * Gf256(c)
                    );
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let a = Gf256(a);
            assert_eq!(a * a.inv(), Gf256::ONE);
            assert_eq!(a / a, Gf256::ONE);
            assert_eq!(Gf256::ONE / a, a.inv());
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(Gf256(a) / Gf256(b), Gf256(a) * Gf256(b).inv());
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf256(5) / Gf256::ZERO;
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_of_zero_panics() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for &a in &[0u8, 1, 2, 3, 29, 255] {
            let a = Gf256(a);
            let mut acc = Gf256::ONE;
            for e in 0..20 {
                assert_eq!(a.pow(e), acc, "a={a:?} e={e}");
                acc *= a;
            }
        }
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
    }

    #[test]
    fn pow_handles_huge_exponents_without_overflow() {
        // Regression: the seed computed `(log * exp) % GROUP_ORDER`, which
        // overflows `usize` for large exponents (panic in debug builds).
        // `a^exp = a^(exp mod 255)` for non-zero `a`, so huge exponents are
        // well-defined and must not panic.
        for &a in &[2u8, 3, 29, 255] {
            let a = Gf256(a);
            assert_eq!(a.pow(usize::MAX), a.pow(usize::MAX % GROUP_ORDER));
            assert_eq!(a.pow(usize::MAX - 1), a.pow((usize::MAX - 1) % GROUP_ORDER));
            // 2^64 - 1 ≡ 0 (mod 255): Fermat gives exactly 1.
            assert_eq!(a.pow(usize::MAX), Gf256::ONE);
            // Consistency across the reduction boundary.
            assert_eq!(a.pow(GROUP_ORDER + 7), a.pow(7));
        }
        assert_eq!(Gf256::ZERO.pow(usize::MAX), Gf256::ZERO);
    }

    #[test]
    fn fermat_little_theorem() {
        // a^255 = 1 for all non-zero a.
        for a in 1..=255u8 {
            assert_eq!(Gf256(a).pow(GROUP_ORDER), Gf256::ONE);
        }
    }

    #[test]
    fn mul_acc_matches_scalar_math() {
        let block = [1u8, 0, 255, 17, 42];
        let mut acc = [9u8, 8, 7, 6, 5];
        let coeff = Gf256(0x1D);
        let expect: Vec<u8> = acc
            .iter()
            .zip(&block)
            .map(|(&a, &b)| (Gf256(a) + Gf256(b) * coeff).value())
            .collect();
        mul_acc(&mut acc, &block, coeff);
        assert_eq!(acc.to_vec(), expect);
    }

    #[test]
    fn mul_acc_zero_coeff_is_noop() {
        let block = [1u8, 2, 3];
        let mut acc = [4u8, 5, 6];
        mul_acc(&mut acc, &block, Gf256::ZERO);
        assert_eq!(acc, [4, 5, 6]);
    }

    #[test]
    fn mul_acc_one_coeff_is_xor() {
        let block = [1u8, 2, 3];
        let mut acc = [4u8, 5, 6];
        mul_acc(&mut acc, &block, Gf256::ONE);
        assert_eq!(acc, [5, 7, 5]);
    }

    #[test]
    fn mul_slice_matches_scalar_math() {
        let mut block = [0u8, 1, 2, 200, 255];
        let orig = block;
        let coeff = Gf256(77);
        mul_slice(&mut block, coeff);
        for (got, &b) in block.iter().zip(&orig) {
            assert_eq!(*got, (Gf256(b) * coeff).value());
        }
    }

    #[test]
    fn mul_slice_by_zero_clears() {
        let mut block = [1u8, 2, 3];
        mul_slice(&mut block, Gf256::ZERO);
        assert_eq!(block, [0, 0, 0]);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Gf256(0x2a)), "0x2a");
        assert_eq!(format!("{:?}", Gf256(0x2a)), "Gf256(0x2a)");
        assert_eq!(format!("{:x}", Gf256(0x2a)), "2a");
        assert_eq!(format!("{:b}", Gf256(0b101)), "101");
    }

    #[test]
    fn conversions_round_trip() {
        for b in 0..=255u8 {
            assert_eq!(u8::from(Gf256::from(b)), b);
        }
    }
}
