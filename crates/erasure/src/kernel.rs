//! Throughput-oriented bulk kernels for GF(2⁸) arithmetic.
//!
//! Every read, write, and recovery in the storage-register protocol bottoms
//! out in the erasure substrate's `encode`/`decode`/`modify` primitives
//! (§2.1, Figure 4 of the paper), and those primitives reduce to three bulk
//! operations over byte blocks:
//!
//! * [`mul_acc`] — `acc[k] ^= c · block[k]` (the encode/decode inner loop),
//! * [`mul_slice`] — `block[k] = c · block[k]` in place,
//! * [`xor_slice`] — `dst[k] ^= src[k]` (GF(2⁸) addition),
//!
//! plus the fused [`mul_acc_xor`] — `acc[k] ^= c · (old[k] ^ new[k])` —
//! which is exactly the paper's `modify_{i,j}` parity patch computed
//! without materializing the difference block.
//!
//! # Kernel tiers
//!
//! Three interchangeable kernels implement the multiply ops; all are
//! byte-for-byte equivalent (pinned by exhaustive tests over every
//! coefficient):
//!
//! 1. **Scalar** ([`Kernel::Scalar`]) — the original per-byte log/exp
//!    lookup with a zero-guard branch. Slowest, but trivially auditable;
//!    it is the *source of truth* the other kernels are tested against.
//! 2. **Table** ([`Kernel::Table`]) — branch-free lookups in a full
//!    256 × 256 multiplication table (`MUL_TABLE[c][x] = c·x`, 64 KiB,
//!    built at compile time). Portable to every target.
//! 3. **Simd** ([`Kernel::Simd`]) — the split low/high-nibble method:
//!    `c·x = c·(x & 0x0F) ⊕ c·(x & 0xF0)`, with the two 16-entry
//!    per-coefficient tables applied 16 bytes at a time via byte-shuffle
//!    instructions (SSSE3 `_mm_shuffle_epi8` on x86_64, NEON `vqtbl1q_u8`
//!    on aarch64). Selected by one-time runtime feature detection.
//!
//! [`xor_slice`] is always word-wide (`u64` chunks) in safe code; LLVM
//! vectorizes that loop on every target.
//!
//! Dispatch order is Simd → Table; [`set_kernel_override`] pins a specific
//! kernel for tests and benchmarks (e.g. forcing the portable fallback on
//! SIMD-capable hardware to verify equivalence both ways).

use crate::gf256::{build_exp, build_log, Gf256};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Compile-time tables
// ---------------------------------------------------------------------------

/// Full 256 × 256 multiplication table: `MUL_TABLE[a][b] = a · b`.
///
/// Row `a` is the image of the whole field under multiplication by `a`,
/// which makes the per-coefficient inner loops branch-free: no zero guard,
/// one load per byte.
const fn build_mul_table() -> [[u8; 256]; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut table = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = log[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            table[a][b] = exp[la + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

/// `NIB_LO[c][x] = c · x` for `x` in `0..16` (the low nibble).
const fn build_nib_lo() -> [[u8; 16]; 256] {
    let mul = build_mul_table();
    let mut t = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            t[c][x] = mul[c][x];
            x += 1;
        }
        c += 1;
    }
    t
}

/// `NIB_HI[c][x] = c · (x << 4)` for `x` in `0..16` (the high nibble).
const fn build_nib_hi() -> [[u8; 16]; 256] {
    let mul = build_mul_table();
    let mut t = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            t[c][x] = mul[c][x << 4];
            x += 1;
        }
        c += 1;
    }
    t
}

/// The full multiplication table (64 KiB). Shared with [`Gf256::mul`](crate::Gf256).
pub(crate) static MUL_TABLE: [[u8; 256]; 256] = build_mul_table();
/// Low-nibble product tables, one 16-byte row per coefficient (4 KiB).
static NIB_LO: [[u8; 16]; 256] = build_nib_lo();
/// High-nibble product tables, one 16-byte row per coefficient (4 KiB).
static NIB_HI: [[u8; 16]; 256] = build_nib_hi();

// Scalar-reference tables (log/exp), used only by the Scalar kernel.
static EXP: [u8; 512] = build_exp();
static LOG: [u8; 256] = build_log();

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

/// Identifies one of the interchangeable GF(2⁸) bulk-kernel implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Per-byte log/exp lookups with a zero guard (the reference kernel).
    Scalar,
    /// Branch-free full-table lookups (portable fast path).
    Table,
    /// Nibble-split byte-shuffle SIMD (SSSE3 / NEON), 16 bytes per step.
    Simd,
}

const MODE_AUTO: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_TABLE: u8 = 2;
const MODE_SIMD: u8 = 3;

/// Test/bench override of the kernel choice. `MODE_AUTO` means "detect".
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(MODE_AUTO);

/// Returns `true` if the byte-shuffle SIMD kernel can run on this CPU.
///
/// Detection runs once and is cached; on aarch64 NEON is part of the
/// baseline ISA so no runtime probe is needed.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| std::arch::is_x86_feature_detected!("ssse3"))
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Pins the kernel used by [`mul_acc`], [`mul_slice`], and [`mul_acc_xor`],
/// or restores automatic selection with `None`.
///
/// Intended for tests and benchmarks (forcing the portable fallback on
/// SIMD-capable hardware, or measuring one kernel against another).
/// Requesting [`Kernel::Simd`] on hardware without SIMD support silently
/// falls back to [`Kernel::Table`]. The override is process-global.
pub fn set_kernel_override(kernel: Option<Kernel>) {
    let mode = match kernel {
        None => MODE_AUTO,
        Some(Kernel::Scalar) => MODE_SCALAR,
        Some(Kernel::Table) => MODE_TABLE,
        Some(Kernel::Simd) => MODE_SIMD,
    };
    KERNEL_OVERRIDE.store(mode, Ordering::Relaxed);
}

/// The kernel the multiply ops will dispatch to right now.
pub fn active_kernel() -> Kernel {
    match KERNEL_OVERRIDE.load(Ordering::Relaxed) {
        MODE_SCALAR => Kernel::Scalar,
        MODE_TABLE => Kernel::Table,
        MODE_SIMD if simd_available() => Kernel::Simd,
        MODE_SIMD => Kernel::Table,
        _ => {
            if simd_available() {
                Kernel::Simd
            } else {
                Kernel::Table
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public bulk operations
// ---------------------------------------------------------------------------

/// Multiplies every byte of `block` by the constant `coeff`, accumulating
/// (XOR) into `acc`: `acc[k] ^= coeff · block[k]`.
///
/// This is the inner loop of both stripe encoding and decoding. Empty
/// slices are accepted and are a no-op.
///
/// # Panics
///
/// Panics if `acc` and `block` have different lengths; the message names
/// both lengths and the coefficient.
pub fn mul_acc(acc: &mut [u8], block: &[u8], coeff: Gf256) {
    assert_eq!(
        acc.len(),
        block.len(),
        "mul_acc: length mismatch (acc={}, block={}, coeff={:#04x})",
        acc.len(),
        block.len(),
        coeff.value(),
    );
    if coeff.is_zero() {
        return;
    }
    if coeff == Gf256::ONE {
        xor_slice(acc, block);
        return;
    }
    match active_kernel() {
        Kernel::Scalar => scalar_mul_acc(acc, block, coeff),
        Kernel::Table => table_mul_acc(acc, block, &MUL_TABLE[coeff.value() as usize]),
        Kernel::Simd => simd_mul_acc(acc, block, coeff),
    }
}

/// Multiplies every byte of `block` in place by the constant `coeff`:
/// `block[k] = coeff · block[k]`.
///
/// Empty slices are accepted and are a no-op; multiplying by zero clears
/// the block. This function cannot panic.
pub fn mul_slice(block: &mut [u8], coeff: Gf256) {
    if coeff == Gf256::ONE {
        return;
    }
    if coeff.is_zero() {
        block.fill(0);
        return;
    }
    match active_kernel() {
        Kernel::Scalar => scalar_mul_slice(block, coeff),
        Kernel::Table => table_mul_slice(block, &MUL_TABLE[coeff.value() as usize]),
        Kernel::Simd => simd_mul_slice(block, coeff),
    }
}

/// Fused parity patch: `acc[k] ^= coeff · (old[k] ^ new[k])`.
///
/// This is the paper's `modify_{i,j}` (and §5.2(b) coded-delta) inner loop
/// computed without materializing the `old ⊕ new` difference block. Empty
/// slices are accepted and are a no-op.
///
/// # Panics
///
/// Panics if `acc`, `old`, and `new` do not all have the same length; the
/// message names the lengths and the coefficient.
pub fn mul_acc_xor(acc: &mut [u8], old: &[u8], new: &[u8], coeff: Gf256) {
    assert!(
        acc.len() == old.len() && acc.len() == new.len(),
        "mul_acc_xor: length mismatch (acc={}, old={}, new={}, coeff={:#04x})",
        acc.len(),
        old.len(),
        new.len(),
        coeff.value(),
    );
    if coeff.is_zero() {
        return;
    }
    if coeff == Gf256::ONE {
        xor_slice(acc, old);
        xor_slice(acc, new);
        return;
    }
    match active_kernel() {
        Kernel::Scalar => scalar_mul_acc_xor(acc, old, new, coeff),
        Kernel::Table => {
            table_mul_acc_xor(acc, old, new, &MUL_TABLE[coeff.value() as usize]);
        }
        Kernel::Simd => simd_mul_acc_xor(acc, old, new, coeff),
    }
}

/// XORs `src` into `dst`: `dst[k] ^= src[k]` (addition in GF(2⁸)).
///
/// Processed one `u64` word (8 bytes) at a time with a byte-wise tail;
/// empty slices are accepted and are a no-op.
///
/// # Panics
///
/// Panics if the slices have different lengths; the message names both
/// lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_slice: length mismatch (dst={}, src={})",
        dst.len(),
        src.len(),
    );
    let mut dst_words = dst.chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (d, s) in (&mut dst_words).zip(&mut src_words) {
        let x = u64::from_ne_bytes(d.as_ref().try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_words
        .into_remainder()
        .iter_mut()
        .zip(src_words.remainder())
    {
        *d ^= *s;
    }
}

// ---------------------------------------------------------------------------
// Scalar reference kernel (source of truth)
// ---------------------------------------------------------------------------

/// The seed implementation: per-byte log/exp with a zero guard.
fn scalar_mul_acc(acc: &mut [u8], block: &[u8], coeff: Gf256) {
    debug_assert!(!coeff.is_zero());
    let log_c = LOG[coeff.value() as usize] as usize;
    for (a, b) in acc.iter_mut().zip(block) {
        if *b != 0 {
            *a ^= EXP[log_c + LOG[*b as usize] as usize];
        }
    }
}

fn scalar_mul_slice(block: &mut [u8], coeff: Gf256) {
    debug_assert!(!coeff.is_zero());
    let log_c = LOG[coeff.value() as usize] as usize;
    for b in block.iter_mut() {
        if *b != 0 {
            *b = EXP[log_c + LOG[*b as usize] as usize];
        }
    }
}

fn scalar_mul_acc_xor(acc: &mut [u8], old: &[u8], new: &[u8], coeff: Gf256) {
    debug_assert!(!coeff.is_zero());
    let log_c = LOG[coeff.value() as usize] as usize;
    for (a, (o, n)) in acc.iter_mut().zip(old.iter().zip(new)) {
        let d = *o ^ *n;
        if d != 0 {
            *a ^= EXP[log_c + LOG[d as usize] as usize];
        }
    }
}

// ---------------------------------------------------------------------------
// Full-table kernel (portable fast path)
// ---------------------------------------------------------------------------

fn table_mul_acc(acc: &mut [u8], block: &[u8], table: &[u8; 256]) {
    for (a, b) in acc.iter_mut().zip(block) {
        *a ^= table[*b as usize];
    }
}

fn table_mul_slice(block: &mut [u8], table: &[u8; 256]) {
    for b in block.iter_mut() {
        *b = table[*b as usize];
    }
}

fn table_mul_acc_xor(acc: &mut [u8], old: &[u8], new: &[u8], table: &[u8; 256]) {
    for (a, (o, n)) in acc.iter_mut().zip(old.iter().zip(new)) {
        *a ^= table[(*o ^ *n) as usize];
    }
}

// ---------------------------------------------------------------------------
// SIMD kernel (nibble-split byte shuffles)
// ---------------------------------------------------------------------------

/// Splits a length into the 16-byte-aligned head and its start offset.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
fn simd_head(len: usize) -> usize {
    len & !15
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // arch kernels need `unsafe` feature-gated calls
fn simd_mul_acc(acc: &mut [u8], block: &[u8], coeff: Gf256) {
    let c = coeff.value() as usize;
    let head = simd_head(acc.len());
    // SAFETY: `simd_available()` verified SSSE3 support before this kernel
    // was selected, and the head slices are equal-length.
    unsafe { x86::mul_acc_ssse3(&mut acc[..head], &block[..head], &NIB_LO[c], &NIB_HI[c]) };
    table_mul_acc(&mut acc[head..], &block[head..], &MUL_TABLE[c]);
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // arch kernels need `unsafe` feature-gated calls
fn simd_mul_slice(block: &mut [u8], coeff: Gf256) {
    let c = coeff.value() as usize;
    let head = simd_head(block.len());
    // SAFETY: SSSE3 support was verified by `simd_available()`.
    unsafe { x86::mul_slice_ssse3(&mut block[..head], &NIB_LO[c], &NIB_HI[c]) };
    table_mul_slice(&mut block[head..], &MUL_TABLE[c]);
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // arch kernels need `unsafe` feature-gated calls
fn simd_mul_acc_xor(acc: &mut [u8], old: &[u8], new: &[u8], coeff: Gf256) {
    let c = coeff.value() as usize;
    let head = simd_head(acc.len());
    // SAFETY: SSSE3 support was verified by `simd_available()`, and the
    // head slices are equal-length.
    unsafe {
        x86::mul_acc_xor_ssse3(
            &mut acc[..head],
            &old[..head],
            &new[..head],
            &NIB_LO[c],
            &NIB_HI[c],
        );
    }
    table_mul_acc_xor(&mut acc[head..], &old[head..], &new[head..], &MUL_TABLE[c]);
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    //! SSSE3 nibble-shuffle kernels.
    //!
    //! `_mm_shuffle_epi8(table, idx)` performs 16 parallel 4-bit table
    //! lookups (indices with the high bit set produce 0, which cannot occur
    //! here because indices are masked to `0..16`). All loads/stores are
    //! unaligned (`loadu`/`storeu`) so callers never need aligned buffers.

    use std::arch::x86_64::*;

    /// `acc[k] ^= c·block[k]` over equal-length, 16-byte-multiple slices.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSSE3 is available, `acc.len() == block.len()`,
    /// and `acc.len() % 16 == 0`.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_acc_ssse3(
        acc: &mut [u8],
        block: &[u8],
        lo: &[u8; 16],
        hi: &[u8; 16],
    ) {
        debug_assert_eq!(acc.len(), block.len());
        debug_assert_eq!(acc.len() % 16, 0);
        // SAFETY: the caller contract guarantees SSSE3, equal slice lengths,
        // and a 16-multiple length, so every unaligned 16-byte load/store at
        // offset i < len stays inside the slices.
        unsafe {
            let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
            let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0F);
            let mut i = 0;
            while i < acc.len() {
                let b = _mm_loadu_si128(block.as_ptr().add(i).cast());
                let a = _mm_loadu_si128(acc.as_ptr().add(i).cast());
                let prod = nib_product(b, lo_t, hi_t, mask);
                _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), _mm_xor_si128(a, prod));
                i += 16;
            }
        }
    }

    /// `block[k] = c·block[k]` over a 16-byte-multiple slice.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSSE3 is available and `block.len() % 16 == 0`.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_slice_ssse3(block: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
        debug_assert_eq!(block.len() % 16, 0);
        // SAFETY: the caller contract guarantees SSSE3 and a 16-multiple
        // length, so every unaligned 16-byte load/store at offset i < len
        // stays inside the slice.
        unsafe {
            let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
            let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0F);
            let mut i = 0;
            while i < block.len() {
                let b = _mm_loadu_si128(block.as_ptr().add(i).cast());
                let prod = nib_product(b, lo_t, hi_t, mask);
                _mm_storeu_si128(block.as_mut_ptr().add(i).cast(), prod);
                i += 16;
            }
        }
    }

    /// `acc[k] ^= c·(old[k]^new[k])` over equal-length, 16-byte-multiple
    /// slices.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSSE3 is available, all three slices have equal
    /// length, and the length is a multiple of 16.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_acc_xor_ssse3(
        acc: &mut [u8],
        old: &[u8],
        new: &[u8],
        lo: &[u8; 16],
        hi: &[u8; 16],
    ) {
        debug_assert_eq!(acc.len(), old.len());
        debug_assert_eq!(acc.len(), new.len());
        debug_assert_eq!(acc.len() % 16, 0);
        // SAFETY: the caller contract guarantees SSSE3, three equal-length
        // slices, and a 16-multiple length, so every unaligned 16-byte
        // load/store at offset i < len stays inside the slices.
        unsafe {
            let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
            let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0F);
            let mut i = 0;
            while i < acc.len() {
                let o = _mm_loadu_si128(old.as_ptr().add(i).cast());
                let n = _mm_loadu_si128(new.as_ptr().add(i).cast());
                let a = _mm_loadu_si128(acc.as_ptr().add(i).cast());
                let prod = nib_product(_mm_xor_si128(o, n), lo_t, hi_t, mask);
                _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), _mm_xor_si128(a, prod));
                i += 16;
            }
        }
    }

    /// The nibble-split product of one 16-byte vector by the constant whose
    /// nibble tables are `lo_t`/`hi_t`.
    ///
    /// # Safety
    ///
    /// Requires SSSE3 (guaranteed by the `target_feature` on callers).
    #[target_feature(enable = "ssse3")]
    #[inline]
    unsafe fn nib_product(b: __m128i, lo_t: __m128i, hi_t: __m128i, mask: __m128i) -> __m128i {
        // Pure register arithmetic on values, no memory access: with the
        // `target_feature` attribute in effect the intrinsics themselves are
        // safe to call, so no inner `unsafe` block is required here.
        let b_lo = _mm_and_si128(b, mask);
        // Shift as 64-bit lanes (no 8-bit shift exists in SSE); the mask
        // removes the bits smeared across byte boundaries.
        let b_hi = _mm_and_si128(_mm_srli_epi64::<4>(b), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo_t, b_lo), _mm_shuffle_epi8(hi_t, b_hi))
    }
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // arch kernels need `unsafe` feature-gated calls
fn simd_mul_acc(acc: &mut [u8], block: &[u8], coeff: Gf256) {
    let c = coeff.value() as usize;
    let head = simd_head(acc.len());
    // SAFETY: NEON is part of the aarch64 baseline ISA; head slices are
    // equal-length.
    unsafe { neon::mul_acc_neon(&mut acc[..head], &block[..head], &NIB_LO[c], &NIB_HI[c]) };
    table_mul_acc(&mut acc[head..], &block[head..], &MUL_TABLE[c]);
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // arch kernels need `unsafe` feature-gated calls
fn simd_mul_slice(block: &mut [u8], coeff: Gf256) {
    let c = coeff.value() as usize;
    let head = simd_head(block.len());
    // SAFETY: NEON is part of the aarch64 baseline ISA.
    unsafe { neon::mul_slice_neon(&mut block[..head], &NIB_LO[c], &NIB_HI[c]) };
    table_mul_slice(&mut block[head..], &MUL_TABLE[c]);
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // arch kernels need `unsafe` feature-gated calls
fn simd_mul_acc_xor(acc: &mut [u8], old: &[u8], new: &[u8], coeff: Gf256) {
    let c = coeff.value() as usize;
    let head = simd_head(acc.len());
    // SAFETY: NEON is part of the aarch64 baseline ISA; head slices are
    // equal-length.
    unsafe {
        neon::mul_acc_xor_neon(
            &mut acc[..head],
            &old[..head],
            &new[..head],
            &NIB_LO[c],
            &NIB_HI[c],
        );
    }
    table_mul_acc_xor(&mut acc[head..], &old[head..], &new[head..], &MUL_TABLE[c]);
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    //! NEON nibble-shuffle kernels (`vqtbl1q_u8` = 16 parallel lookups).

    use std::arch::aarch64::*;

    /// `acc[k] ^= c·block[k]` over equal-length, 16-byte-multiple slices.
    ///
    /// # Safety
    ///
    /// Caller must ensure `acc.len() == block.len()` and
    /// `acc.len() % 16 == 0`. NEON is baseline on aarch64.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_acc_neon(acc: &mut [u8], block: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
        debug_assert_eq!(acc.len(), block.len());
        debug_assert_eq!(acc.len() % 16, 0);
        // SAFETY: the caller contract guarantees equal slice lengths and a
        // 16-multiple length; NEON is baseline on aarch64, so every 16-byte
        // load/store at offset i < len stays inside the slices.
        unsafe {
            let lo_t = vld1q_u8(lo.as_ptr());
            let hi_t = vld1q_u8(hi.as_ptr());
            let mask = vdupq_n_u8(0x0F);
            let mut i = 0;
            while i < acc.len() {
                let b = vld1q_u8(block.as_ptr().add(i));
                let a = vld1q_u8(acc.as_ptr().add(i));
                let prod = veorq_u8(
                    vqtbl1q_u8(lo_t, vandq_u8(b, mask)),
                    vqtbl1q_u8(hi_t, vshrq_n_u8::<4>(b)),
                );
                vst1q_u8(acc.as_mut_ptr().add(i), veorq_u8(a, prod));
                i += 16;
            }
        }
    }

    /// `block[k] = c·block[k]` over a 16-byte-multiple slice.
    ///
    /// # Safety
    ///
    /// Caller must ensure `block.len() % 16 == 0`. NEON is baseline on
    /// aarch64.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_slice_neon(block: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
        debug_assert_eq!(block.len() % 16, 0);
        // SAFETY: the caller contract guarantees a 16-multiple length; NEON
        // is baseline on aarch64, so every 16-byte load/store at offset
        // i < len stays inside the slice.
        unsafe {
            let lo_t = vld1q_u8(lo.as_ptr());
            let hi_t = vld1q_u8(hi.as_ptr());
            let mask = vdupq_n_u8(0x0F);
            let mut i = 0;
            while i < block.len() {
                let b = vld1q_u8(block.as_ptr().add(i));
                let prod = veorq_u8(
                    vqtbl1q_u8(lo_t, vandq_u8(b, mask)),
                    vqtbl1q_u8(hi_t, vshrq_n_u8::<4>(b)),
                );
                vst1q_u8(block.as_mut_ptr().add(i), prod);
                i += 16;
            }
        }
    }

    /// `acc[k] ^= c·(old[k]^new[k])` over equal-length, 16-byte-multiple
    /// slices.
    ///
    /// # Safety
    ///
    /// Caller must ensure all three slices have equal, 16-multiple length.
    /// NEON is baseline on aarch64.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_acc_xor_neon(
        acc: &mut [u8],
        old: &[u8],
        new: &[u8],
        lo: &[u8; 16],
        hi: &[u8; 16],
    ) {
        debug_assert_eq!(acc.len(), old.len());
        debug_assert_eq!(acc.len(), new.len());
        debug_assert_eq!(acc.len() % 16, 0);
        // SAFETY: the caller contract guarantees three equal-length slices
        // with a 16-multiple length; NEON is baseline on aarch64, so every
        // 16-byte load/store at offset i < len stays inside the slices.
        unsafe {
            let lo_t = vld1q_u8(lo.as_ptr());
            let hi_t = vld1q_u8(hi.as_ptr());
            let mask = vdupq_n_u8(0x0F);
            let mut i = 0;
            while i < acc.len() {
                let o = vld1q_u8(old.as_ptr().add(i));
                let n = vld1q_u8(new.as_ptr().add(i));
                let a = vld1q_u8(acc.as_ptr().add(i));
                let d = veorq_u8(o, n);
                let prod = veorq_u8(
                    vqtbl1q_u8(lo_t, vandq_u8(d, mask)),
                    vqtbl1q_u8(hi_t, vshrq_n_u8::<4>(d)),
                );
                vst1q_u8(acc.as_mut_ptr().add(i), veorq_u8(a, prod));
                i += 16;
            }
        }
    }
}

// On targets with neither SSSE3 nor NEON the Simd kernel is never selected,
// but the dispatch arms still need symbols to compile against.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_mul_acc(acc: &mut [u8], block: &[u8], coeff: Gf256) {
    table_mul_acc(acc, block, &MUL_TABLE[coeff.value() as usize]);
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_mul_slice(block: &mut [u8], coeff: Gf256) {
    table_mul_slice(block, &MUL_TABLE[coeff.value() as usize]);
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_mul_acc_xor(acc: &mut [u8], old: &[u8], new: &[u8], coeff: Gf256) {
    table_mul_acc_xor(acc, old, new, &MUL_TABLE[coeff.value() as usize]);
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::GROUP_ORDER;

    /// Deterministic pseudo-random bytes (xorshift-ish LCG).
    fn fill(buf: &mut [u8], mut seed: u64) {
        for b in buf.iter_mut() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (seed >> 33) as u8;
        }
    }

    /// Lengths covering empty, sub-vector, exact-vector, vector+tail, and
    /// multi-vector cases.
    const LENGTHS: [usize; 10] = [0, 1, 7, 15, 16, 17, 63, 64, 65, 300];

    #[test]
    fn mul_table_matches_field_mul() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    MUL_TABLE[a as usize][b as usize],
                    Gf256::new(a).mul(Gf256::new(b)).value(),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn nibble_tables_reassemble_products() {
        for c in 0..=255u8 {
            for x in 0..=255u8 {
                let lo = NIB_LO[c as usize][(x & 0x0F) as usize];
                let hi = NIB_HI[c as usize][(x >> 4) as usize];
                assert_eq!(lo ^ hi, MUL_TABLE[c as usize][x as usize], "c={c} x={x}");
            }
        }
    }

    /// Exhaustive coefficient sweep: table kernel ≡ scalar kernel on
    /// aligned, unaligned, and odd-length buffers.
    #[test]
    fn table_kernel_matches_scalar_all_coefficients() {
        let mut backing_block = vec![0u8; 303];
        let mut backing_acc = vec![0u8; 303];
        fill(&mut backing_block, 11);
        fill(&mut backing_acc, 23);
        for c in 1..=255u8 {
            let coeff = Gf256::new(c);
            for &len in &LENGTHS {
                for offset in [0usize, 1, 3] {
                    let block = &backing_block[offset..offset + len];
                    let mut scalar_acc = backing_acc[offset..offset + len].to_vec();
                    let mut table_acc = scalar_acc.clone();
                    scalar_mul_acc(&mut scalar_acc, block, coeff);
                    table_mul_acc(&mut table_acc, block, &MUL_TABLE[c as usize]);
                    assert_eq!(scalar_acc, table_acc, "mul_acc c={c} len={len} off={offset}");

                    let mut scalar_blk = block.to_vec();
                    let mut table_blk = block.to_vec();
                    scalar_mul_slice(&mut scalar_blk, coeff);
                    table_mul_slice(&mut table_blk, &MUL_TABLE[c as usize]);
                    assert_eq!(
                        scalar_blk, table_blk,
                        "mul_slice c={c} len={len} off={offset}"
                    );
                }
            }
        }
    }

    /// Exhaustive coefficient sweep: SIMD kernel ≡ scalar kernel on
    /// aligned, unaligned, and odd-length buffers (when SIMD exists).
    #[test]
    fn simd_kernel_matches_scalar_all_coefficients() {
        if !simd_available() {
            return; // the dispatch can never select the SIMD kernel here
        }
        let mut backing_block = vec![0u8; 303];
        let mut backing_acc = vec![0u8; 303];
        fill(&mut backing_block, 31);
        fill(&mut backing_acc, 47);
        for c in 1..=255u8 {
            let coeff = Gf256::new(c);
            for &len in &LENGTHS {
                for offset in [0usize, 1, 3] {
                    let block = &backing_block[offset..offset + len];
                    let mut scalar_acc = backing_acc[offset..offset + len].to_vec();
                    let mut simd_acc = scalar_acc.clone();
                    scalar_mul_acc(&mut scalar_acc, block, coeff);
                    simd_mul_acc(&mut simd_acc, block, coeff);
                    assert_eq!(scalar_acc, simd_acc, "mul_acc c={c} len={len} off={offset}");

                    let mut scalar_blk = block.to_vec();
                    let mut simd_blk = block.to_vec();
                    scalar_mul_slice(&mut scalar_blk, coeff);
                    simd_mul_slice(&mut simd_blk, coeff);
                    assert_eq!(
                        scalar_blk, simd_blk,
                        "mul_slice c={c} len={len} off={offset}"
                    );
                }
            }
        }
    }

    /// The fused patch kernel agrees with the composed operations on all
    /// kernels and coefficients (including 0 and 1 via the public entry).
    #[test]
    fn mul_acc_xor_matches_composition() {
        let mut old = vec![0u8; 130];
        let mut new = vec![0u8; 130];
        let mut acc0 = vec![0u8; 130];
        fill(&mut old, 3);
        fill(&mut new, 5);
        fill(&mut acc0, 7);
        for c in [0u8, 1, 2, 3, 29, 76, 142, 255] {
            let coeff = Gf256::new(c);
            for &len in &[0usize, 1, 16, 17, 64, 130] {
                // Reference: diff then mul_acc via the scalar kernel.
                let mut reference = acc0[..len].to_vec();
                let diff: Vec<u8> = old[..len].iter().zip(&new[..len]).map(|(a, b)| a ^ b).collect();
                if c == 1 {
                    xor_slice(&mut reference, &diff);
                } else if c != 0 {
                    scalar_mul_acc(&mut reference, &diff, coeff);
                }
                // Fused scalar.
                let mut fused_s = acc0[..len].to_vec();
                if c != 0 && c != 1 {
                    scalar_mul_acc_xor(&mut fused_s, &old[..len], &new[..len], coeff);
                } else {
                    mul_acc_xor(&mut fused_s, &old[..len], &new[..len], coeff);
                }
                assert_eq!(reference, fused_s, "scalar c={c} len={len}");
                // Fused table.
                let mut fused_t = acc0[..len].to_vec();
                if c != 0 && c != 1 {
                    table_mul_acc_xor(&mut fused_t, &old[..len], &new[..len], &MUL_TABLE[c as usize]);
                    assert_eq!(reference, fused_t, "table c={c} len={len}");
                }
                // Fused SIMD.
                if simd_available() && c != 0 && c != 1 {
                    let mut fused_v = acc0[..len].to_vec();
                    simd_mul_acc_xor(&mut fused_v, &old[..len], &new[..len], coeff);
                    assert_eq!(reference, fused_v, "simd c={c} len={len}");
                }
            }
        }
    }

    #[test]
    fn xor_slice_matches_bytewise() {
        // Large enough for every length in LENGTHS (max 300).
        let mut a = vec![0u8; 317];
        let mut b = vec![0u8; 317];
        fill(&mut a, 1);
        fill(&mut b, 2);
        for &len in &LENGTHS {
            let mut got = a[..len].to_vec();
            xor_slice(&mut got, &b[..len]);
            let want: Vec<u8> = a[..len].iter().zip(&b[..len]).map(|(x, y)| x ^ y).collect();
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    fn public_entry_zero_and_one_fast_paths() {
        let block = [1u8, 2, 3, 200];
        let mut acc = [9u8, 9, 9, 9];
        mul_acc(&mut acc, &block, Gf256::ZERO);
        assert_eq!(acc, [9, 9, 9, 9]);
        mul_acc(&mut acc, &block, Gf256::ONE);
        assert_eq!(acc, [8, 11, 10, 0xC1]);
        let mut blk = [1u8, 2, 3];
        mul_slice(&mut blk, Gf256::ONE);
        assert_eq!(blk, [1, 2, 3]);
        mul_slice(&mut blk, Gf256::ZERO);
        assert_eq!(blk, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "mul_acc: length mismatch")]
    fn mul_acc_length_mismatch_panics_with_context() {
        let mut acc = [0u8; 3];
        mul_acc(&mut acc, &[1, 2], Gf256::new(7));
    }

    #[test]
    #[should_panic(expected = "mul_acc_xor: length mismatch")]
    fn mul_acc_xor_length_mismatch_panics_with_context() {
        let mut acc = [0u8; 3];
        mul_acc_xor(&mut acc, &[1, 2, 3], &[4, 5], Gf256::new(7));
    }

    #[test]
    #[should_panic(expected = "xor_slice: length mismatch")]
    fn xor_slice_length_mismatch_panics_with_context() {
        let mut acc = [0u8; 3];
        xor_slice(&mut acc, &[1, 2]);
    }

    /// The override pins the kernel (serialized through a lock because the
    /// override is process-global and tests run concurrently).
    #[test]
    fn kernel_override_round_trip() {
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap();

        set_kernel_override(Some(Kernel::Scalar));
        assert_eq!(active_kernel(), Kernel::Scalar);
        set_kernel_override(Some(Kernel::Table));
        assert_eq!(active_kernel(), Kernel::Table);
        set_kernel_override(Some(Kernel::Simd));
        let k = active_kernel();
        if simd_available() {
            assert_eq!(k, Kernel::Simd);
        } else {
            assert_eq!(k, Kernel::Table);
        }
        set_kernel_override(None);
        let auto = active_kernel();
        assert!(auto == Kernel::Simd || auto == Kernel::Table);

        // With the override active the public ops still agree with scalar.
        let mut block = vec![0u8; 97];
        fill(&mut block, 77);
        let coeff = Gf256::new(0xB7);
        let mut via_auto = vec![0u8; 97];
        mul_acc(&mut via_auto, &block, coeff);
        set_kernel_override(Some(Kernel::Scalar));
        let mut via_scalar = vec![0u8; 97];
        mul_acc(&mut via_scalar, &block, coeff);
        set_kernel_override(None);
        assert_eq!(via_auto, via_scalar);
    }

    #[test]
    fn group_order_is_exposed_consistently() {
        // `GROUP_ORDER` is re-used by the scalar kernel's tables; a mismatch
        // would silently corrupt every product.
        assert_eq!(GROUP_ORDER, 255);
        assert_eq!(EXP[0], 1);
        assert_eq!(EXP[GROUP_ORDER], 1);
    }
}
