//! From-scratch deterministic erasure codes for decentralized virtual disks.
//!
//! This crate implements the erasure-coding substrate of *"A Decentralized
//! Algorithm for Erasure-Coded Virtual Disks"* (Frølund, Merchant, Saito,
//! Spence, Veitch — DSN 2004): the `encode`, `decode`, and `modify_{i,j}`
//! primitives of §2.1 / Figure 4, realized by three code families behind
//! one [`Codec`] type:
//!
//! * **Replication** (m = 1) — every block is a full copy,
//! * **XOR parity** (m = n − 1) — RAID-5 style single parity,
//! * **Reed–Solomon** — any m-of-n, built on GF(2⁸) Vandermonde matrices.
//!
//! All codes are *systematic*: encoded blocks `0..m` are the original data
//! blocks, `m..n` are parity, matching the paper's process layout where
//! processes `p_1..p_m` store data and `p_{m+1}..p_n` store parity.
//!
//! # Quick start
//!
//! ```
//! use fab_erasure::{Codec, Share};
//!
//! // A 5-of-8 code: survives any 3 lost blocks at 1.6x storage overhead.
//! let codec = Codec::new(5, 8)?;
//! let stripe: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 1024]).collect();
//! let blocks = codec.encode(&stripe)?;
//! assert_eq!(blocks.len(), 8);
//!
//! // Any 5 of the 8 blocks reconstruct the stripe.
//! let shares: Vec<Share<'_>> = [1usize, 3, 4, 6, 7]
//!     .iter()
//!     .map(|&i| Share::new(i, blocks[i].as_slice()))
//!     .collect();
//! assert_eq!(codec.decode(&shares)?, stripe);
//! # Ok::<(), fab_erasure::CodeError>(())
//! ```

// `unsafe` is denied crate-wide (workspace lint) rather than forbidden: the
// `kernel` module's SIMD paths carry narrowly-scoped, documented `unsafe`
// blocks behind runtime feature detection, with `#[allow]` at the smallest
// enclosing item. Everything else stays safe code.
#![warn(missing_docs, missing_debug_implementations)]

pub mod code;
pub mod gf256;
pub mod kernel;
pub mod matrix;
pub mod parity;
pub mod reed_solomon;
pub mod replication;

pub use code::{CodeError, CodeKind, CodeParams, Codec, Result, Share, MAX_N};
pub use gf256::Gf256;
pub use kernel::{active_kernel, set_kernel_override, simd_available, Kernel};
pub use matrix::Matrix;
pub use parity::ParityCode;
pub use reed_solomon::ReedSolomon;
pub use replication::Replication;

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact scenario of Figure 4: a 3-of-5 code; encode produces parity
    /// c1, c2; `modify_{3,1}` patches c1 after b3 changes; decode rebuilds
    /// the stripe from b1, b2, c1'.
    #[test]
    fn figure4_scenario() {
        let codec = Codec::new(3, 5).unwrap();
        let b1 = vec![0x11u8; 64];
        let b2 = vec![0x22u8; 64];
        let b3 = vec![0x33u8; 64];
        let blocks = codec.encode(&[&b1, &b2, &b3]).unwrap();
        let (c1, _c2) = (&blocks[3], &blocks[4]);

        let b3_new = vec![0x99u8; 64];
        // modify_{3,1}(b3, b3', c1): data index 2 (b3), parity index 3 (c1).
        let c1_new = codec.modify(2, 3, &b3, &b3_new, c1).unwrap();

        let decoded = codec
            .decode(&[
                Share::new(0, &b1),
                Share::new(1, &b2),
                Share::new(3, &c1_new),
            ])
            .unwrap();
        assert_eq!(decoded, vec![b1, b2, b3_new]);
    }

    #[test]
    fn reconstruct_parity_block_after_loss() {
        let codec = Codec::new(3, 6).unwrap();
        let stripe: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8 + 1; 32]).collect();
        let blocks = codec.encode(&stripe).unwrap();
        // Lose blocks 0 and 4; rebuild block 4 from {1, 2, 5}.
        let shares = [
            Share::new(1, blocks[1].as_slice()),
            Share::new(2, blocks[2].as_slice()),
            Share::new(5, blocks[5].as_slice()),
        ];
        let rebuilt = codec.reconstruct(4, &shares).unwrap();
        assert_eq!(rebuilt, blocks[4]);
        // Rebuilding a present block is a copy.
        let same = codec.reconstruct(1, &shares).unwrap();
        assert_eq!(same, blocks[1]);
    }

    #[test]
    fn all_kinds_round_trip() {
        for (m, n) in [(1, 3), (3, 4), (5, 8), (2, 5), (1, 1), (4, 4)] {
            let codec = Codec::new(m, n).unwrap();
            let stripe: Vec<Vec<u8>> = (0..m).map(|i| vec![(i * 17 + 3) as u8; 40]).collect();
            let blocks = codec.encode(&stripe).unwrap();
            assert_eq!(blocks.len(), n);
            // Decode from the *last* m blocks (maximally exercises parity).
            let shares: Vec<Share<'_>> = (n - m..n)
                .map(|i| Share::new(i, blocks[i].as_slice()))
                .collect();
            assert_eq!(codec.decode(&shares).unwrap(), stripe, "({m},{n})");
        }
    }

    #[test]
    fn coded_delta_round_trip_all_kinds() {
        for (m, n) in [(1, 3), (3, 4), (5, 8)] {
            let codec = Codec::new(m, n).unwrap();
            let stripe: Vec<Vec<u8>> = (0..m).map(|i| vec![(i + 1) as u8; 16]).collect();
            let blocks = codec.encode(&stripe).unwrap();
            let new_b0 = vec![0xF0u8; 16];
            let mut new_stripe = stripe.clone();
            new_stripe[0] = new_b0.clone();
            let reencoded = codec.encode(&new_stripe).unwrap();
            for j in m..n {
                let delta = codec.coded_delta(0, j, &stripe[0], &new_b0).unwrap();
                let patched = codec.apply_coded_delta(&blocks[j], &delta).unwrap();
                assert_eq!(patched, reencoded[j], "({m},{n}) j={j}");
            }
        }
    }
}
