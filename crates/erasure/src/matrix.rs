//! Dense matrices over GF(2⁸).
//!
//! The Reed–Solomon codec builds its systematic generator matrix and its
//! per-read decode matrices out of the operations defined here: Vandermonde
//! construction, multiplication, and Gauss–Jordan inversion. The matrices
//! involved are tiny (at most n × m with n ≤ 255), so a straightforward
//! row-major `Vec<Gf256>` is the right representation — no sparsity or
//! blocking is warranted.

use crate::gf256::Gf256;
use std::fmt;

/// A row-major dense matrix over GF(2⁸).
///
/// # Examples
///
/// ```
/// use fab_erasure::matrix::Matrix;
///
/// let id = Matrix::identity(3);
/// let v = Matrix::vandermonde(3, 3);
/// assert_eq!(&id * &v, v);
/// let inv = v.inverted().expect("vandermonde is invertible");
/// assert_eq!(&v * &inv, id);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Creates a zero matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the `size` × `size` identity matrix.
    pub fn identity(size: usize) -> Self {
        let mut m = Matrix::zero(size, size);
        for i in 0..size {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major list of byte rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut m = Matrix::zero(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            for (c, &v) in row.iter().enumerate() {
                m[(r, c)] = Gf256::new(v);
            }
        }
        m
    }

    /// Creates the `rows` × `cols` Vandermonde matrix `V[r][c] = r^c`.
    ///
    /// Every square submatrix formed from distinct rows of a Vandermonde
    /// matrix with distinct evaluation points is invertible, which is the
    /// property that lets an erasure code reconstruct from *any* m shares.
    ///
    /// # Panics
    ///
    /// Panics if `rows` exceeds 255 (GF(2⁸) has only 255 non-zero points
    /// plus zero) or either dimension is zero.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "at most 256 distinct evaluation points exist");
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = Gf256::new(r as u8).pow(c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[Gf256] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "must select at least one row");
        let mut m = Matrix::zero(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row index {src} out of bounds");
            let (r0, r1) = (dst * self.cols, src * self.cols);
            m.data[r0..r0 + self.cols].copy_from_slice(&self.data[r1..r1 + self.cols]);
        }
        m
    }

    /// Returns the submatrix of the first `rows` rows.
    pub fn top(&self, rows: usize) -> Matrix {
        self.select_rows(&(0..rows).collect::<Vec<_>>())
    }

    /// Multiplies `self` by `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner matrix dimensions must agree for multiplication"
        );
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out[(r, c)] + a * rhs[(k, c)];
                    out[(r, c)] = v;
                }
            }
        }
        out
    }

    /// Returns the inverse of a square matrix, or `None` if it is singular.
    ///
    /// Uses Gauss–Jordan elimination with partial pivoting (pivoting by any
    /// non-zero element — there is no rounding in a finite field, so any
    /// non-zero pivot is exact).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverted(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a non-zero pivot at or below the diagonal.
            let pivot = (col..n).find(|&r| !work[(r, col)].is_zero())?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = work[(col, col)].inv();
            work.scale_row(col, p);
            inv.scale_row(col, p);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work[(r, col)];
                if factor.is_zero() {
                    continue;
                }
                work.add_scaled_row(r, col, factor);
                inv.add_scaled_row(r, col, factor);
            }
        }
        Some(inv)
    }

    /// Returns `true` if this is the identity matrix.
    pub fn is_identity(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let want = if r == c { Gf256::ONE } else { Gf256::ZERO };
                if self[(r, c)] != want {
                    return false;
                }
            }
        }
        true
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..lo * self.cols + self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn scale_row(&mut self, r: usize, by: Gf256) {
        // Row-slice iteration: one bounds check per row, not per element,
        // and the table-backed `Gf256::mul` is branch-free.
        for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
            *v *= by;
        }
    }

    /// `row[dst] += factor * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: Gf256) {
        debug_assert_ne!(dst, src, "caller never eliminates a row with itself");
        let cols = self.cols;
        let (d0, s0) = (dst * cols, src * cols);
        // Split so the destination and source rows can be borrowed at once.
        let (dst_row, src_row) = if d0 < s0 {
            let (head, tail) = self.data.split_at_mut(s0);
            (&mut head[d0..d0 + cols], &tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(d0);
            (&mut tail[..cols], &head[s0..s0 + cols])
        };
        for (d, s) in dst_row.iter_mut().zip(src_row) {
            *d += factor * *s;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        &mut self.data[r * self.cols + c]
    }
}

impl std::ops::Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.multiply(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self[(r, c)].value())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let v = Matrix::vandermonde(4, 4);
        let id = Matrix::identity(4);
        assert_eq!(&id * &v, v);
        assert_eq!(&v * &id, v);
    }

    #[test]
    fn vandermonde_layout() {
        let v = Matrix::vandermonde(3, 3);
        // Row r is [1, r, r²].
        assert_eq!(v[(0, 0)], Gf256::ONE);
        assert_eq!(v[(2, 1)], Gf256::new(2));
        assert_eq!(v[(2, 2)], Gf256::new(2).pow(2));
        // 0⁰ = 1 by convention.
        assert_eq!(v[(0, 1)], Gf256::ZERO);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let id = Matrix::identity(5);
        assert_eq!(id.inverted().unwrap(), id);
    }

    #[test]
    fn inverse_round_trips() {
        for n in 1..=8 {
            let v = Matrix::vandermonde(n, n);
            let inv = v.inverted().expect("square vandermonde is invertible");
            assert!((&v * &inv).is_identity(), "n={n}");
            assert!((&inv * &v).is_identity(), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        // Two identical rows.
        let m = Matrix::from_rows(&[&[1, 2], &[1, 2]]);
        assert!(m.inverted().is_none());
        // A zero row.
        let z = Matrix::from_rows(&[&[0, 0], &[3, 4]]);
        assert!(z.inverted().is_none());
    }

    #[test]
    fn select_rows_picks_in_order() {
        let v = Matrix::vandermonde(5, 3);
        let s = v.select_rows(&[4, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
    }

    #[test]
    fn any_square_subset_of_vandermonde_rows_is_invertible() {
        // The decodability property underpinning m-of-n codes.
        let v = Matrix::vandermonde(8, 5);
        // A few representative 5-subsets of the 8 rows.
        let subsets: [&[usize]; 6] = [
            &[0, 1, 2, 3, 4],
            &[3, 4, 5, 6, 7],
            &[0, 2, 4, 6, 7],
            &[1, 3, 5, 6, 7],
            &[0, 1, 5, 6, 7],
            &[0, 4, 5, 6, 7],
        ];
        for subset in subsets {
            let sub = v.select_rows(subset);
            assert!(sub.inverted().is_some(), "subset {subset:?}");
        }
    }

    #[test]
    fn multiply_dimensions() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(3, 4);
        let c = &a * &b;
        assert_eq!((c.rows(), c.cols()), (2, 4));
    }

    #[test]
    #[should_panic(expected = "inner matrix dimensions")]
    fn multiply_dimension_mismatch_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn multiplication_is_associative() {
        let a = Matrix::vandermonde(3, 3);
        let b = Matrix::vandermonde(3, 3).inverted().unwrap();
        let c = Matrix::from_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]]);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(m[(0, 0)].value(), 1);
        assert_eq!(m[(0, 1)].value(), 2);
        assert_eq!(m[(1, 0)].value(), 3);
        assert_eq!(m[(1, 1)].value(), 4);
    }

    #[test]
    fn top_takes_prefix() {
        let v = Matrix::vandermonde(6, 2);
        let t = v.top(2);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.row(0), v.row(0));
        assert_eq!(t.row(1), v.row(1));
    }

    #[test]
    fn debug_output_is_nonempty() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
