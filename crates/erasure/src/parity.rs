//! Single-parity XOR codes (the RAID-5 layout of the paper's §1, footnote 1:
//! parity code with m = n − 1).
//!
//! The single parity block is the XOR of the m data blocks. Any one missing
//! block — data or parity — can be rebuilt by XOR-ing the surviving n − 1.
//! This is the cheapest member of the m-of-n family and the one the paper's
//! RAID-5 comparisons refer to. All XOR work goes through the word-wide
//! [`xor_slice`](crate::kernel::xor_slice) kernel.

use crate::code::{fill_from, fill_zeroed, CodeError, CodeParams, Result, Share};
use crate::kernel::xor_slice;

/// An (n−1)-of-n XOR parity codec.
#[derive(Debug, Clone)]
pub struct ParityCode {
    params: CodeParams,
}

impl ParityCode {
    /// Creates a parity codec with m = n − 1.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `n < 2` or `n > 255`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(CodeError::InvalidParams {
                m: n.saturating_sub(1),
                n,
            });
        }
        Ok(ParityCode {
            params: CodeParams::new(n - 1, n)?,
        })
    }

    /// The validated code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Encodes the stripe into `out` (length n, blocks reused in place).
    pub(crate) fn encode_into(&self, stripe: &[&[u8]], out: &mut [Vec<u8>]) {
        debug_assert_eq!(stripe.len(), self.params.m());
        debug_assert_eq!(out.len(), self.params.n());
        let len = stripe[0].len();
        // `zip` stops after the m data blocks, leaving the parity slot.
        for (buf, block) in out.iter_mut().zip(stripe) {
            fill_from(buf, block);
        }
        let parity = out.last_mut().expect("n ≥ 2 blocks");
        fill_zeroed(parity, len);
        for block in stripe {
            xor_slice(parity, block);
        }
    }

    /// Decodes the m data blocks into `out` (length m, blocks reused in
    /// place) from exactly m validated shares.
    pub(crate) fn decode_into(&self, shares: &[Share<'_>], out: &mut [Vec<u8>]) {
        let m = self.params.m();
        debug_assert_eq!(shares.len(), m);
        debug_assert_eq!(out.len(), m);
        // Shares arrive sorted by index (Codec::decode guarantees it). If the
        // parity block is absent, the shares are exactly the data blocks.
        if shares.iter().all(|s| s.index < m) {
            for (buf, s) in out.iter_mut().zip(shares) {
                fill_from(buf, s.data);
            }
            return;
        }
        // Exactly one data block is missing; rebuild it by XOR.
        let missing = (0..m)
            .find(|i| !shares.iter().any(|s| s.index == *i))
            .expect("parity share present implies one data index missing");
        let len = shares[0].data.len();
        for (i, buf) in out.iter_mut().enumerate() {
            if i == missing {
                fill_zeroed(buf, len);
                for s in shares {
                    xor_slice(buf, s.data);
                }
            } else {
                let s = shares
                    .iter()
                    .find(|s| s.index == i)
                    .expect("non-missing data share present");
                fill_from(buf, s.data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Codec;

    fn refs(blocks: &[Vec<u8>]) -> Vec<&[u8]> {
        blocks.iter().map(std::vec::Vec::as_slice).collect()
    }

    fn encode(c: &ParityCode, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); c.params().n()];
        c.encode_into(&refs(data), &mut out);
        out
    }

    fn decode(c: &ParityCode, shares: &[Share<'_>]) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); c.params().m()];
        c.decode_into(shares, &mut out);
        out
    }

    #[test]
    fn construction_bounds() {
        assert!(ParityCode::new(0).is_err());
        assert!(ParityCode::new(1).is_err());
        assert!(ParityCode::new(2).is_ok());
        assert_eq!(ParityCode::new(5).unwrap().params().m(), 4);
    }

    #[test]
    fn parity_is_xor_of_data() {
        let c = ParityCode::new(4).unwrap();
        let data = vec![vec![1u8, 2], vec![4u8, 8], vec![16u8, 32]];
        let blocks = encode(&c, &data);
        assert_eq!(blocks[3], vec![1 ^ 4 ^ 16, 2 ^ 8 ^ 32]);
    }

    #[test]
    fn decode_with_all_data_present() {
        let c = ParityCode::new(4).unwrap();
        let data = vec![vec![9u8], vec![8u8], vec![7u8]];
        let blocks = encode(&c, &data);
        let shares = [
            Share::new(0, &blocks[0]),
            Share::new(1, &blocks[1]),
            Share::new(2, &blocks[2]),
        ];
        assert_eq!(decode(&c, &shares), data);
    }

    #[test]
    fn decode_recovers_each_missing_data_block() {
        let c = ParityCode::new(4).unwrap();
        let data = vec![vec![0xAAu8, 1], vec![0xBBu8, 2], vec![0xCCu8, 3]];
        let blocks = encode(&c, &data);
        for missing in 0..3 {
            let shares: Vec<Share<'_>> = (0..4)
                .filter(|&i| i != missing)
                .map(|i| Share::new(i, blocks[i].as_slice()))
                .collect();
            assert_eq!(decode(&c, &shares), data, "missing={missing}");
        }
    }

    #[test]
    fn modify_matches_reencode() {
        let codec = Codec::parity(5).unwrap();
        let data = vec![vec![1u8, 1], vec![2u8, 2], vec![3u8, 3], vec![4u8, 4]];
        let blocks = codec.encode(&data).unwrap();
        let new_b1 = vec![0x77u8, 0x66];
        let mut new_data = data.clone();
        new_data[1] = new_b1.clone();
        let reencoded = codec.encode(&new_data).unwrap();
        let patched = codec.modify(1, 4, &data[1], &new_b1, &blocks[4]).unwrap();
        assert_eq!(patched, reencoded[4]);
    }
}
