//! Single-parity XOR codes (the RAID-5 layout of the paper's §1, footnote 1:
//! parity code with m = n − 1).
//!
//! The single parity block is the XOR of the m data blocks. Any one missing
//! block — data or parity — can be rebuilt by XOR-ing the surviving n − 1.
//! This is the cheapest member of the m-of-n family and the one the paper's
//! RAID-5 comparisons refer to.

use crate::code::{CodeError, CodeParams, Result, Share};
use crate::gf256::xor_slice;

/// An (n−1)-of-n XOR parity codec.
#[derive(Debug, Clone)]
pub struct ParityCode {
    params: CodeParams,
}

impl ParityCode {
    /// Creates a parity codec with m = n − 1.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `n < 2` or `n > 255`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(CodeError::InvalidParams {
                m: n.saturating_sub(1),
                n,
            });
        }
        Ok(ParityCode {
            params: CodeParams::new(n - 1, n)?,
        })
    }

    /// The validated code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    pub(crate) fn encode(&self, stripe: &[&[u8]]) -> Vec<Vec<u8>> {
        let len = stripe[0].len();
        let mut out: Vec<Vec<u8>> = stripe.iter().map(|b| b.to_vec()).collect();
        let mut parity = vec![0u8; len];
        for block in stripe {
            xor_slice(&mut parity, block);
        }
        out.push(parity);
        out
    }

    pub(crate) fn decode(&self, shares: &[Share<'_>]) -> Vec<Vec<u8>> {
        let m = self.params.m();
        debug_assert_eq!(shares.len(), m);
        // Shares arrive sorted by index (Codec::decode guarantees it). If the
        // parity block is absent, the shares are exactly the data blocks.
        if shares.iter().all(|s| s.index < m) {
            return shares.iter().map(|s| s.data.to_vec()).collect();
        }
        // Exactly one data block is missing; rebuild it by XOR.
        let missing = (0..m)
            .find(|i| !shares.iter().any(|s| s.index == *i))
            .expect("parity share present implies one data index missing");
        let len = shares[0].data.len();
        let mut rebuilt = vec![0u8; len];
        for s in shares {
            xor_slice(&mut rebuilt, s.data);
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(m);
        for i in 0..m {
            if i == missing {
                out.push(rebuilt.clone());
            } else {
                let s = shares
                    .iter()
                    .find(|s| s.index == i)
                    .expect("non-missing data share present");
                out.push(s.data.to_vec());
            }
        }
        out
    }

    pub(crate) fn modify(&self, old_data: &[u8], new_data: &[u8], old_parity: &[u8]) -> Vec<u8> {
        // p' = p ⊕ b ⊕ b'
        old_parity
            .iter()
            .zip(old_data)
            .zip(new_data)
            .map(|((p, a), b)| p ^ a ^ b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(blocks: &[Vec<u8>]) -> Vec<&[u8]> {
        blocks.iter().map(|b| b.as_slice()).collect()
    }

    #[test]
    fn construction_bounds() {
        assert!(ParityCode::new(0).is_err());
        assert!(ParityCode::new(1).is_err());
        assert!(ParityCode::new(2).is_ok());
        assert_eq!(ParityCode::new(5).unwrap().params().m(), 4);
    }

    #[test]
    fn parity_is_xor_of_data() {
        let c = ParityCode::new(4).unwrap();
        let data = vec![vec![1u8, 2], vec![4u8, 8], vec![16u8, 32]];
        let blocks = c.encode(&refs(&data));
        assert_eq!(blocks[3], vec![1 ^ 4 ^ 16, 2 ^ 8 ^ 32]);
    }

    #[test]
    fn decode_with_all_data_present() {
        let c = ParityCode::new(4).unwrap();
        let data = vec![vec![9u8], vec![8u8], vec![7u8]];
        let blocks = c.encode(&refs(&data));
        let shares = [
            Share::new(0, &blocks[0]),
            Share::new(1, &blocks[1]),
            Share::new(2, &blocks[2]),
        ];
        assert_eq!(c.decode(&shares), data);
    }

    #[test]
    fn decode_recovers_each_missing_data_block() {
        let c = ParityCode::new(4).unwrap();
        let data = vec![vec![0xAAu8, 1], vec![0xBBu8, 2], vec![0xCCu8, 3]];
        let blocks = c.encode(&refs(&data));
        for missing in 0..3 {
            let shares: Vec<Share<'_>> = (0..4)
                .filter(|&i| i != missing)
                .map(|i| Share::new(i, blocks[i].as_slice()))
                .collect();
            assert_eq!(c.decode(&shares), data, "missing={missing}");
        }
    }

    #[test]
    fn modify_matches_reencode() {
        let c = ParityCode::new(5).unwrap();
        let data = vec![vec![1u8, 1], vec![2u8, 2], vec![3u8, 3], vec![4u8, 4]];
        let blocks = c.encode(&refs(&data));
        let new_b1 = vec![0x77u8, 0x66];
        let mut new_data = data.clone();
        new_data[1] = new_b1.clone();
        let reencoded = c.encode(&refs(&new_data));
        let patched = c.modify(&data[1], &new_b1, &blocks[4]);
        assert_eq!(patched, reencoded[4]);
    }
}
