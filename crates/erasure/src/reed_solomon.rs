//! Systematic Reed–Solomon codes over GF(2⁸).
//!
//! The generator matrix is derived from an n × m Vandermonde matrix `V` as
//! `G = V · (V_top)⁻¹` where `V_top` is the top m × m square of `V`. This
//! makes the code *systematic* (the top m rows of `G` are the identity, so
//! encoded blocks 0..m are the original data) while preserving the
//! Vandermonde property that **any** m rows of `G` form an invertible
//! matrix — which is exactly the paper's `decode` requirement: the stripe
//! can be rebuilt from any m of the n blocks.
//!
//! The primitive operations are the `_into` variants, which write into
//! caller-provided buffers; the allocating fronts on
//! [`Codec`](crate::Codec) wrap them. All bulk byte work goes through the
//! [`kernel`](crate::kernel) layer (SIMD where available).

use crate::code::{fill_from, fill_zeroed, CodeParams, Share};
use crate::gf256::Gf256;
use crate::kernel::mul_acc;
use crate::matrix::Matrix;

/// A systematic m-of-n Reed–Solomon codec.
///
/// Constructed through [`Codec::reed_solomon`](crate::Codec::reed_solomon)
/// or [`Codec::new`](crate::Codec::new); the inner operations assume inputs
/// already validated by the [`Codec`](crate::Codec) front end.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    params: CodeParams,
    /// n × m systematic generator matrix (top m rows are the identity).
    generator: Matrix,
}

impl ReedSolomon {
    /// Builds the systematic generator for (m, n).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`](crate::CodeError::InvalidParams)
    /// for invalid (m, n).
    pub fn new(m: usize, n: usize) -> crate::code::Result<Self> {
        let params = CodeParams::new(m, n)?;
        let vandermonde = Matrix::vandermonde(n, m);
        let top_inv = vandermonde
            .top(m)
            .inverted()
            .expect("square Vandermonde with distinct points is invertible");
        let generator = &vandermonde * &top_inv;
        debug_assert!(generator.top(m).is_identity());
        Ok(ReedSolomon { params, generator })
    }

    /// The validated code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The generator coefficient `g_{j,i}`: the contribution of data block
    /// `i` to encoded block `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ n` or `i ≥ m`.
    pub fn coefficient(&self, j: usize, i: usize) -> Gf256 {
        assert!(j < self.params.n(), "row out of range");
        assert!(i < self.params.m(), "column out of range");
        self.generator[(j, i)]
    }

    /// Encodes the stripe into `out` (length n, blocks reused in place).
    pub(crate) fn encode_into(&self, stripe: &[&[u8]], out: &mut [Vec<u8>]) {
        let (m, n) = (self.params.m(), self.params.n());
        debug_assert_eq!(stripe.len(), m);
        debug_assert_eq!(out.len(), n);
        let len = stripe[0].len();
        for (buf, block) in out.iter_mut().zip(stripe) {
            fill_from(buf, block);
        }
        for (j, buf) in out.iter_mut().enumerate().take(n).skip(m) {
            fill_zeroed(buf, len);
            for (i, block) in stripe.iter().enumerate() {
                mul_acc(buf, block, self.generator[(j, i)]);
            }
        }
    }

    /// Decodes the m data blocks into `out` (length m, blocks reused in
    /// place) from exactly m validated shares.
    pub(crate) fn decode_into(&self, shares: &[Share<'_>], out: &mut [Vec<u8>]) {
        let m = self.params.m();
        debug_assert_eq!(shares.len(), m);
        debug_assert_eq!(out.len(), m);
        // Fast path: all m shares are data blocks already.
        if shares.iter().all(|s| s.index < m) {
            for (buf, s) in out.iter_mut().zip(shares) {
                fill_from(buf, s.data);
            }
            return;
        }
        let indices: Vec<usize> = shares.iter().map(|s| s.index).collect();
        let sub = self.generator.select_rows(&indices);
        let inv = sub
            .inverted()
            .expect("any m rows of a systematic Vandermonde generator are independent");
        let len = shares[0].data.len();
        for (r, buf) in out.iter_mut().enumerate() {
            fill_zeroed(buf, len);
            for (c, share) in shares.iter().enumerate() {
                mul_acc(buf, share.data, inv[(r, c)]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Share;
    use crate::Codec;

    fn stripe(m: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| {
                (0..len)
                    .map(|k| (seed as usize + i * 31 + k * 7) as u8)
                    .collect()
            })
            .collect()
    }

    fn refs(blocks: &[Vec<u8>]) -> Vec<&[u8]> {
        blocks.iter().map(std::vec::Vec::as_slice).collect()
    }

    /// Test-side allocating wrappers over the `_into` primitives.
    fn encode(rs: &ReedSolomon, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); rs.params().n()];
        rs.encode_into(&refs(data), &mut out);
        out
    }

    fn decode(rs: &ReedSolomon, shares: &[Share<'_>]) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); rs.params().m()];
        rs.decode_into(shares, &mut out);
        out
    }

    #[test]
    fn generator_is_systematic() {
        let rs = ReedSolomon::new(5, 8).unwrap();
        for i in 0..5 {
            for k in 0..5 {
                let want = if i == k { 1 } else { 0 };
                assert_eq!(rs.coefficient(i, k).value(), want);
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // comparing parallel vectors by index
    fn encode_prefix_is_data() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let data = stripe(3, 16, 1);
        let blocks = encode(&rs, &data);
        assert_eq!(blocks.len(), 6);
        for i in 0..3 {
            assert_eq!(blocks[i], data[i]);
        }
    }

    #[test]
    fn decode_from_every_m_subset() {
        let (m, n) = (3, 6);
        let rs = ReedSolomon::new(m, n).unwrap();
        let data = stripe(m, 8, 42);
        let blocks = encode(&rs, &data);
        // All C(6,3) = 20 subsets.
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    let shares = [
                        Share::new(a, &blocks[a]),
                        Share::new(b, &blocks[b]),
                        Share::new(c, &blocks[c]),
                    ];
                    let out = decode(&rs, &shares);
                    assert_eq!(out, data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn decode_is_order_insensitive_via_codec() {
        // The Codec front end sorts shares; raw decode handles any order too.
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = stripe(2, 4, 9);
        let blocks = encode(&rs, &data);
        let out = decode(&rs, &[Share::new(3, &blocks[3]), Share::new(0, &blocks[0])]);
        assert_eq!(out, data);
    }

    #[test]
    fn encode_into_reuses_capacity_without_reallocating() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let data = stripe(3, 64, 5);
        let mut out = vec![Vec::new(); 6];
        rs.encode_into(&refs(&data), &mut out);
        let ptrs: Vec<*const u8> = out.iter().map(std::vec::Vec::as_ptr).collect();
        // Second encode at the same block size must not move any buffer.
        let data2 = stripe(3, 64, 99);
        rs.encode_into(&refs(&data2), &mut out);
        let ptrs2: Vec<*const u8> = out.iter().map(std::vec::Vec::as_ptr).collect();
        assert_eq!(ptrs, ptrs2, "steady-state encode_into reallocated");
        // And the contents equal a fresh encode.
        assert_eq!(out, encode(&rs, &data2));
    }

    #[test]
    fn modify_matches_full_reencode() {
        let (m, n) = (5, 8);
        let codec = Codec::reed_solomon(m, n).unwrap();
        let data = stripe(m, 8, 7);
        let blocks = codec.encode(&data).unwrap();
        for i in 0..m {
            let mut new_data = data.clone();
            new_data[i] = vec![0xAB; 8];
            let reencoded = codec.encode(&new_data).unwrap();
            for j in m..n {
                let patched = codec
                    .modify(i, j, &data[i], &new_data[i], &blocks[j])
                    .unwrap();
                assert_eq!(patched, reencoded[j], "i={i} j={j}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j is also the parity index
    fn coded_delta_equals_modify() {
        let (m, n) = (4, 7);
        let codec = Codec::reed_solomon(m, n).unwrap();
        let data = stripe(m, 16, 3);
        let blocks = codec.encode(&data).unwrap();
        let new_b2 = vec![0x5A; 16];
        for j in m..n {
            let delta = codec.coded_delta(2, j, &data[2], &new_b2).unwrap();
            let applied: Vec<u8> = blocks[j].iter().zip(&delta).map(|(a, b)| a ^ b).collect();
            let direct = codec.modify(2, j, &data[2], &new_b2, &blocks[j]).unwrap();
            assert_eq!(applied, direct, "j={j}");
        }
    }

    #[test]
    fn m_equals_n_is_pure_striping() {
        let rs = ReedSolomon::new(3, 3).unwrap();
        let data = stripe(3, 4, 1);
        let blocks = encode(&rs, &data);
        assert_eq!(blocks, data);
        let shares: Vec<Share<'_>> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| Share::new(i, b))
            .collect();
        assert_eq!(decode(&rs, &shares), data);
    }

    #[test]
    fn empty_blocks_are_fine() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = vec![vec![], vec![]];
        let blocks = encode(&rs, &data);
        assert!(blocks.iter().all(std::vec::Vec::is_empty));
    }

    #[test]
    fn large_m_n() {
        let rs = ReedSolomon::new(20, 30).unwrap();
        let data = stripe(20, 4, 11);
        let blocks = encode(&rs, &data);
        // Decode from the last 20 blocks (10 data lost).
        let shares: Vec<Share<'_>> = (10..30).map(|i| Share::new(i, &blocks[i])).collect();
        assert_eq!(decode(&rs, &shares), data);
    }
}
