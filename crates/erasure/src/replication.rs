//! n-way replication as the m = 1 special case of erasure coding.
//!
//! Figure 5 of the paper analyses the protocol "where parity blocks are
//! copies of the stripe block (i.e., replication as a special case of
//! erasure coding)". Treating replication as a codec lets the same storage
//! register run replicated or erasure-coded without special cases, and
//! gives the LS97 comparison a common footing.

use crate::code::{fill_from, CodeError, CodeParams, Result, Share};

/// A 1-of-n replication codec: every encoded block is a copy of the datum.
#[derive(Debug, Clone)]
pub struct Replication {
    params: CodeParams,
}

impl Replication {
    /// Creates an n-way replication codec.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `n` is 0 or exceeds 255.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(CodeError::InvalidParams { m: 1, n });
        }
        Ok(Replication {
            params: CodeParams::new(1, n)?,
        })
    }

    /// The validated code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Encodes the stripe into `out` (length n, blocks reused in place).
    pub(crate) fn encode_into(&self, stripe: &[&[u8]], out: &mut [Vec<u8>]) {
        debug_assert_eq!(stripe.len(), 1);
        debug_assert_eq!(out.len(), self.params.n());
        for buf in out.iter_mut() {
            fill_from(buf, stripe[0]);
        }
    }

    /// Decodes the single data block into `out` (length 1, reused in
    /// place).
    pub(crate) fn decode_into(&self, shares: &[Share<'_>], out: &mut [Vec<u8>]) {
        debug_assert_eq!(shares.len(), 1);
        debug_assert_eq!(out.len(), 1);
        fill_from(&mut out[0], shares[0].data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Codec;

    fn encode(c: &Replication, datum: &[u8]) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new(); c.params().n()];
        c.encode_into(&[datum], &mut out);
        out
    }

    #[test]
    fn construction_bounds() {
        assert!(Replication::new(0).is_err());
        assert!(Replication::new(1).is_ok());
        assert!(Replication::new(255).is_ok());
        assert!(Replication::new(256).is_err());
    }

    #[test]
    fn encode_makes_n_copies() {
        let c = Replication::new(3).unwrap();
        let blocks = encode(&c, b"hello");
        assert_eq!(blocks, vec![b"hello".to_vec(); 3]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index also names the share
    fn any_single_share_decodes() {
        let c = Replication::new(3).unwrap();
        let blocks = encode(&c, b"data");
        for i in 0..3 {
            let mut out = vec![Vec::new()];
            c.decode_into(&[Share::new(i, &blocks[i])], &mut out);
            assert_eq!(out, vec![b"data".to_vec()]);
        }
    }

    #[test]
    fn modify_returns_new_value() {
        let codec = Codec::replication(2).unwrap();
        let patched = codec.modify(0, 1, b"old", b"new", b"old").unwrap();
        assert_eq!(patched, b"new".to_vec());
    }
}
