//! n-way replication as the m = 1 special case of erasure coding.
//!
//! Figure 5 of the paper analyses the protocol "where parity blocks are
//! copies of the stripe block (i.e., replication as a special case of
//! erasure coding)". Treating replication as a codec lets the same storage
//! register run replicated or erasure-coded without special cases, and
//! gives the LS97 comparison a common footing.

use crate::code::{CodeError, CodeParams, Result, Share};

/// A 1-of-n replication codec: every encoded block is a copy of the datum.
#[derive(Debug, Clone)]
pub struct Replication {
    params: CodeParams,
}

impl Replication {
    /// Creates an n-way replication codec.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `n` is 0 or exceeds 255.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(CodeError::InvalidParams { m: 1, n });
        }
        Ok(Replication {
            params: CodeParams::new(1, n)?,
        })
    }

    /// The validated code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    pub(crate) fn encode(&self, stripe: &[&[u8]]) -> Vec<Vec<u8>> {
        debug_assert_eq!(stripe.len(), 1);
        (0..self.params.n()).map(|_| stripe[0].to_vec()).collect()
    }

    pub(crate) fn decode(&self, shares: &[Share<'_>]) -> Vec<Vec<u8>> {
        debug_assert_eq!(shares.len(), 1);
        vec![shares[0].data.to_vec()]
    }

    pub(crate) fn modify(&self, new_data: &[u8]) -> Vec<u8> {
        new_data.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Replication::new(0).is_err());
        assert!(Replication::new(1).is_ok());
        assert!(Replication::new(255).is_ok());
        assert!(Replication::new(256).is_err());
    }

    #[test]
    fn encode_makes_n_copies() {
        let c = Replication::new(3).unwrap();
        let blocks = c.encode(&[b"hello"]);
        assert_eq!(blocks, vec![b"hello".to_vec(); 3]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index also names the share
    fn any_single_share_decodes() {
        let c = Replication::new(3).unwrap();
        let blocks = c.encode(&[b"data"]);
        for i in 0..3 {
            let out = c.decode(&[Share::new(i, &blocks[i])]);
            assert_eq!(out, vec![b"data".to_vec()]);
        }
    }

    #[test]
    fn modify_returns_new_value() {
        let c = Replication::new(2).unwrap();
        assert_eq!(c.modify(b"new"), b"new".to_vec());
    }
}
