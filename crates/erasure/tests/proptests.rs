//! Property-based tests for the erasure-coding substrate.
//!
//! These check the algebraic laws the storage-register protocol depends on:
//! `decode ∘ encode = id` for *any* m-subset of shares, `modify` agreeing
//! with full re-encoding, and delta updates agreeing with `modify` — for
//! randomized parameters, block contents, and share subsets.

#![allow(clippy::needless_range_loop)] // indices double as share ids

use fab_erasure::{Codec, Gf256, Matrix, Share};
use proptest::prelude::*;

/// Strategy producing valid (m, n) pairs small enough to enumerate subsets.
fn params() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=8).prop_flat_map(|m| (Just(m), m..=(m + 6).min(12)))
}

/// The (m, n) grid the zero-copy equivalence tests must cover, spanning
/// replication (m = 1), small parity-style codes, and wide Reed-Solomon.
const INTO_PARAMS: [(usize, usize); 4] = [(1, 3), (3, 4), (5, 8), (10, 14)];

/// Block sizes the zero-copy equivalence tests must cover: empty, single
/// byte, around the 64-byte SIMD/word boundaries, and a page.
const INTO_LENS: [usize; 6] = [0, 1, 63, 64, 65, 4096];

/// Strategy picking one (m, n) from the fixed grid plus a block size.
fn into_case() -> impl Strategy<Value = ((usize, usize), usize)> {
    (
        proptest::sample::select(&INTO_PARAMS[..]),
        proptest::sample::select(&INTO_LENS[..]),
    )
}

/// Deterministic stripe of `m` blocks of `len` bytes from a seed.
fn seeded_stripe(m: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut s = seed | 1;
    (0..m)
        .map(|_| {
            (0..len)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (s >> 56) as u8
                })
                .collect()
        })
        .collect()
}

/// Strategy producing a stripe of `m` equal-length random blocks.
fn stripe(m: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    (1usize..=64).prop_flat_map(move |len| {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), len), m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_inverts_encode_on_random_subset(
        (m, n) in params(),
        seed in any::<u64>(),
    ) {
        let codec = Codec::new(m, n).unwrap();
        let data: Vec<Vec<u8>> = (0..m)
            .map(|i| (0..24).map(|k| (seed as usize + i * 131 + k * 7) as u8).collect())
            .collect();
        let blocks = codec.encode(&data).unwrap();

        // Pick a pseudo-random m-subset of the n indices from the seed.
        let mut indices: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..indices.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            indices.swap(i, (s % (i as u64 + 1)) as usize);
        }
        indices.truncate(m);

        let shares: Vec<Share<'_>> =
            indices.iter().map(|&i| Share::new(i, blocks[i].as_slice())).collect();
        prop_assert_eq!(codec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn modify_agrees_with_reencode(
        (m, n) in params(),
        data in (1usize..=8).prop_flat_map(stripe),
        new_block in proptest::collection::vec(any::<u8>(), 1..=64),
        i_pick in any::<usize>(),
    ) {
        prop_assume!(data.len() == m);
        let codec = Codec::new(m, n).unwrap();
        let len = data[0].len();
        let mut new_block = new_block;
        new_block.resize(len, 0);
        let i = i_pick % m;

        let blocks = codec.encode(&data).unwrap();
        let mut new_data = data.clone();
        new_data[i] = new_block.clone();
        let reencoded = codec.encode(&new_data).unwrap();

        for j in m..n {
            let patched = codec.modify(i, j, &data[i], &new_block, &blocks[j]).unwrap();
            prop_assert_eq!(&patched, &reencoded[j], "i={} j={}", i, j);
        }
    }

    #[test]
    fn coded_delta_agrees_with_modify(
        (m, n) in params(),
        data in (1usize..=8).prop_flat_map(stripe),
        new_block in proptest::collection::vec(any::<u8>(), 1..=64),
        i_pick in any::<usize>(),
    ) {
        prop_assume!(data.len() == m);
        let codec = Codec::new(m, n).unwrap();
        let len = data[0].len();
        let mut new_block = new_block;
        new_block.resize(len, 0);
        let i = i_pick % m;
        let blocks = codec.encode(&data).unwrap();

        for j in m..n {
            let delta = codec.coded_delta(i, j, &data[i], &new_block).unwrap();
            let via_delta = codec.apply_coded_delta(&blocks[j], &delta).unwrap();
            let via_modify = codec.modify(i, j, &data[i], &new_block, &blocks[j]).unwrap();
            prop_assert_eq!(via_delta, via_modify);
        }
    }

    #[test]
    fn reconstruct_rebuilds_any_block(
        (m, n) in params(),
        seed in any::<u64>(),
        target_pick in any::<usize>(),
    ) {
        let codec = Codec::new(m, n).unwrap();
        let data: Vec<Vec<u8>> = (0..m)
            .map(|i| (0..16).map(|k| (seed as usize ^ (i * 251 + k * 13)) as u8).collect())
            .collect();
        let blocks = codec.encode(&data).unwrap();
        let target = target_pick % n;
        // Use the m shares at indices != target where possible.
        let shares: Vec<Share<'_>> = (0..n)
            .filter(|&i| i != target)
            .take(m)
            .map(|i| Share::new(i, blocks[i].as_slice()))
            .collect();
        prop_assume!(shares.len() == m);
        prop_assert_eq!(codec.reconstruct(target, &shares).unwrap(), blocks[target].clone());
    }

    #[test]
    fn encode_into_is_byte_identical_to_encode(
        ((m, n), len) in into_case(),
        seed in any::<u64>(),
    ) {
        let codec = Codec::new(m, n).unwrap();
        let data = seeded_stripe(m, len, seed);
        let expected = codec.encode(&data).unwrap();

        // Fresh buffers and dirty reused buffers must both converge on the
        // same bytes as the allocating path.
        let mut out = vec![Vec::new(); n];
        codec.encode_into(&data, &mut out).unwrap();
        prop_assert_eq!(&out, &expected);

        for buf in &mut out {
            buf.clear();
            buf.extend_from_slice(&[0xAB; 9]);
        }
        codec.encode_into(&data, &mut out).unwrap();
        prop_assert_eq!(&out, &expected);
    }

    #[test]
    fn decode_into_is_byte_identical_to_decode(
        ((m, n), len) in into_case(),
        seed in any::<u64>(),
    ) {
        let codec = Codec::new(m, n).unwrap();
        let data = seeded_stripe(m, len, seed);
        let blocks = codec.encode(&data).unwrap();

        // Pick a pseudo-random m-subset of share indices from the seed.
        let mut indices: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..indices.len()).rev() {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            indices.swap(i, (s % (i as u64 + 1)) as usize);
        }
        indices.truncate(m);

        let shares: Vec<Share<'_>> =
            indices.iter().map(|&i| Share::new(i, blocks[i].as_slice())).collect();
        let expected = codec.decode(&shares).unwrap();
        prop_assert_eq!(&expected, &data);

        let mut out = vec![Vec::new(); m];
        codec.decode_into(&shares, &mut out).unwrap();
        prop_assert_eq!(&out, &expected);

        for buf in &mut out {
            buf.clear();
            buf.extend_from_slice(&[0xCD; 17]);
        }
        codec.decode_into(&shares, &mut out).unwrap();
        prop_assert_eq!(&out, &expected);
    }

    #[test]
    fn gf256_field_laws(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Gf256::ZERO, a);
        prop_assert_eq!(a * Gf256::ONE, a);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
            prop_assert_eq!(b * b.inv(), Gf256::ONE);
        }
    }

    #[test]
    fn random_vandermonde_row_subsets_invertible(
        n in 2usize..=12,
        seed in any::<u64>(),
    ) {
        // Any m distinct rows of an n x m Vandermonde matrix are independent.
        let m = 1 + (seed as usize % n);
        let v = Matrix::vandermonde(n, m);
        let mut indices: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..indices.len()).rev() {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            indices.swap(i, (s % (i as u64 + 1)) as usize);
        }
        indices.truncate(m);
        prop_assert!(v.select_rows(&indices).inverted().is_some());
    }

    #[test]
    fn matrix_inverse_round_trip(n in 1usize..=6, seed in any::<u64>()) {
        // Random matrices are usually invertible; when they are, A * A^-1 = I.
        let mut s = seed;
        let mut rows: Vec<Vec<u8>> = Vec::new();
        for _ in 0..n {
            let mut row = Vec::new();
            for _ in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                row.push((s >> 33) as u8);
            }
            rows.push(row);
        }
        let refs: Vec<&[u8]> = rows.iter().map(std::vec::Vec::as_slice).collect();
        let mat = Matrix::from_rows(&refs);
        if let Some(inv) = mat.inverted() {
            prop_assert!((&mat * &inv).is_identity());
            prop_assert!((&inv * &mat).is_identity());
        }
    }
}
