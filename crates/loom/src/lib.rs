//! Minimal deterministic model checker for small concurrent tests.
//!
//! This crate is an API-compatible subset of the well-known `loom` crate,
//! reimplemented from scratch with zero dependencies so the workspace can
//! model-check its concurrency primitives in hermetic CI images (no
//! registry access). Code under test swaps `std::sync::mpsc` /
//! `std::sync::Mutex` / `std::thread` for the types in [`sync`] and
//! [`thread`] behind `--cfg loom` (see the `sys` modules in `fab-store`
//! and `fab-net`), and tests wrap their body in [`model`]:
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let h = loom::thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
//!     n.fetch_add(1, Ordering::SeqCst);
//!     h.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! # How it works
//!
//! [`model`] runs the closure repeatedly, once per distinct thread
//! interleaving, until the depth-first search over scheduling decisions is
//! exhausted. Within one execution all threads are real OS threads but run
//! fully **serialized**: a scheduler hands a single run token from thread
//! to thread, and every visible operation (channel send/recv, mutex
//! lock/unlock, spawn, join) is a *decision point* where the scheduler
//! picks which runnable thread goes next. The decisions taken are recorded
//! on a tape; after each execution the last non-exhausted decision is
//! advanced and the prefix replayed, enumerating every schedule.
//!
//! Because execution is serialized, exploration is **sequentially
//! consistent**: unlike the real `loom`, weak-memory reorderings of
//! `Relaxed`/`Acquire`/`Release` atomics are not modeled. What *is*
//! covered exhaustively — and what the workspace's suites assert — is the
//! ordering of channel messages, lock acquisitions, fsync-to-callback
//! sequencing, and thread lifecycles.
//!
//! # Guarantees checked for free
//!
//! * **Deadlock**: if every live thread is blocked, the model panics with
//!   a per-thread trace instead of hanging.
//! * **Poisoning**: the [`sync::Mutex`] wrapper delegates to
//!   `std::sync::Mutex`, so lock poisoning on panic behaves exactly as in
//!   production.
//! * **Divergence**: exploration is capped at [`MAX_EXECUTIONS`] schedules;
//!   exceeding the cap fails the test rather than spinning forever.
//!
//! Outside [`model`] every wrapper type degrades to plain `std` behavior,
//! so a crate compiled with `--cfg loom` still runs its ordinary unit
//! tests correctly.

mod scheduler;
pub mod sync;
pub mod thread;

/// Upper bound on distinct schedules explored by one [`model`] call.
/// Generous for the intended test sizes (2–3 threads, a handful of sync
/// operations each); hitting it means the test is too big to check
/// exhaustively and should be shrunk.
pub const MAX_EXECUTIONS: usize = 200_000;

/// Exhaustively explores every thread interleaving of `f`.
///
/// `f` is executed once per distinct schedule; any panic or assertion
/// failure inside it is re-raised from the schedule that triggered it
/// (deterministically reproducible, since exploration is a depth-first
/// search with no randomness).
///
/// # Panics
///
/// Propagates panics from `f`; panics on deadlock (all threads blocked)
/// and when [`MAX_EXECUTIONS`] is exceeded.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    scheduler::explore(std::sync::Arc::new(f));
}
