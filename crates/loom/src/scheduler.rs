//! The serializing scheduler behind [`crate::model`].
//!
//! One execution = one set of real OS threads sharing a single run token.
//! Threads run only while they hold the token; they hand it over at
//! *decision points* (every visible sync operation), where the scheduler
//! consults a decision tape: replaying the prefix of the previous
//! execution, then extending it first-choice-first. [`explore`] drives the
//! depth-first search over tapes.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, PoisonError};

/// Payload used to unwind threads out of an execution being torn down
/// (deadlock detected, or a sibling thread failed). Never surfaces to the
/// user: the panic hook swallows it and [`explore`] reports the real cause.
pub(crate) struct Abort;

/// One recorded scheduling decision: which of `choices` runnable threads
/// was handed the token.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    pub chosen: usize,
    pub choices: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    /// Waiting for [`Scheduler::wake`] on this resource id.
    Blocked(u64),
    Finished,
}

#[derive(Debug)]
struct Slot {
    state: Run,
    /// Resource id joiners block on; woken when this thread finishes.
    exit: u64,
}

#[derive(Debug)]
struct State {
    threads: Vec<Slot>,
    current: usize,
    tape: Vec<Decision>,
    cursor: usize,
    abort: bool,
    deadlock: Option<String>,
    /// Registered threads that have not finished.
    active: usize,
}

/// Shared between every thread of one execution.
pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    /// OS handles of spawned (non-root) threads, joined at execution end.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler and thread id of the calling thread, if it is running
/// inside a [`crate::model`] execution.
pub(crate) fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(sched: Arc<Scheduler>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Process-wide resource id allocator (channels, mutexes, thread exits).
/// Ids only need to be unique, never dense or reproducible.
static NEXT_RES: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_res() -> u64 {
    NEXT_RES.fetch_add(1, Ordering::Relaxed)
}

/// Swallows [`Abort`] unwinds (execution teardown, not failures) so they
/// do not spam stderr; everything else goes to the previous hook.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Abort>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Scheduler {
    fn new(tape: Vec<Decision>) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: Vec::new(),
                current: 0,
                tape,
                cursor: 0,
                abort: false,
                deadlock: None,
                active: 0,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a thread; the root (tid 0) starts holding the token.
    pub(crate) fn register(&self) -> (usize, u64) {
        let mut st = self.lock();
        let tid = st.threads.len();
        let exit = next_res();
        st.threads.push(Slot {
            state: Run::Runnable,
            exit,
        });
        st.active += 1;
        (tid, exit)
    }

    /// Rolls back a registration whose OS thread failed to spawn.
    pub(crate) fn deregister(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].state = Run::Finished;
        st.active -= 1;
    }

    pub(crate) fn stash_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h);
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock().threads[tid].state == Run::Finished
    }

    /// Picks the next token holder among runnable threads, consulting the
    /// tape. Returns `None` if nothing is runnable. Must be called with
    /// the state lock held (hence `&mut State`).
    fn pick(st: &mut State) -> Option<usize> {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let d = if st.cursor < st.tape.len() {
            st.tape[st.cursor]
        } else {
            let d = Decision {
                chosen: 0,
                choices: runnable.len(),
            };
            st.tape.push(d);
            d
        };
        st.cursor += 1;
        Some(runnable[d.chosen.min(runnable.len() - 1)])
    }

    /// Parks the calling thread until it holds the token and is runnable.
    /// Unwinds with [`Abort`] if the execution is being torn down.
    fn wait_turn(&self, mut st: std::sync::MutexGuard<'_, State>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.current == me && st.threads[me].state == Run::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// First wait of a freshly spawned thread: parks until scheduled.
    pub(crate) fn wait_first(&self, me: usize) {
        let st = self.lock();
        self.wait_turn(st, me);
    }

    /// A decision point: hand the token to any runnable thread (possibly
    /// the caller again) and park until it comes back.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        match Self::pick(&mut st) {
            Some(next) => st.current = next,
            None => unreachable!("caller is runnable"),
        }
        self.cv.notify_all();
        self.wait_turn(st, me);
    }

    /// Blocks the calling thread on `res` until [`Scheduler::wake`]. If no
    /// other thread is runnable, the execution has deadlocked.
    pub(crate) fn block_on(&self, me: usize, res: u64) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.threads[me].state = Run::Blocked(res);
        match Self::pick(&mut st) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
                self.wait_turn(st, me);
            }
            None => {
                st.deadlock = Some(Self::trace(&st));
                st.abort = true;
                drop(st);
                self.cv.notify_all();
                std::panic::panic_any(Abort);
            }
        }
    }

    /// Makes every thread blocked on `res` runnable again (they still wait
    /// for the token).
    pub(crate) fn wake(&self, res: u64) {
        let mut st = self.lock();
        for s in &mut st.threads {
            if s.state == Run::Blocked(res) {
                s.state = Run::Runnable;
            }
        }
    }

    /// Marks the calling thread finished, wakes its joiners, and passes
    /// the token on.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].state = Run::Finished;
        st.active -= 1;
        let exit = st.threads[me].exit;
        for s in &mut st.threads {
            if s.state == Run::Blocked(exit) {
                s.state = Run::Runnable;
            }
        }
        if st.active == 0 || st.abort {
            self.cv.notify_all();
            return;
        }
        match Self::pick(&mut st) {
            Some(next) => st.current = next,
            None => {
                // Everyone left is blocked and nobody can wake them.
                st.deadlock = Some(Self::trace(&st));
                st.abort = true;
            }
        }
        self.cv.notify_all();
    }

    fn trace(st: &State) -> String {
        st.threads
            .iter()
            .enumerate()
            .map(|(i, s)| match s.state {
                Run::Runnable => format!("thread {i}: runnable"),
                Run::Blocked(r) => format!("thread {i}: blocked on resource {r}"),
                Run::Finished => format!("thread {i}: finished"),
            })
            .collect::<Vec<_>>()
            .join("; ")
    }

    fn wait_all_done(&self) {
        let mut st = self.lock();
        while st.active > 0 {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Where a model thread's return value (or panic payload) is stashed for
/// its joiner.
pub(crate) type ResultSlot<T> = Arc<Mutex<Option<Result<T, Box<dyn Any + Send>>>>>;

/// Registers a child thread and spawns its serialized OS thread. Returns
/// the child tid and exit resource for `JoinHandle`.
pub(crate) fn spawn_child<T, F>(
    sched: &Arc<Scheduler>,
    parent: usize,
    name: Option<String>,
    f: F,
) -> std::io::Result<(usize, u64, ResultSlot<T>)>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (tid, exit) = sched.register();
    let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
    let mut builder = std::thread::Builder::new();
    if let Some(n) = name {
        builder = builder.name(n);
    }
    let os = {
        let sched = Arc::clone(sched);
        let slot = Arc::clone(&slot);
        builder.spawn(move || {
            set_ctx(Arc::clone(&sched), tid);
            sched.wait_first(tid);
            let r = catch_unwind(AssertUnwindSafe(f));
            let aborted = matches!(&r, Err(p) if p.downcast_ref::<Abort>().is_some());
            if !aborted {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            }
            sched.finish(tid);
            clear_ctx();
        })
    };
    match os {
        Ok(h) => {
            sched.stash_handle(h);
            // Spawning is itself a visible event: the child may or may not
            // run before the parent's next step.
            sched.yield_point(parent);
            Ok((tid, exit, slot))
        }
        Err(e) => {
            sched.deregister(tid);
            Err(e)
        }
    }
}

/// Drives the depth-first search over schedules. See [`crate::model`].
/// (`f` is shared by value: every execution's root thread gets a clone.)
#[allow(clippy::needless_pass_by_value)]
pub(crate) fn explore(f: Arc<dyn Fn() + Send + Sync>) {
    install_panic_hook();
    let mut tape: Vec<Decision> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= crate::MAX_EXECUTIONS,
            "loom: exceeded {} schedules; shrink the test",
            crate::MAX_EXECUTIONS
        );
        let sched = Arc::new(Scheduler::new(std::mem::take(&mut tape)));
        let (root, _) = sched.register();
        debug_assert_eq!(root, 0);
        let slot: ResultSlot<()> = Arc::new(Mutex::new(None));
        let os = {
            let sched = Arc::clone(&sched);
            let f = Arc::clone(&f);
            let slot = Arc::clone(&slot);
            std::thread::Builder::new()
                .name("loom-root".into())
                .spawn(move || {
                    set_ctx(Arc::clone(&sched), 0);
                    sched.wait_first(0);
                    let r = catch_unwind(AssertUnwindSafe(|| f()));
                    let aborted =
                        matches!(&r, Err(p) if p.downcast_ref::<Abort>().is_some());
                    if !aborted {
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    }
                    sched.finish(0);
                    clear_ctx();
                })
                .expect("spawn loom root thread")
        };
        sched.wait_all_done();
        let _ = os.join();
        for h in sched
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = h.join();
        }
        let st = sched.lock();
        let root_result = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(Err(p)) = root_result {
            resume_unwind(p);
        }
        if let Some(msg) = &st.deadlock {
            panic!("loom: deadlock detected after {executions} schedule(s): {msg}");
        }
        // Advance to the next unexplored schedule: drop exhausted suffix
        // decisions, bump the last one left.
        let mut t = st.tape.clone();
        drop(st);
        loop {
            match t.last_mut() {
                None => return, // every schedule explored
                Some(d) if d.chosen + 1 < d.choices => {
                    d.chosen += 1;
                    break;
                }
                Some(_) => {
                    t.pop();
                }
            }
        }
        tape = t;
    }
}
