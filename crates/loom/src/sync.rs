//! `std::sync`-shaped primitives that become scheduler decision points
//! inside [`crate::model`] and degrade to plain `std` behavior outside it.
//!
//! Error types are re-used from `std` (`PoisonError`, `SendError`,
//! `RecvError`, …) so code generic over both worlds needs no mapping.

use crate::scheduler::{ctx, next_res};
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError};

pub use std::sync::atomic;
pub use std::sync::Arc;

/// Model-aware [`std::sync::Mutex`]: acquisition is a decision point, a
/// contended lock blocks in the scheduler (never the OS), and poisoning
/// delegates to the wrapped `std` mutex so panic semantics match
/// production exactly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    res: u64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(t: T) -> Self {
        Mutex {
            res: next_res(),
            inner: std::sync::Mutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex; see [`std::sync::Mutex::lock`].
    ///
    /// # Errors
    ///
    /// Returns [`PoisonError`] (holding the guard) if another thread
    /// panicked while holding this mutex.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((sched, me)) = ctx() {
            loop {
                sched.yield_point(me);
                match self.inner.try_lock() {
                    Ok(g) => {
                        return Ok(MutexGuard {
                            inner: Some(g),
                            res: self.res,
                        })
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        return Err(PoisonError::new(MutexGuard {
                            inner: Some(p.into_inner()),
                            res: self.res,
                        }))
                    }
                    Err(TryLockError::WouldBlock) => sched.block_on(me, self.res),
                }
            }
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    res: self.res,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    res: self.res,
                })),
            }
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releasing it wakes scheduler-blocked
/// waiters.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    res: u64,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live until drop")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live until drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first, *then* wake waiters — the other
        // order would wake them into a still-held lock.
        self.inner = None;
        if let Some((sched, _)) = ctx() {
            sched.wake(self.res);
        }
    }
}

/// Model-aware [`std::sync::mpsc`] (unbounded channels only).
pub mod mpsc {
    use crate::scheduler::{ctx, next_res};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// An unbounded channel; see [`std::sync::mpsc::channel`].
    #[must_use]
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let res = next_res();
        (
            Sender {
                inner: Some(tx),
                res,
            },
            Receiver { inner: rx, res },
        )
    }

    /// Sending half; see [`std::sync::mpsc::Sender`].
    #[derive(Debug)]
    pub struct Sender<T> {
        /// `Option` so `Drop` can release the std sender *before* waking
        /// the receiver (which must observe the disconnect).
        inner: Option<std::sync::mpsc::Sender<T>>,
        res: u64,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                res: self.res,
            }
        }
    }

    impl<T> Sender<T> {
        /// Queues `t`; see [`std::sync::mpsc::Sender::send`].
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let c = ctx();
            if let Some((sched, me)) = &c {
                sched.yield_point(*me);
            }
            let r = self.inner.as_ref().expect("sender live until drop").send(t);
            if let Some((sched, _)) = &c {
                sched.wake(self.res);
            }
            r
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.inner = None;
            if let Some((sched, _)) = ctx() {
                // Possibly the last sender: a blocked receiver must wake
                // to observe the disconnect.
                sched.wake(self.res);
            }
        }
    }

    /// Receiving half; see [`std::sync::mpsc::Receiver`].
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
        res: u64,
    }

    impl<T> Receiver<T> {
        /// Blocks (in the scheduler) for the next value; see
        /// [`std::sync::mpsc::Receiver::recv`].
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once every sender is gone and the queue
        /// is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let Some((sched, me)) = ctx() else {
                return self.inner.recv();
            };
            loop {
                sched.yield_point(me);
                match self.inner.try_recv() {
                    Ok(v) => return Ok(v),
                    Err(TryRecvError::Disconnected) => return Err(RecvError),
                    Err(TryRecvError::Empty) => sched.block_on(me, self.res),
                }
            }
        }

        /// Non-blocking receive; see
        /// [`std::sync::mpsc::Receiver::try_recv`].
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if no value is queued,
        /// [`TryRecvError::Disconnected`] if every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if let Some((sched, me)) = ctx() {
                sched.yield_point(me);
            }
            self.inner.try_recv()
        }
    }
}
