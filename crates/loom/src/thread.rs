//! `std::thread`-shaped API whose threads participate in the model
//! scheduler when called inside [`crate::model`], and fall through to real
//! `std::thread` otherwise.

use crate::scheduler::{self, ctx, ResultSlot, Scheduler};
use std::any::Any;
use std::sync::{Arc, PoisonError};

/// See [`std::thread::Result`].
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<Scheduler>,
        tid: usize,
        exit: u64,
        slot: ResultSlot<T>,
    },
}

/// Owned handle to join a spawned thread (model-aware
/// [`std::thread::JoinHandle`] equivalent).
pub struct JoinHandle<T>(Inner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Inner::Std(_) => f.write_str("JoinHandle(std)"),
            Inner::Model { tid, .. } => write!(f, "JoinHandle(model thread {tid})"),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its value or the panic
    /// payload, exactly like [`std::thread::JoinHandle::join`].
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked.
    pub fn join(self) -> Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model {
                sched,
                tid,
                exit,
                slot,
            } => {
                let me = ctx().map_or(0, |(_, me)| me);
                loop {
                    sched.yield_point(me);
                    if sched.is_finished(tid) {
                        break;
                    }
                    sched.block_on(me, exit);
                }
                match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(r) => r,
                    // The joined thread was unwound during teardown and
                    // never produced a value; teardown is already failing
                    // the model, so any payload will do.
                    None => Err(Box::new("loom: thread aborted")),
                }
            }
        }
    }
}

/// Model-aware [`std::thread::Builder`] equivalent (only `name` is
/// supported).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// A builder with no name set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Names the thread (visible in panic messages and debuggers).
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the thread could not be created.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some((sched, me)) = ctx() {
            let (tid, exit, slot) = scheduler::spawn_child(&sched, me, self.name, f)?;
            Ok(JoinHandle(Inner::Model {
                sched,
                tid,
                exit,
                slot,
            }))
        } else {
            let mut b = std::thread::Builder::new();
            if let Some(n) = self.name {
                b = b.name(n);
            }
            b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
        }
    }
}

/// Spawns a thread; see [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}
