//! Self-tests for the mini model checker: exploration actually enumerates
//! distinct schedules, the wrappers keep their `std` semantics, and the
//! failure modes (deadlock, child panic) surface as panics rather than
//! hangs.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

#[test]
fn explores_both_orders_of_a_spawned_thread() {
    // The only decision point is the spawn itself: the child either runs
    // to completion before the root's read, or after it. Exhaustive
    // exploration must observe both outcomes.
    let seen: Arc<StdMutex<HashSet<bool>>> = Arc::new(StdMutex::new(HashSet::new()));
    let seen2 = Arc::clone(&seen);
    loom::model(move || {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = loom::thread::spawn(move || f2.store(true, Ordering::SeqCst));
        let observed = flag.load(Ordering::SeqCst);
        h.join().unwrap();
        assert!(flag.load(Ordering::SeqCst), "join is a happens-before edge");
        seen2.lock().unwrap().insert(observed);
    });
    assert_eq!(
        *seen.lock().unwrap(),
        HashSet::from([false, true]),
        "model() must explore both sides of the spawn race"
    );
}

#[test]
fn mutex_excludes_and_final_count_is_exact() {
    let runs = Arc::new(AtomicUsize::new(0));
    let runs2 = Arc::clone(&runs);
    loom::model(move || {
        runs2.fetch_add(1, Ordering::SeqCst);
        let n = Arc::new(loom::sync::Mutex::new(0u32));
        let n2 = Arc::clone(&n);
        let h = loom::thread::spawn(move || {
            let mut g = n2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = n.lock().unwrap();
            *g += 1;
        }
        h.join().unwrap();
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(
        runs.load(Ordering::SeqCst) > 1,
        "two contending threads must produce more than one schedule"
    );
}

#[test]
fn channel_is_fifo_and_reports_disconnect() {
    loom::model(|| {
        let (tx, rx) = loom::sync::mpsc::channel();
        let h = loom::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // tx drops here: receiver must observe disconnect.
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err(), "sender dropped, recv must not hang");
        h.join().unwrap();
    });
}

#[test]
fn deadlock_panics_instead_of_hanging() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let (tx, rx) = loom::sync::mpsc::channel::<u8>();
            let _keep_alive = tx; // never sends, never drops before recv
            let _ = rx.recv();
        });
    }));
    let msg = match r {
        Ok(()) => panic!("expected the model to detect a deadlock"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into()),
    };
    assert!(msg.contains("deadlock"), "panic should name the cause: {msg}");
}

#[test]
fn child_panic_surfaces_through_join() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let h = loom::thread::spawn(|| panic!("boom in child"));
            // Propagating the Err from join fails the whole model run,
            // exactly like a std test would.
            h.join().expect("child panicked");
        });
    }));
    assert!(r.is_err(), "a panicking child must fail the model run");
}

#[test]
fn builder_names_threads_and_join_returns_values() {
    loom::model(|| {
        let h = loom::thread::Builder::new()
            .name("worker".into())
            .spawn(|| 40 + 2)
            .expect("spawn");
        assert_eq!(h.join().unwrap(), 42);
    });
}

#[test]
fn wrappers_degrade_to_std_outside_model() {
    // No loom::model() wrapper: everything must behave as plain std.
    let m = loom::sync::Mutex::new(5);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);

    let (tx, rx) = loom::sync::mpsc::channel();
    let h = loom::thread::spawn(move || tx.send(7).unwrap());
    assert_eq!(rx.recv(), Ok(7));
    h.join().unwrap();
}
