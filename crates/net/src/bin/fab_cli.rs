//! `fab-cli` — command-line client for a FAB brick cluster.
//!
//! ```text
//! fab-cli --cluster HOST:PORT,... --m M --block-size BYTES COMMAND ...
//!
//! commands:
//!   write-stripe STRIPE TEXT     write TEXT (zero-padded) across the stripe
//!   read-stripe  STRIPE          read and print the whole stripe
//!   write-block  STRIPE J TEXT   write TEXT (zero-padded) into block J
//!   read-block   STRIPE J        read and print block J
//!   scrub        STRIPE          recover + rewrite the stripe everywhere
//! ```
//!
//! `--cluster`, `--m`, and `--block-size` must match the running `fabd`
//! processes. Any brick can coordinate any operation; the client rotates
//! and fails over automatically.

use bytes::Bytes;
use fab_core::{BlockValue, OpResult, RegisterConfig, StripeId, StripeValue};
use fab_net::NetClient;
use std::net::SocketAddr;
use std::process::ExitCode;

const USAGE: &str = "usage: fab-cli --cluster HOST:PORT,... --m M --block-size BYTES COMMAND ...
commands:
  write-stripe STRIPE TEXT
  read-stripe  STRIPE
  write-block  STRIPE J TEXT
  read-block   STRIPE J
  scrub        STRIPE";

fn pad(text: &str, len: usize) -> Bytes {
    let mut buf = text.as_bytes().to_vec();
    buf.resize(len, 0);
    Bytes::from(buf)
}

fn print_block(j: usize, v: &BlockValue) {
    match v {
        BlockValue::Bottom => println!("block {j}: (bottom)"),
        BlockValue::Nil => println!("block {j}: (nil)"),
        BlockValue::Data(b) => {
            let text = String::from_utf8_lossy(b);
            println!("block {j}: {:?}", text.trim_end_matches('\0'));
        }
    }
}

fn print_result(result: &OpResult) {
    match result {
        OpResult::Written => println!("ok: written"),
        OpResult::Stripe(StripeValue::Nil) => println!("stripe: (nil — never written)"),
        OpResult::Stripe(StripeValue::Data(blocks)) => {
            for (j, b) in blocks.iter().enumerate() {
                print_block(j, &BlockValue::Data(b.clone()));
            }
        }
        OpResult::Block(v) => print_block(0, v),
        OpResult::Blocks(vs) => {
            for (j, v) in vs.iter().enumerate() {
                print_block(j, v);
            }
        }
        other => println!("result: {other:?}"),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let mut cluster: Option<Vec<SocketAddr>> = None;
    let mut m = None;
    let mut block_size = None;
    let mut rest: Vec<&String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cluster" => {
                let addrs: Result<Vec<SocketAddr>, _> = it
                    .next()
                    .ok_or("--cluster needs an address list")?
                    .split(',')
                    .map(str::parse)
                    .collect();
                cluster = Some(addrs.map_err(|e| format!("--cluster: {e}"))?);
            }
            "--m" => {
                m = Some(
                    it.next()
                        .ok_or("--m needs a stripe width")?
                        .parse::<usize>()
                        .map_err(|e| format!("--m: {e}"))?,
                );
            }
            "--block-size" => {
                block_size = Some(
                    it.next()
                        .ok_or("--block-size needs a byte count")?
                        .parse::<usize>()
                        .map_err(|e| format!("--block-size: {e}"))?,
                );
            }
            _ => rest.push(arg),
        }
    }
    let cluster = cluster.ok_or("--cluster is required")?;
    let m = m.ok_or("--m is required")?;
    let block_size = block_size.ok_or("--block-size is required")?;
    let cfg = RegisterConfig::new(m, cluster.len(), block_size)
        .map_err(|e| format!("invalid configuration: {e}"))?;
    let mut client = NetClient::connect(cluster, cfg);

    let stripe_arg = |s: &String| -> Result<StripeId, String> {
        s.parse::<u64>()
            .map(StripeId)
            .map_err(|e| format!("stripe id: {e}"))
    };
    let index_arg = |s: &String| -> Result<usize, String> {
        s.parse::<usize>().map_err(|e| format!("block index: {e}"))
    };

    let result = match rest.as_slice() {
        [cmd, stripe, text] if cmd.as_str() == "write-stripe" => {
            let stripe = stripe_arg(stripe)?;
            // Spread the text across the stripe's m·block_size bytes.
            let full = pad(text, m * block_size);
            let blocks = (0..m)
                .map(|j| full.slice(j * block_size..(j + 1) * block_size))
                .collect();
            client.try_write_stripe(stripe, blocks)
        }
        [cmd, stripe] if cmd.as_str() == "read-stripe" => {
            client.try_read_stripe(stripe_arg(stripe)?)
        }
        [cmd, stripe, j, text] if cmd.as_str() == "write-block" => client.try_write_block(
            stripe_arg(stripe)?,
            index_arg(j)?,
            pad(text, block_size),
        ),
        [cmd, stripe, j] if cmd.as_str() == "read-block" => {
            client.try_read_block(stripe_arg(stripe)?, index_arg(j)?)
        }
        [cmd, stripe] if cmd.as_str() == "scrub" => client.try_scrub(stripe_arg(stripe)?),
        _ => return Err("unknown or malformed command".to_string()),
    };
    match result {
        Ok(r) => {
            print_result(&r);
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fab-cli: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
