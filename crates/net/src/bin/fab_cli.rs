//! `fab-cli` — command-line client for a FAB brick cluster.
//!
//! ```text
//! fab-cli --cluster HOST:PORT,... --m M --block-size BYTES COMMAND ...
//!
//! commands:
//!   write-stripe STRIPE TEXT     write TEXT (zero-padded) across the stripe
//!   read-stripe  STRIPE          read and print the whole stripe
//!   write-block  STRIPE J TEXT   write TEXT (zero-padded) into block J
//!   read-block   STRIPE J        read and print block J
//!   scrub        STRIPE          recover + rewrite the stripe everywhere
//!   repair BRICK --stripes N     rebuild a replaced brick's stripes
//!   repair --all --stripes N     full-volume scrub
//!   repair-status                progress of the running repair
//!   repair-abort                 stop the running repair
//!   stats                        one node's metrics registry dump
//! ```
//!
//! Repair verbs accept `--stripes-per-sec R`, `--bytes-per-sec B`, and
//! `--max-inflight K` throttles, and `--node I` to pick the brick that
//! orchestrates (default 0). `repair-status`/`repair-abort` must target
//! the same node the repair was started on.
//!
//! `stats [--node I] [--watch]` dumps the target brick's metrics
//! registry in a text exposition format (one `counter|gauge|histogram
//! name value...` line per instrument); `--watch` re-polls every two
//! seconds until interrupted.
//!
//! `--cluster`, `--m`, and `--block-size` must match the running `fabd`
//! processes. Any brick can coordinate any operation; the client rotates
//! and fails over automatically.
//!
//! Argument parsing ([`parse_args`]) is a pure function, separated from
//! execution so the error paths are unit-testable without sockets.

use bytes::Bytes;
use fab_core::{BlockValue, OpResult, RegisterConfig, StripeId, StripeValue};
use fab_net::NetClient;
use fab_wire::{AdminOp, AdminResponse, RepairProgress};
use std::net::SocketAddr;
use std::process::ExitCode;

const USAGE: &str = "usage: fab-cli --cluster HOST:PORT,... --m M --block-size BYTES COMMAND ...
commands:
  write-stripe STRIPE TEXT
  read-stripe  STRIPE
  write-block  STRIPE J TEXT
  read-block   STRIPE J
  scrub        STRIPE
  repair BRICK --stripes N [--stripes-per-sec R] [--bytes-per-sec B] [--max-inflight K] [--node I]
  repair --all --stripes N [throttles...] [--node I]
  repair-status [--node I]
  repair-abort  [--node I]
  stats [--node I] [--watch]";

/// A parsed invocation: connection parameters plus one command.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    cluster: Vec<SocketAddr>,
    m: usize,
    block_size: usize,
    command: Command,
}

/// What a repair rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RepairTarget {
    /// The stripes hosted by one replaced/wiped brick.
    Brick(u32),
    /// Every stripe of the volume (`--all`).
    All,
}

/// The operation to run against the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Command {
    WriteStripe { stripe: StripeId, text: String },
    ReadStripe { stripe: StripeId },
    WriteBlock { stripe: StripeId, j: usize, text: String },
    ReadBlock { stripe: StripeId, j: usize },
    Scrub { stripe: StripeId },
    Repair {
        target: RepairTarget,
        stripes: u64,
        stripes_per_sec: u64,
        bytes_per_sec: u64,
        max_inflight: u32,
        node: usize,
    },
    RepairStatus { node: usize },
    RepairAbort { node: usize },
    Stats { node: usize, watch: bool },
}

fn pad(text: &str, len: usize) -> Bytes {
    let mut buf = text.as_bytes().to_vec();
    buf.resize(len, 0);
    Bytes::from(buf)
}

fn print_block(j: usize, v: &BlockValue) {
    match v {
        BlockValue::Bottom => println!("block {j}: (bottom)"),
        BlockValue::Nil => println!("block {j}: (nil)"),
        BlockValue::Data(b) => {
            let text = String::from_utf8_lossy(b);
            println!("block {j}: {:?}", text.trim_end_matches('\0'));
        }
    }
}

fn print_result(result: &OpResult) {
    match result {
        OpResult::Written => println!("ok: written"),
        OpResult::Stripe(StripeValue::Nil) => println!("stripe: (nil — never written)"),
        OpResult::Stripe(StripeValue::Data(blocks)) => {
            for (j, b) in blocks.iter().enumerate() {
                print_block(j, &BlockValue::Data(b.clone()));
            }
        }
        OpResult::Block(v) => print_block(0, v),
        OpResult::Blocks(vs) => {
            for (j, v) in vs.iter().enumerate() {
                print_block(j, v);
            }
        }
        other => println!("result: {other:?}"),
    }
}

fn stripe_arg(s: &str) -> Result<StripeId, String> {
    s.parse::<u64>()
        .map(StripeId)
        .map_err(|e| format!("stripe id: {e}"))
}

fn index_arg(s: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|e| format!("block index: {e}"))
}

/// Parses `argv` (program name already stripped) into a [`Cli`]. Pure:
/// no sockets are touched and no I/O happens; errors are human-readable
/// one-liners later paired with [`USAGE`].
fn parse_args(argv: &[String]) -> Result<Cli, String> {
    let mut cluster: Option<Vec<SocketAddr>> = None;
    let mut m = None;
    let mut block_size = None;
    let mut stripes: Option<u64> = None;
    let mut stripes_per_sec = 0u64;
    let mut bytes_per_sec = 0u64;
    let mut max_inflight = 4u32;
    let mut all = false;
    let mut watch = false;
    let mut node = 0usize;
    let mut rest: Vec<&String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cluster" => {
                let addrs: Result<Vec<SocketAddr>, _> = it
                    .next()
                    .ok_or("--cluster needs an address list")?
                    .split(',')
                    .map(str::parse)
                    .collect();
                cluster = Some(addrs.map_err(|e| format!("--cluster: {e}"))?);
            }
            "--m" => {
                m = Some(
                    it.next()
                        .ok_or("--m needs a stripe width")?
                        .parse::<usize>()
                        .map_err(|e| format!("--m: {e}"))?,
                );
            }
            "--block-size" => {
                block_size = Some(
                    it.next()
                        .ok_or("--block-size needs a byte count")?
                        .parse::<usize>()
                        .map_err(|e| format!("--block-size: {e}"))?,
                );
            }
            "--stripes" => {
                stripes = Some(
                    it.next()
                        .ok_or("--stripes needs a stripe count")?
                        .parse::<u64>()
                        .map_err(|e| format!("--stripes: {e}"))?,
                );
            }
            "--stripes-per-sec" => {
                stripes_per_sec = it
                    .next()
                    .ok_or("--stripes-per-sec needs a rate")?
                    .parse::<u64>()
                    .map_err(|e| format!("--stripes-per-sec: {e}"))?;
            }
            "--bytes-per-sec" => {
                bytes_per_sec = it
                    .next()
                    .ok_or("--bytes-per-sec needs a rate")?
                    .parse::<u64>()
                    .map_err(|e| format!("--bytes-per-sec: {e}"))?;
            }
            "--max-inflight" => {
                max_inflight = it
                    .next()
                    .ok_or("--max-inflight needs a count")?
                    .parse::<u32>()
                    .map_err(|e| format!("--max-inflight: {e}"))?;
            }
            "--all" => all = true,
            "--watch" => watch = true,
            "--node" => {
                node = it
                    .next()
                    .ok_or("--node needs a brick index")?
                    .parse::<usize>()
                    .map_err(|e| format!("--node: {e}"))?;
            }
            _ => rest.push(arg),
        }
    }
    let cluster = cluster.ok_or("--cluster is required")?;
    let m = m.ok_or("--m is required")?;
    let block_size = block_size.ok_or("--block-size is required")?;
    if node >= cluster.len() {
        return Err(format!(
            "--node {node} is out of range for a {}-brick cluster",
            cluster.len()
        ));
    }

    // A closure, not computed eagerly: only the repair verbs need it.
    let repair_command = |target: RepairTarget| -> Result<Command, String> {
        let stripes =
            stripes.ok_or("--stripes is required for repair (the volume's stripe count)")?;
        Ok(Command::Repair {
            target,
            stripes,
            stripes_per_sec,
            bytes_per_sec,
            max_inflight,
            node,
        })
    };

    let command = match rest.as_slice() {
        [cmd, brick] if cmd.as_str() == "repair" => {
            if all {
                return Err(
                    "conflicting arguments: give a BRICK operand or --all, not both".to_string()
                );
            }
            let brick = brick
                .parse::<u32>()
                .map_err(|e| format!("brick id: {e}"))?;
            repair_command(RepairTarget::Brick(brick))?
        }
        [cmd] if cmd.as_str() == "repair" => {
            if !all {
                return Err("repair needs a BRICK operand or --all".to_string());
            }
            repair_command(RepairTarget::All)?
        }
        [cmd] if cmd.as_str() == "repair-status" => Command::RepairStatus { node },
        [cmd] if cmd.as_str() == "repair-abort" => Command::RepairAbort { node },
        [cmd] if cmd.as_str() == "stats" => Command::Stats { node, watch },
        [cmd, stripe, text] if cmd.as_str() == "write-stripe" => Command::WriteStripe {
            stripe: stripe_arg(stripe)?,
            text: (*text).clone(),
        },
        [cmd, stripe] if cmd.as_str() == "read-stripe" => Command::ReadStripe {
            stripe: stripe_arg(stripe)?,
        },
        [cmd, stripe, j, text] if cmd.as_str() == "write-block" => Command::WriteBlock {
            stripe: stripe_arg(stripe)?,
            j: index_arg(j)?,
            text: (*text).clone(),
        },
        [cmd, stripe, j] if cmd.as_str() == "read-block" => Command::ReadBlock {
            stripe: stripe_arg(stripe)?,
            j: index_arg(j)?,
        },
        [cmd, stripe] if cmd.as_str() == "scrub" => Command::Scrub {
            stripe: stripe_arg(stripe)?,
        },
        [] => return Err("a command is required".to_string()),
        _ => return Err("unknown or malformed command".to_string()),
    };
    Ok(Cli {
        cluster,
        m,
        block_size,
        command,
    })
}

fn print_progress(p: &RepairProgress) {
    let state = if p.running {
        "running"
    } else if p.complete {
        "complete"
    } else if p.planned > 0 {
        "stopped (incomplete)"
    } else {
        "idle (no repair started)"
    };
    println!("repair: {state}");
    println!(
        "  stripes: {} planned, {} repaired, {} skipped, {} failed ({} retries)",
        p.planned, p.repaired, p.skipped, p.failed, p.retried
    );
    println!(
        "  watermark {} / bytes reconstructed {} / throttle waits {}",
        p.watermark, p.bytes_reconstructed, p.throttle_waits
    );
    println!(
        "  scrub latency: p50 {}us, p99 {}us",
        p.scrub_p50_micros, p.scrub_p99_micros
    );
}

/// Renders a [`StatsReport`] in the same text exposition format as
/// `fab_obs::Snapshot::render`, prefixed with the answering node.
fn print_stats(report: &fab_wire::StatsReport) {
    println!("node {}", report.node);
    for e in &report.counters {
        println!("counter {} {}", e.name, e.value);
    }
    for e in &report.gauges {
        println!("gauge {} {}", e.name, e.value);
    }
    for h in &report.histograms {
        println!(
            "histogram {} count={} p50={} p95={} p99={}",
            h.name, h.count, h.p50, h.p95, h.p99
        );
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let cli = parse_args(argv)?;
    let Cli {
        cluster,
        m,
        block_size,
        command,
    } = cli;
    let cfg = RegisterConfig::new(m, cluster.len(), block_size)
        .map_err(|e| format!("invalid configuration: {e}"))?;
    let mut client = NetClient::connect(cluster, cfg);

    // Admin verbs talk to one specific node, return early, and do not
    // print OpResults; the data verbs fall through to `data_result`.
    let data_result = match command {
        Command::Repair {
            target,
            stripes,
            stripes_per_sec,
            bytes_per_sec,
            max_inflight,
            node,
        } => {
            let (brick, scrub_all) = match target {
                RepairTarget::Brick(b) => (b, false),
                RepairTarget::All => (0, true),
            };
            let op = AdminOp::RepairStart {
                brick,
                stripe_count: stripes,
                stripes_per_sec,
                bytes_per_sec,
                max_inflight,
                scrub_all,
            };
            return match client.try_admin(node, &op) {
                Ok(AdminResponse::Started) => {
                    println!("ok: repair started on node {node}");
                    Ok(())
                }
                Ok(other) => Err(format!("unexpected reply: {other:?}")),
                Err(e) => Err(e.to_string()),
            };
        }
        Command::RepairStatus { node } => {
            return match client.try_admin(node, &AdminOp::RepairStatus) {
                Ok(AdminResponse::Status(p)) => {
                    print_progress(&p);
                    Ok(())
                }
                Ok(other) => Err(format!("unexpected reply: {other:?}")),
                Err(e) => Err(e.to_string()),
            };
        }
        Command::RepairAbort { node } => {
            return match client.try_admin(node, &AdminOp::RepairAbort) {
                Ok(AdminResponse::Aborted) => {
                    println!("ok: repair aborted on node {node}");
                    Ok(())
                }
                Ok(other) => Err(format!("unexpected reply: {other:?}")),
                Err(e) => Err(e.to_string()),
            };
        }
        Command::Stats { node, watch } => {
            loop {
                match client.try_admin(node, &AdminOp::StatsSnapshot) {
                    Ok(AdminResponse::Stats(report)) => print_stats(&report),
                    Ok(other) => return Err(format!("unexpected reply: {other:?}")),
                    Err(e) => return Err(e.to_string()),
                }
                if !watch {
                    return Ok(());
                }
                println!();
                std::thread::sleep(std::time::Duration::from_secs(2));
            }
        }
        Command::WriteStripe { stripe, text } => {
            // Spread the text across the stripe's m·block_size bytes.
            let full = pad(&text, m * block_size);
            let blocks = (0..m)
                .map(|j| full.slice(j * block_size..(j + 1) * block_size))
                .collect();
            client.try_write_stripe(stripe, blocks)
        }
        Command::ReadStripe { stripe } => client.try_read_stripe(stripe),
        Command::WriteBlock { stripe, j, text } => {
            client.try_write_block(stripe, j, pad(&text, block_size))
        }
        Command::ReadBlock { stripe, j } => client.try_read_block(stripe, j),
        Command::Scrub { stripe } => client.try_scrub(stripe),
    };
    match data_result {
        Ok(r) => {
            print_result(&r);
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fab-cli: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    const BASE: &[&str] = &[
        "--cluster",
        "127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003",
        "--m",
        "2",
        "--block-size",
        "64",
    ];

    fn with_base(extra: &[&str]) -> Vec<String> {
        let mut v = sv(BASE);
        v.extend(sv(extra));
        v
    }

    #[test]
    fn parses_every_command() {
        let cases: &[(&[&str], Command)] = &[
            (
                &["write-stripe", "3", "hello"],
                Command::WriteStripe {
                    stripe: StripeId(3),
                    text: "hello".into(),
                },
            ),
            (
                &["read-stripe", "9"],
                Command::ReadStripe { stripe: StripeId(9) },
            ),
            (
                &["write-block", "1", "0", "x"],
                Command::WriteBlock {
                    stripe: StripeId(1),
                    j: 0,
                    text: "x".into(),
                },
            ),
            (
                &["read-block", "4", "1"],
                Command::ReadBlock {
                    stripe: StripeId(4),
                    j: 1,
                },
            ),
            (&["scrub", "0"], Command::Scrub { stripe: StripeId(0) }),
        ];
        for (args, want) in cases {
            let cli = parse_args(&with_base(args)).expect("parse");
            assert_eq!(&cli.command, want);
            assert_eq!(cli.cluster.len(), 3);
            assert_eq!(cli.m, 2);
            assert_eq!(cli.block_size, 64);
        }
    }

    #[test]
    fn flags_may_follow_the_command() {
        let cli = parse_args(&sv(&[
            "read-stripe", "7", "--cluster", "10.0.0.1:9000", "--m", "1",
            "--block-size", "16",
        ]))
        .expect("parse");
        assert_eq!(cli.command, Command::ReadStripe { stripe: StripeId(7) });
        assert_eq!(cli.cluster.len(), 1);
    }

    #[test]
    fn missing_required_flags_are_reported_by_name() {
        let err = parse_args(&sv(&["read-stripe", "1"])).unwrap_err();
        assert!(err.contains("--cluster"), "{err}");
        let err = parse_args(&sv(&[
            "--cluster", "127.0.0.1:7001", "read-stripe", "1",
        ]))
        .unwrap_err();
        assert!(err.contains("--m"), "{err}");
        let err = parse_args(&sv(&[
            "--cluster", "127.0.0.1:7001", "--m", "1", "read-stripe", "1",
        ]))
        .unwrap_err();
        assert!(err.contains("--block-size"), "{err}");
    }

    #[test]
    fn flag_values_must_parse() {
        let err = parse_args(&with_base(&[])).unwrap_err(); // no command
        assert!(err.contains("command"), "{err}");
        let err = parse_args(&sv(&["--cluster", "not-an-addr"])).unwrap_err();
        assert!(err.starts_with("--cluster"), "{err}");
        let err = parse_args(&sv(&[
            "--cluster", "127.0.0.1:7001,also-bad", "--m", "1", "--block-size", "8",
            "scrub", "0",
        ]))
        .unwrap_err();
        assert!(err.starts_with("--cluster"), "{err}");
        let err = parse_args(&sv(&["--m", "two"])).unwrap_err();
        assert!(err.starts_with("--m"), "{err}");
        let err = parse_args(&sv(&["--block-size", "-1"])).unwrap_err();
        assert!(err.starts_with("--block-size"), "{err}");
    }

    #[test]
    fn dangling_flags_need_values() {
        for flag in ["--cluster", "--m", "--block-size"] {
            let err = parse_args(&sv(&[flag])).unwrap_err();
            assert!(err.contains(flag), "{err}");
        }
    }

    #[test]
    fn malformed_commands_are_rejected() {
        for bad in [
            &["frobnicate", "1"][..],
            &["write-stripe", "1"],          // missing TEXT
            &["read-stripe"],                // missing STRIPE
            &["read-block", "1"],            // missing J
            &["write-block", "1", "0"],      // missing TEXT
            &["scrub", "1", "extra"],        // trailing operand
        ] {
            let err = parse_args(&with_base(bad)).unwrap_err();
            assert!(
                err.contains("command"),
                "args {bad:?} gave unexpected error: {err}"
            );
        }
    }

    #[test]
    fn operand_parse_errors_name_the_operand() {
        let err = parse_args(&with_base(&["read-stripe", "xyz"])).unwrap_err();
        assert!(err.contains("stripe id"), "{err}");
        let err = parse_args(&with_base(&["read-block", "1", "q"])).unwrap_err();
        assert!(err.contains("block index"), "{err}");
    }

    #[test]
    fn padding_is_zero_filled_and_sized() {
        let b = pad("hi", 8);
        assert_eq!(&b[..], b"hi\0\0\0\0\0\0");
    }

    #[test]
    fn parses_repair_verbs() {
        let cli = parse_args(&with_base(&[
            "repair", "2", "--stripes", "1024", "--stripes-per-sec", "50",
            "--bytes-per-sec", "1048576", "--max-inflight", "8", "--node", "1",
        ]))
        .expect("parse");
        assert_eq!(
            cli.command,
            Command::Repair {
                target: RepairTarget::Brick(2),
                stripes: 1024,
                stripes_per_sec: 50,
                bytes_per_sec: 1_048_576,
                max_inflight: 8,
                node: 1,
            }
        );

        let cli = parse_args(&with_base(&["repair", "--all", "--stripes", "64"])).expect("parse");
        assert_eq!(
            cli.command,
            Command::Repair {
                target: RepairTarget::All,
                stripes: 64,
                stripes_per_sec: 0,
                bytes_per_sec: 0,
                max_inflight: 4,
                node: 0,
            }
        );

        let cli = parse_args(&with_base(&["repair-status", "--node", "2"])).expect("parse");
        assert_eq!(cli.command, Command::RepairStatus { node: 2 });
        let cli = parse_args(&with_base(&["repair-abort"])).expect("parse");
        assert_eq!(cli.command, Command::RepairAbort { node: 0 });
    }

    #[test]
    fn parses_stats_verb() {
        let cli = parse_args(&with_base(&["stats"])).expect("parse");
        assert_eq!(
            cli.command,
            Command::Stats {
                node: 0,
                watch: false
            }
        );
        let cli = parse_args(&with_base(&["stats", "--node", "2", "--watch"])).expect("parse");
        assert_eq!(
            cli.command,
            Command::Stats {
                node: 2,
                watch: true
            }
        );
        // The node bound applies to stats like every admin verb.
        let err = parse_args(&with_base(&["stats", "--node", "9"])).unwrap_err();
        assert!(err.contains("--node"), "{err}");
        // Trailing operands are malformed.
        let err = parse_args(&with_base(&["stats", "extra"])).unwrap_err();
        assert!(err.contains("command"), "{err}");
    }

    #[test]
    fn repair_rejects_a_bad_brick_id() {
        let err = parse_args(&with_base(&["repair", "banana", "--stripes", "8"])).unwrap_err();
        assert!(err.contains("brick id"), "{err}");
        let err = parse_args(&with_base(&["repair", "-1", "--stripes", "8"])).unwrap_err();
        assert!(err.contains("brick id"), "{err}");
    }

    #[test]
    fn repair_requires_the_volume_size() {
        let err = parse_args(&with_base(&["repair", "2"])).unwrap_err();
        assert!(err.contains("--stripes"), "{err}");
        let err = parse_args(&with_base(&["repair", "--all"])).unwrap_err();
        assert!(err.contains("--stripes"), "{err}");
    }

    #[test]
    fn repair_rejects_conflicting_target_flags() {
        let err =
            parse_args(&with_base(&["repair", "2", "--all", "--stripes", "8"])).unwrap_err();
        assert!(err.contains("conflicting"), "{err}");
        // A bare `repair` names neither target.
        let err = parse_args(&with_base(&["repair"])).unwrap_err();
        assert!(err.contains("BRICK") && err.contains("--all"), "{err}");
    }

    #[test]
    fn repair_node_must_be_in_the_cluster() {
        let err = parse_args(&with_base(&["repair-status", "--node", "9"])).unwrap_err();
        assert!(err.contains("--node"), "{err}");
        let err = parse_args(&with_base(&["repair-status", "--node", "x"])).unwrap_err();
        assert!(err.contains("--node"), "{err}");
    }
}
