//! `fabd` — one FAB brick per process.
//!
//! ```text
//! fabd --node I --cluster HOST:PORT,HOST:PORT,... --m M --block-size BYTES
//!      [--store DIR] [--drop-prob P]
//! ```
//!
//! Binds the `I`-th cluster address, joins the cluster, and serves until
//! killed. All bricks (and every `fab-cli`) must be started with the same
//! `--cluster`, `--m`, and `--block-size`; there is no on-wire
//! negotiation — config skew surfaces as `InvalidRequest` rejections, and
//! version skew is rejected by the frame header.

use fab_core::RegisterConfig;
use fab_net::{BrickNode, NodeConfig};
use fab_timestamp::ProcessId;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: fabd --node I --cluster HOST:PORT,... --m M --block-size BYTES \
[--store DIR] [--drop-prob P]";

struct Args {
    node: u32,
    cluster: Vec<SocketAddr>,
    m: usize,
    block_size: usize,
    store: Option<PathBuf>,
    drop_prob: f64,
}

fn next_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
    what: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs {what}"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut node = None;
    let mut cluster = None;
    let mut m = None;
    let mut block_size = None;
    let mut store = None;
    let mut drop_prob = 0.0;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| next_value(&mut it, flag, what);
        match flag.as_str() {
            "--node" => {
                node = Some(
                    value("a brick index")?
                        .parse::<u32>()
                        .map_err(|e| format!("--node: {e}"))?,
                );
            }
            "--cluster" => {
                let addrs: Result<Vec<SocketAddr>, _> = value("a comma-separated address list")?
                    .split(',')
                    .map(str::parse)
                    .collect();
                cluster = Some(addrs.map_err(|e| format!("--cluster: {e}"))?);
            }
            "--m" => {
                m = Some(
                    value("a stripe width")?
                        .parse::<usize>()
                        .map_err(|e| format!("--m: {e}"))?,
                );
            }
            "--block-size" => {
                block_size = Some(
                    value("a byte count")?
                        .parse::<usize>()
                        .map_err(|e| format!("--block-size: {e}"))?,
                );
            }
            "--store" => store = Some(PathBuf::from(value("a directory")?)),
            "--drop-prob" => {
                drop_prob = value("a probability")?
                    .parse::<f64>()
                    .map_err(|e| format!("--drop-prob: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        node: node.ok_or("--node is required")?,
        cluster: cluster.ok_or("--cluster is required")?,
        m: m.ok_or("--m is required")?,
        block_size: block_size.ok_or("--block-size is required")?,
        store,
        drop_prob,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fabd: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let register = match RegisterConfig::new(args.m, args.cluster.len(), args.block_size) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("fabd: invalid configuration: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(&addr) = args.cluster.get(args.node as usize) else {
        eprintln!(
            "fabd: --node {} out of range for a {}-brick cluster",
            args.node,
            args.cluster.len()
        );
        return ExitCode::from(2);
    };
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fabd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = NodeConfig::new(ProcessId::new(args.node), args.cluster, register);
    cfg.store_dir = args.store;
    let node = match BrickNode::spawn(cfg, listener) {
        Ok(node) => node,
        Err(e) => {
            eprintln!("fabd: cannot start brick: {e}");
            return ExitCode::FAILURE;
        }
    };
    node.set_drop_probability(args.drop_prob);
    println!("fabd: brick {} serving on {addr}", args.node);
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
