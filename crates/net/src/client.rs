//! The client side: a blocking, fail-over TCP client for a FAB cluster.
//!
//! [`NetClient`] mirrors `fab_runtime::RuntimeClient`'s behavior over real
//! sockets: requests rotate across bricks (any brick can coordinate any
//! operation — Figure 1's decentralized access), and a brick that fails to
//! answer within the per-attempt timeout is simply skipped. No failure
//! detector is needed; a connection error *is* the signal to try the next
//! brick (§1.3).
//!
//! The `try_*` methods surface transport failures as typed
//! [`NetClientError`]s; the [`RegisterClient`] implementation panics on
//! transport failure like `fab-volume`'s runtime client does, which is the
//! contract the volume layer expects (an unreachable cluster is an
//! environment bug in tests, not a recoverable state).

use crate::transport::{read_frame, RecvError};
use bytes::Bytes;
use fab_core::{OpResult, RegisterConfig, StripeId};
use fab_volume::RegisterClient;
use fab_wire::{
    encode_admin_request_into, encode_client_request_into, AdminOp, AdminResponse, ClientError,
    ClientOp, Message,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a client operation failed at the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetClientError {
    /// No brick produced an answer within the retry budget.
    Unavailable,
    /// A brick answered with a typed rejection (malformed request).
    Rejected(ClientError),
}

impl std::fmt::Display for NetClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetClientError::Unavailable => {
                write!(f, "no brick answered within the retry budget")
            }
            NetClientError::Rejected(e) => write!(f, "request rejected: {e}"),
        }
    }
}

impl std::error::Error for NetClientError {}

/// A blocking client for a TCP brick cluster.
///
/// Connections are opened lazily, cached per brick, and discarded on any
/// error; correlation ids pair replies with requests so a stale reply on a
/// reused connection can never be mistaken for the current one.
#[derive(Debug)]
#[must_use]
pub struct NetClient {
    cluster: Vec<SocketAddr>,
    cfg: RegisterConfig,
    conns: Vec<Option<TcpStream>>,
    next: usize,
    next_id: u64,
    /// Reused request-encoding buffer: the steady-state request path
    /// allocates nothing per operation.
    encode_buf: Vec<u8>,
    /// Per-attempt budget: connect + write + read of one request.
    pub attempt_timeout: Duration,
    /// How many full passes over the cluster to make before giving up
    /// (with a short pause between passes, so a restarting brick gets a
    /// chance to come back).
    pub max_rounds: u32,
}

impl NetClient {
    /// Creates a client for `cluster` (no connections are opened yet).
    ///
    /// `cfg` must match the bricks' configuration; there is no negotiation
    /// on the wire (version skew is caught by the frame header, config
    /// skew by `InvalidRequest` rejections).
    pub fn connect(cluster: Vec<SocketAddr>, cfg: RegisterConfig) -> Self {
        let n = cluster.len();
        NetClient {
            cluster,
            cfg,
            conns: (0..n).map(|_| None).collect(),
            next: 0,
            next_id: 1,
            encode_buf: Vec::new(),
            attempt_timeout: Duration::from_secs(5),
            max_rounds: 8,
        }
    }

    /// One request/reply exchange against brick `target`. Any failure
    /// invalidates the cached connection.
    fn try_brick(
        &mut self,
        target: usize,
        op: &ClientOp,
    ) -> Result<Result<OpResult, ClientError>, ()> {
        let addr = *self.cluster.get(target).ok_or(())?;
        let id = self.next_id;
        self.next_id += 1;
        self.encode_buf.clear();
        encode_client_request_into(id, op, &mut self.encode_buf);
        let frame = std::mem::take(&mut self.encode_buf);
        let attempt_timeout = self.attempt_timeout;

        let slot = self.conns.get_mut(target).ok_or(())?;
        if slot.is_none() {
            let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))
                .map_err(|_| ())?;
            let _ = stream.set_nodelay(true);
            *slot = Some(stream);
        }
        let stream = slot.as_mut().ok_or(())?;
        let _ = stream.set_read_timeout(Some(attempt_timeout));
        let _ = stream.set_write_timeout(Some(attempt_timeout));
        let outcome = (|| {
            stream.write_all(&frame).map_err(|_| ())?;
            loop {
                match read_frame(stream) {
                    // Defensive: ignore replies to correlation ids we have
                    // given up on (possible only if a timeout policy ever
                    // keeps a connection — today every failure drops it).
                    Ok((Message::ClientReply { id: got, result }, _)) if got == id => {
                        return Ok(result);
                    }
                    Ok((Message::ClientReply { .. }, _)) => continue,
                    Ok(_) => return Err(()), // peers never talk to clients
                    Err(RecvError::Closed | RecvError::Io(_) | RecvError::Wire(_)) => {
                        return Err(());
                    }
                }
            }
        })();
        if outcome.is_err() {
            *slot = None; // poisoned: mid-stream state is unknowable
        }
        self.encode_buf = frame; // keep the capacity for the next request
        outcome
    }

    /// Runs one register operation with rotation and fail-over.
    ///
    /// # Errors
    ///
    /// [`NetClientError::Rejected`] if a brick refuses the request as
    /// malformed (retrying elsewhere cannot help);
    /// [`NetClientError::Unavailable`] when the retry budget is exhausted.
    pub fn try_invoke(&mut self, op: &ClientOp) -> Result<OpResult, NetClientError> {
        let n = self.cluster.len().max(1);
        for round in 0..self.max_rounds {
            for _ in 0..n {
                let target = self.next % n;
                self.next = self.next.wrapping_add(1);
                match self.try_brick(target, op) {
                    Ok(Ok(result)) => return Ok(result),
                    Ok(Err(ClientError::InvalidRequest)) => {
                        return Err(NetClientError::Rejected(ClientError::InvalidRequest));
                    }
                    // `Unavailable` (brick shutting down) and transport
                    // errors both mean: try the next brick.
                    Ok(Err(_)) | Err(()) => continue,
                }
            }
            if round + 1 < self.max_rounds {
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        Err(NetClientError::Unavailable)
    }

    /// Reads a whole stripe.
    ///
    /// # Errors
    ///
    /// See [`NetClient::try_invoke`].
    pub fn try_read_stripe(&mut self, stripe: StripeId) -> Result<OpResult, NetClientError> {
        self.try_invoke(&ClientOp::ReadStripe { stripe })
    }

    /// Writes a whole stripe (exactly `m` blocks of `block_size` bytes).
    ///
    /// # Errors
    ///
    /// See [`NetClient::try_invoke`].
    pub fn try_write_stripe(
        &mut self,
        stripe: StripeId,
        blocks: Vec<Bytes>,
    ) -> Result<OpResult, NetClientError> {
        self.try_invoke(&ClientOp::WriteStripe { stripe, blocks })
    }

    /// Reads one block.
    ///
    /// # Errors
    ///
    /// See [`NetClient::try_invoke`].
    pub fn try_read_block(
        &mut self,
        stripe: StripeId,
        j: usize,
    ) -> Result<OpResult, NetClientError> {
        let j = u32::try_from(j).unwrap_or(u32::MAX);
        self.try_invoke(&ClientOp::ReadBlock { stripe, j })
    }

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// See [`NetClient::try_invoke`].
    pub fn try_write_block(
        &mut self,
        stripe: StripeId,
        j: usize,
        block: Bytes,
    ) -> Result<OpResult, NetClientError> {
        let j = u32::try_from(j).unwrap_or(u32::MAX);
        self.try_invoke(&ClientOp::WriteBlock { stripe, j, block })
    }

    /// Reads several blocks of one stripe in one operation.
    ///
    /// # Errors
    ///
    /// See [`NetClient::try_invoke`].
    pub fn try_read_blocks(
        &mut self,
        stripe: StripeId,
        js: Vec<usize>,
    ) -> Result<OpResult, NetClientError> {
        let js = js
            .into_iter()
            .map(|j| u32::try_from(j).unwrap_or(u32::MAX))
            .collect();
        self.try_invoke(&ClientOp::ReadBlocks { stripe, js })
    }

    /// Writes several blocks of one stripe in one operation.
    ///
    /// # Errors
    ///
    /// See [`NetClient::try_invoke`].
    pub fn try_write_blocks(
        &mut self,
        stripe: StripeId,
        updates: Vec<(usize, Bytes)>,
    ) -> Result<OpResult, NetClientError> {
        let updates = updates
            .into_iter()
            .map(|(j, b)| (u32::try_from(j).unwrap_or(u32::MAX), b))
            .collect();
        self.try_invoke(&ClientOp::WriteBlocks { stripe, updates })
    }

    /// Scrubs a stripe.
    ///
    /// # Errors
    ///
    /// See [`NetClient::try_invoke`].
    pub fn try_scrub(&mut self, stripe: StripeId) -> Result<OpResult, NetClientError> {
        self.try_invoke(&ClientOp::Scrub { stripe })
    }

    /// One admin request/reply exchange against brick `target`. Any
    /// failure invalidates the cached connection (same contract as
    /// `try_brick`).
    fn try_admin_brick(
        &mut self,
        target: usize,
        op: &AdminOp,
    ) -> Result<Result<AdminResponse, ClientError>, ()> {
        let addr = *self.cluster.get(target).ok_or(())?;
        let id = self.next_id;
        self.next_id += 1;
        self.encode_buf.clear();
        encode_admin_request_into(id, op, &mut self.encode_buf);
        let frame = std::mem::take(&mut self.encode_buf);
        let attempt_timeout = self.attempt_timeout;

        let slot = self.conns.get_mut(target).ok_or(())?;
        if slot.is_none() {
            let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))
                .map_err(|_| ())?;
            let _ = stream.set_nodelay(true);
            *slot = Some(stream);
        }
        let stream = slot.as_mut().ok_or(())?;
        let _ = stream.set_read_timeout(Some(attempt_timeout));
        let _ = stream.set_write_timeout(Some(attempt_timeout));
        let outcome = (|| {
            stream.write_all(&frame).map_err(|_| ())?;
            loop {
                match read_frame(stream) {
                    Ok((Message::AdminReply { id: got, result }, _)) if got == id => {
                        return Ok(result);
                    }
                    // A stale client or admin reply on a reused connection.
                    Ok((Message::AdminReply { .. } | Message::ClientReply { .. }, _)) => continue,
                    Ok(_) => return Err(()), // peers never talk to clients
                    Err(RecvError::Closed | RecvError::Io(_) | RecvError::Wire(_)) => {
                        return Err(());
                    }
                }
            }
        })();
        if outcome.is_err() {
            *slot = None; // poisoned: mid-stream state is unknowable
        }
        self.encode_buf = frame; // keep the capacity for the next request
        outcome
    }

    /// Runs one admin operation against a *specific* brick (repair is
    /// orchestrated by the node it was started on, so admin traffic does
    /// not rotate). Retries `max_rounds` times with a short pause so a
    /// restarting brick gets a chance to come back.
    ///
    /// # Errors
    ///
    /// [`NetClientError::Rejected`] if the brick refuses the request;
    /// [`NetClientError::Unavailable`] when the retry budget is exhausted.
    pub fn try_admin(
        &mut self,
        target: usize,
        op: &AdminOp,
    ) -> Result<AdminResponse, NetClientError> {
        for round in 0..self.max_rounds {
            match self.try_admin_brick(target, op) {
                Ok(Ok(resp)) => return Ok(resp),
                Ok(Err(ClientError::InvalidRequest)) => {
                    return Err(NetClientError::Rejected(ClientError::InvalidRequest));
                }
                Ok(Err(_)) | Err(()) => {}
            }
            if round + 1 < self.max_rounds {
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        Err(NetClientError::Unavailable)
    }
}

impl RegisterClient for NetClient {
    fn config(&self) -> RegisterConfig {
        self.cfg.clone()
    }

    fn read_stripe(&mut self, stripe: StripeId) -> OpResult {
        self.try_read_stripe(stripe).expect("fab cluster reachable")
    }

    fn write_stripe(&mut self, stripe: StripeId, blocks: Vec<Bytes>) -> OpResult {
        self.try_write_stripe(stripe, blocks)
            .expect("fab cluster reachable")
    }

    fn read_block(&mut self, stripe: StripeId, j: usize) -> OpResult {
        self.try_read_block(stripe, j)
            .expect("fab cluster reachable")
    }

    fn write_block(&mut self, stripe: StripeId, j: usize, block: Bytes) -> OpResult {
        self.try_write_block(stripe, j, block)
            .expect("fab cluster reachable")
    }

    fn read_blocks(&mut self, stripe: StripeId, js: Vec<usize>) -> OpResult {
        self.try_read_blocks(stripe, js)
            .expect("fab cluster reachable")
    }

    fn write_blocks(&mut self, stripe: StripeId, updates: Vec<(usize, Bytes)>) -> OpResult {
        self.try_write_blocks(stripe, updates)
            .expect("fab cluster reachable")
    }

    fn scrub(&mut self, stripe: StripeId) -> OpResult {
        self.try_scrub(stripe).expect("fab cluster reachable")
    }
}
