//! `fab-net` — real TCP transport and multi-process brick cluster for the
//! FAB storage-register protocol.
//!
//! This is the third substrate for the *same* sans-io protocol state
//! machines ([`fab_core::Coordinator`] / [`fab_core::Replica`]):
//!
//! | substrate     | network                | purpose                    |
//! |---------------|------------------------|----------------------------|
//! | `fab-simnet`  | deterministic schedule | asynchrony/fault hunting   |
//! | `fab-runtime` | crossbeam channels     | threaded in-process runs   |
//! | **`fab-net`** | TCP (`fab-wire` codec) | multi-process deployment   |
//!
//! A [`BrickNode`] is one brick: an event-loop thread running the
//! coordinator and replica, an accept loop feeding per-connection reader
//! threads, and one writer thread per peer with reconnect + capped
//! exponential backoff ([`fab_simnet::Backoff`]). Links are **fair-loss**
//! — exactly the model the protocol was proved against — so a down
//! connection drops frames (counted, never buffered unboundedly) and the
//! coordinator's retransmission timers carry the operation. Fault
//! injection shares the simulator's [`fab_simnet::FaultPlan`] semantics.
//!
//! [`NetClient`] is the client half: rotate coordinators across bricks,
//! fail over on connection errors, no failure detector. It implements
//! [`fab_volume::RegisterClient`], so a virtual disk can run over a real
//! cluster unchanged.
//!
//! The `fabd` binary serves one brick per process; `fab-cli` drives a
//! cluster from the command line. See the repository README for the
//! five-brick localhost quickstart.
//!
//! # Quick start (in-process loopback cluster)
//!
//! ```
//! use fab_net::{BrickNode, NetClient, NodeConfig};
//! use fab_core::{OpResult, RegisterConfig, StripeId, StripeValue};
//! use fab_timestamp::ProcessId;
//! use bytes::Bytes;
//! use std::net::TcpListener;
//!
//! // Bind three ports first so every brick knows the full cluster map.
//! let listeners: Vec<TcpListener> =
//!     (0..3).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
//! let cluster: Vec<_> =
//!     listeners.iter().map(|l| l.local_addr()).collect::<Result<_, _>>()?;
//!
//! let cfg = RegisterConfig::new(2, 3, 64)?; // 2-of-3, 64-byte blocks
//! let nodes: Vec<BrickNode> = listeners
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, l)| {
//!         BrickNode::spawn(
//!             NodeConfig::new(ProcessId::new(i as u32), cluster.clone(), cfg.clone()),
//!             l,
//!         )
//!     })
//!     .collect::<Result<_, _>>()?;
//!
//! let mut client = NetClient::connect(cluster, cfg);
//! let stripe: Vec<Bytes> = vec![Bytes::from(vec![1u8; 64]), Bytes::from(vec![2u8; 64])];
//! assert_eq!(client.try_write_stripe(StripeId(0), stripe.clone())?, OpResult::Written);
//! assert_eq!(
//!     client.try_read_stripe(StripeId(0))?,
//!     OpResult::Stripe(StripeValue::Data(stripe))
//! );
//! for node in nodes {
//!     node.shutdown();
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod server;
pub(crate) mod sys;
pub mod transport;

pub use client::{NetClient, NetClientError};
pub use server::{BrickNode, CommitMode, NodeConfig, TransportMetrics, WRITE_TIMEOUT};
pub use transport::{
    read_frame, BufferPool, CounterSnapshot, PeerCounters, PeerSender, RecvError,
    CONNECT_TIMEOUT, MAX_COALESCED_BYTES, MAX_COALESCED_FRAMES,
};
