//! The brick server: one OS process (or one [`BrickNode`] in tests) = one
//! brick of the FAB cluster, serving both peers and clients over TCP.
//!
//! The event loop is the same shape as `fab-runtime`'s threaded brick —
//! the sans-io [`Coordinator`]/[`Replica`] state machines are reused
//! byte-for-byte; only the [`Effects`] implementation differs. Here,
//! `send` encodes the envelope with `fab-wire` and hands the frame to a
//! [`PeerSender`] writer thread (fair-loss, reconnect with backoff), and
//! incoming frames arrive from per-connection reader threads feeding one
//! crossbeam channel.
//!
//! Failure philosophy: **network input never panics** (hostile frames are
//! counted and the connection closed), and **disk failure fences the
//! brick** — a brick whose store cannot append stops participating
//! entirely rather than acknowledging writes it did not persist. A fenced
//! or shut-down brick is indistinguishable from a crashed one, which is
//! exactly the fault model the protocol tolerates.

use crate::transport::{read_frame, BufferPool, PeerCounters, PeerSender, RecvError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fab_core::{
    Completion, Coordinator, Effects, Envelope, OpResult, Payload, RegisterConfig, Replica,
    StripeId,
};
use fab_repair::{plan_brick_rebuild, plan_full_scrub, DriverConfig, InProcRepair};
use fab_simnet::{Backoff, FaultPlan};
use fab_store::{BrickStore, CommitPipeline, StripeState};
use fab_timestamp::ProcessId;
use fab_volume::{Layout, VolumeGeometry};
use fab_wire::{
    encode_admin_reply_into, encode_client_reply_into, encode_peer_message_into, AdminOp,
    AdminResponse, ClientError, ClientOp, Message, RepairProgress, StatsEntry,
    StatsHistogramEntry, StatsReport,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bound on a blocking socket write (a stalled peer or client must not
/// wedge the server's event loop or a writer thread forever).
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Compact the durable log once this many records have accumulated.
const COMPACT_THRESHOLD: u64 = 50_000;

/// How many idle encode buffers a brick retains for reuse.
const POOL_CAPACITY: usize = 256;

/// How a durable brick schedules its fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// One write + fsync per persist event, inline on the event loop.
    /// Simple, strictly ordered, and slow: every replica ack pays a full
    /// device flush.
    PerRecord,
    /// Group commit: persist events from concurrent requests are handed to
    /// a committer thread that coalesces them into one write + one fsync,
    /// and replica replies are released only after the covering sync
    /// (log-before-send, unchanged — just batched).
    #[default]
    Group,
}

/// Everything a brick process needs to join a cluster.
#[derive(Debug, Clone)]
#[must_use]
pub struct NodeConfig {
    /// This brick's identity; `node.index()` selects its address in
    /// `cluster`.
    pub node: ProcessId,
    /// The addresses of all `n` bricks, in process-id order.
    pub cluster: Vec<SocketAddr>,
    /// The shared register configuration (must be identical on every
    /// brick and client).
    pub register: RegisterConfig,
    /// Durable store directory (`brick-<i>.log` inside it); `None` keeps
    /// replica state in memory only.
    pub store_dir: Option<PathBuf>,
    /// Reconnect schedule for outbound peer connections.
    pub backoff: Backoff,
    /// Fsync scheduling for the durable store (ignored without a
    /// `store_dir`). Defaults to [`CommitMode::Group`].
    pub commit_mode: CommitMode,
    /// Install the `fab-obs` metrics registry (op-lifecycle instruments
    /// plus the `stats-snapshot` admin frame). On by default; the
    /// overhead smoke benchmark flips it off to measure the delta.
    pub metrics: bool,
}

impl NodeConfig {
    /// A volatile (no durable store) configuration with default backoff.
    pub fn new(node: ProcessId, cluster: Vec<SocketAddr>, register: RegisterConfig) -> Self {
        NodeConfig {
            node,
            cluster,
            register,
            store_dir: None,
            backoff: Backoff::default(),
            commit_mode: CommitMode::default(),
            metrics: true,
        }
    }

    /// Sets the durable store directory.
    pub fn with_store_dir(mut self, dir: PathBuf) -> Self {
        self.store_dir = Some(dir);
        self
    }

    /// Sets the fsync scheduling mode for the durable store.
    pub fn with_commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit_mode = mode;
        self
    }

    /// Enables or disables the metrics registry (on by default).
    pub fn with_metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }
}

/// A reply channel back to one connected client: the write half of its
/// connection, shared with the reader thread's registry.
#[derive(Debug, Clone)]
struct ClientWriter(Arc<Mutex<TcpStream>>);

/// An event delivered to the brick's event loop.
enum Event {
    /// A protocol message from a peer brick (or from ourselves — self
    /// sends loop back without touching a socket).
    Net { from: ProcessId, env: Envelope },
    /// A client request, with the connection to answer on.
    Client {
        id: u64,
        op: ClientOp,
        writer: ClientWriter,
    },
    /// An operator request (repair orchestration).
    Admin {
        id: u64,
        op: AdminOp,
        writer: ClientWriter,
    },
    /// Stop the event loop.
    Shutdown,
}

/// Transport statistics for one brick: per-peer counters plus one bucket
/// for all client connections.
#[derive(Debug, Clone)]
#[must_use]
pub struct TransportMetrics {
    /// One snapshot per peer, indexed by process id (this brick's own slot
    /// counts nothing — self sends bypass the network).
    pub peers: Vec<crate::transport::CounterSnapshot>,
    /// Aggregate counters for client connections.
    pub clients: crate::transport::CounterSnapshot,
    /// Group-commit counters (`None` unless the brick runs a durable store
    /// in [`CommitMode::Group`]).
    pub commit: Option<fab_store::CommitStats>,
    /// Encode-buffer pool `(hits, misses)`; misses stop growing once the
    /// steady-state send path is allocation-free.
    pub pool: (u64, u64),
}

// ----------------------------------------------------------- effects ------

/// The outbound half of the peer fabric: writer threads, their counters,
/// and the shared encode-buffer pool. `Arc`-shared between the event loop
/// ([`NodeIo`]) and the commit pipeline's deferred-send callbacks, which
/// run on the committer thread.
#[derive(Debug)]
struct PeerLinks {
    peers: Vec<Option<PeerSender>>,
    counters: Vec<Arc<PeerCounters>>,
    pool: Arc<BufferPool>,
}

impl PeerLinks {
    /// Hands one encoded frame to `to`'s writer thread (fair-loss).
    fn send_frame(&self, to: ProcessId, frame: Vec<u8>) {
        if let Some(Some(peer)) = self.peers.get(to.index()) {
            peer.send(frame);
        } else {
            self.pool.put(frame);
        }
    }
}

/// A peer send whose transmission is deferred until the records backing it
/// are durable (group commit's log-before-send). The drop decision and the
/// frame encoding both happen up front on the event loop — the committer
/// thread only fires pre-built sends, so fault-injection randomness stays
/// single-threaded and deterministic per brick.
enum DeferredSend {
    /// A self-send: loops back into the event loop unserialized.
    Loopback(Sender<Event>, ProcessId, Envelope),
    /// An already-encoded frame for a remote peer.
    Frame(Arc<PeerLinks>, ProcessId, Vec<u8>),
    /// Fault injection chose to drop this send (already counted).
    Dropped,
}

impl DeferredSend {
    fn fire(self) {
        match self {
            DeferredSend::Loopback(tx, from, env) => {
                let _ = tx.send(Event::Net { from, env });
            }
            DeferredSend::Frame(links, to, frame) => links.send_frame(to, frame),
            DeferredSend::Dropped => {}
        }
    }
}

/// The brick's durable half: how persist events reach disk.
enum Durable {
    /// No store: replica state is memory-only.
    None,
    /// [`CommitMode::PerRecord`] — the store lives on the event loop and
    /// every record is synced inline.
    PerRecord(BrickStore),
    /// [`CommitMode::Group`] — the store lives on a committer thread that
    /// batches records and releases replies after the covering sync.
    Group(CommitPipeline),
}

/// The I/O half of the brick: frame encoding + peer writer threads on the
/// way out, deadline timers, clock, randomness. Implements [`Effects`].
struct NodeIo {
    pid: ProcessId,
    links: Arc<PeerLinks>,
    self_tx: Sender<Event>,
    faults: Arc<FaultPlan>,
    epoch: Instant,
    rng: SmallRng,
    next_timer: u64,
    timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    cancelled: HashSet<u64>,
}

impl NodeIo {
    fn next_deadline(&self) -> Option<Instant> {
        self.timers.peek().map(|r| r.0 .0)
    }

    fn due_timers(&mut self) -> Vec<u64> {
        let now = Instant::now();
        let mut due = Vec::new();
        while let Some(std::cmp::Reverse((at, id))) = self.timers.peek().copied() {
            if at > now {
                break;
            }
            self.timers.pop();
            if !self.cancelled.remove(&id) {
                due.push(id);
            }
        }
        due
    }
}

impl NodeIo {
    /// Builds the deferred form of `send`: decides fault injection and
    /// encodes the frame *now* (event-loop side), returning a value the
    /// committer thread can fire after the covering sync.
    fn defer_send(&mut self, to: ProcessId, env: Envelope) -> DeferredSend {
        if to == self.pid {
            return DeferredSend::Loopback(self.self_tx.clone(), self.pid, env);
        }
        if self.faults.should_drop(self.rng.gen_range(0..1_000_000)) {
            if let Some(c) = self.links.counters.get(to.index()) {
                c.record_drop();
            }
            return DeferredSend::Dropped;
        }
        let mut frame = self.links.pool.take();
        encode_peer_message_into(self.pid, &env, &mut frame);
        DeferredSend::Frame(self.links.clone(), to, frame)
    }
}

impl Effects for NodeIo {
    fn send(&mut self, to: ProcessId, env: Envelope) {
        self.defer_send(to, env).fire();
    }

    fn set_timer(&mut self, delay: u64) -> u64 {
        self.next_timer += 1;
        let id = self.next_timer;
        let at = Instant::now() + Duration::from_micros(delay);
        self.timers.push(std::cmp::Reverse((at, id)));
        id
    }

    fn cancel_timer(&mut self, id: u64) {
        self.cancelled.insert(id);
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn rand_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

// ------------------------------------------------------------ server ------

/// Encodes and writes one client reply; errors are ignored (a vanished
/// client needs no answer). The frame is encoded into a pooled buffer so
/// the steady-state reply path allocates nothing.
fn send_reply(
    writer: &ClientWriter,
    client_counters: &PeerCounters,
    pool: &BufferPool,
    id: u64,
    result: &Result<OpResult, ClientError>,
) {
    let mut frame = pool.take();
    encode_client_reply_into(id, result, &mut frame);
    if let Ok(mut stream) = writer.0.lock() {
        if stream.write_all(&frame).is_ok() {
            client_counters.record_sent(frame.len());
        } else {
            client_counters.record_drop();
        }
    }
    pool.put(frame);
}

/// Encodes and writes one admin reply; errors are ignored (a vanished
/// operator needs no answer).
fn send_admin_reply(
    writer: &ClientWriter,
    client_counters: &PeerCounters,
    pool: &BufferPool,
    id: u64,
    result: &Result<AdminResponse, ClientError>,
) {
    let mut frame = pool.take();
    encode_admin_reply_into(id, result, &mut frame);
    if let Ok(mut stream) = writer.0.lock() {
        if stream.write_all(&frame).is_ok() {
            client_counters.record_sent(frame.len());
        } else {
            client_counters.record_drop();
        }
    }
    pool.put(frame);
}

/// The brick's view of repair orchestration: everything needed to spawn
/// a background rebuild on demand, plus the running driver (if any).
struct RepairControl {
    /// All `n` brick addresses — repair workers are ordinary [`crate::NetClient`]s.
    cluster: Vec<SocketAddr>,
    /// Durable cursor location (`None` without a store: a volatile brick
    /// restarts its repair from scratch, which is safe — just slower).
    cursor_path: Option<PathBuf>,
    /// The running (or last finished) repair.
    repair: Option<InProcRepair>,
}

/// The brick's event-loop state (runs on its own thread).
struct NodeServer {
    cfg: Arc<RegisterConfig>,
    replicas: HashMap<StripeId, Replica>,
    coordinator: Coordinator,
    io: NodeIo,
    inbox: Receiver<Event>,
    /// Pending client replies, keyed by coordinator operation id.
    waiting: HashMap<u64, (u64, ClientWriter)>,
    client_counters: Arc<PeerCounters>,
    durable: Durable,
    repair: RepairControl,
    /// The node's metrics registry (`None` when the config disabled it).
    obs: Option<Arc<fab_obs::Registry>>,
    /// Set when the durable store fails: the brick stops participating
    /// (indistinguishable from a crash, which the protocol tolerates).
    failed: bool,
}

impl NodeServer {
    fn run(mut self) {
        loop {
            let event = match self.io.next_deadline() {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    match self.inbox.recv_timeout(timeout) {
                        Ok(ev) => Some(ev),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.inbox.recv() {
                    Ok(ev) => Some(ev),
                    Err(_) => return,
                },
            };
            // A fenced commit pipeline means some batch failed to reach
            // disk: stop participating before touching another event.
            if !self.failed {
                if let Durable::Group(pipeline) = &self.durable {
                    if pipeline.is_fenced() {
                        self.fence("commit pipeline fenced");
                    }
                }
            }
            if let Some(event) = event {
                match event {
                    Event::Shutdown => {
                        if let Some(r) = &self.repair.repair {
                            r.abort(); // the orchestrator thread winds down on its own
                        }
                        self.refuse_waiting();
                        return;
                    }
                    Event::Net { .. } if self.failed => {} // fenced brick is silent
                    Event::Client { id, writer, .. } if self.failed => {
                        send_reply(
                            &writer,
                            &self.client_counters,
                            &self.io.links.pool,
                            id,
                            &Err(ClientError::Unavailable),
                        );
                    }
                    Event::Admin { id, writer, .. } if self.failed => {
                        send_admin_reply(
                            &writer,
                            &self.client_counters,
                            &self.io.links.pool,
                            id,
                            &Err(ClientError::Unavailable),
                        );
                    }
                    Event::Net { from, env } => self.on_net(from, &env),
                    Event::Client { id, op, writer } => self.on_client(id, op, &writer),
                    Event::Admin { id, op, writer } => self.on_admin(id, op, &writer),
                }
            }
            if !self.failed {
                for id in self.io.due_timers() {
                    self.coordinator.on_timer(&mut self.io, id);
                }
            }
            self.deliver_completions();
        }
    }

    /// Answers every still-pending client with `Unavailable` (shutdown
    /// path; a hung client is worse than a refused one).
    fn refuse_waiting(&mut self) {
        for (_, (id, writer)) in self.waiting.drain() {
            send_reply(
                &writer,
                &self.client_counters,
                &self.io.links.pool,
                id,
                &Err(ClientError::Unavailable),
            );
        }
    }

    /// Fences the brick after a durable-store failure.
    fn fence(&mut self, why: &str) {
        eprintln!("fabd[{}]: {why}; fencing brick", self.io.pid.value());
        self.failed = true;
        self.refuse_waiting();
    }

    /// Rebuilds replica state from the durable log (startup/restart), and
    /// advances the coordinator clock past every recovered timestamp.
    fn load_from_store(&mut self) {
        let states: Vec<(StripeId, StripeState)> = match &self.durable {
            Durable::None => return,
            Durable::PerRecord(store) => store
                .stripes()
                .map(|(stripe, st)| (stripe, st.clone()))
                .collect(),
            // FIFO barrier: the snapshot reflects every prior submission.
            Durable::Group(pipeline) => pipeline.states(),
        };
        let pid = self.io.pid;
        let cfg = self.cfg.clone();
        let mut newest = fab_timestamp::Timestamp::LOW;
        self.replicas = states
            .into_iter()
            .map(|(stripe, st)| {
                newest = newest.max(st.ord_ts).max(st.log.max_ts());
                let mut r = Replica::from_parts(pid, cfg.clone(), st.ord_ts, st.log);
                r.enable_persistence();
                (stripe, r)
            })
            .collect();
        self.coordinator.observe_timestamp(newest);
    }

    fn on_net(&mut self, from: ProcessId, env: &Envelope) {
        match &env.kind {
            Payload::Request(req) => {
                let stripe = env.stripe;
                let round = env.round;
                let pid = self.io.pid;
                let cfg = self.cfg.clone();
                let durable = !matches!(self.durable, Durable::None);
                let replica = self.replicas.entry(stripe).or_insert_with(|| {
                    let mut r = Replica::new(pid, cfg);
                    if durable {
                        r.enable_persistence();
                    }
                    r
                });
                let reply = replica.handle(req);
                let persist = if durable {
                    replica.take_persist_events()
                } else {
                    Vec::new()
                };
                let reply_env = reply.map(|reply| Envelope {
                    stripe,
                    round,
                    kind: Payload::Reply(reply),
                });
                // Persist *before* replying: the reply acknowledges state
                // the paper requires to survive a crash.
                if matches!(self.durable, Durable::Group(_)) {
                    // Group commit: hand the records to the committer and
                    // defer the reply until its covering sync. Replies to
                    // requests with *no* persist events still ride the
                    // pipeline as empty barriers — they may reference state
                    // whose backing records are queued but not yet synced.
                    let records: Vec<_> =
                        persist.into_iter().map(|event| (stripe, event)).collect();
                    let send = reply_env.map(|env| self.io.defer_send(from, env));
                    if records.is_empty() && send.is_none() {
                        return; // nothing to persist, nothing to ack
                    }
                    if let Durable::Group(pipeline) = &self.durable {
                        pipeline.submit(records, move |durable| {
                            if durable {
                                if let Some(send) = send {
                                    send.fire();
                                }
                            }
                            // !durable: the pipeline fenced. Never ack
                            // state that did not reach disk; the event
                            // loop notices and fences the whole brick.
                        });
                    }
                    return;
                }
                if let Durable::PerRecord(store) = &mut self.durable {
                    for event in &persist {
                        // xtask-allow(no-blocking-on-event-loop): CommitMode::PerRecord is the documented synchronous mode — every record fsyncs inline before the reply, trading loop latency for the simplest durability story
                        if store.append(stripe, event).is_err() {
                            self.fence("store append failed");
                            return;
                        }
                    }
                    // xtask-allow(no-blocking-on-event-loop): compaction in PerRecord mode runs inline by design; pipelined deployments use Durable::Pipelined where the committer thread owns all fsyncs
                    if store.maybe_compact(COMPACT_THRESHOLD).is_err() {
                        self.fence("store compaction failed");
                        return;
                    }
                }
                if let Some(env) = reply_env {
                    self.io.send(from, env);
                }
            }
            Payload::Reply(_) => {
                self.coordinator.on_reply(&mut self.io, from, env);
            }
        }
    }

    fn on_client(&mut self, id: u64, op: ClientOp, writer: &ClientWriter) {
        let invoked = match op {
            ClientOp::ReadStripe { stripe } => {
                Ok(self.coordinator.invoke_read_stripe(&mut self.io, stripe))
            }
            ClientOp::WriteStripe { stripe, blocks } => self
                .coordinator
                .invoke_write_stripe(&mut self.io, stripe, blocks),
            ClientOp::ReadBlock { stripe, j } => {
                self.coordinator
                    .invoke_read_block(&mut self.io, stripe, j as usize)
            }
            ClientOp::WriteBlock { stripe, j, block } => {
                self.coordinator
                    .invoke_write_block(&mut self.io, stripe, j as usize, block)
            }
            ClientOp::ReadBlocks { stripe, js } => {
                let js = js.into_iter().map(|j| j as usize).collect();
                self.coordinator.invoke_read_blocks(&mut self.io, stripe, js)
            }
            ClientOp::WriteBlocks { stripe, updates } => {
                let updates: Vec<(usize, Bytes)> = updates
                    .into_iter()
                    .map(|(j, b)| (j as usize, b))
                    .collect();
                self.coordinator
                    .invoke_write_blocks(&mut self.io, stripe, updates)
            }
            ClientOp::Scrub { stripe } => Ok(self.coordinator.invoke_scrub(&mut self.io, stripe)),
        };
        match invoked {
            Ok(op_id) => {
                self.waiting.insert(op_id, (id, writer.clone()));
            }
            Err(_) => send_reply(
                writer,
                &self.client_counters,
                &self.io.links.pool,
                id,
                &Err(ClientError::InvalidRequest),
            ),
        }
    }

    /// Serves one admin operation. Start spawns the repair orchestrator on
    /// its own thread (the event loop never blocks on repair work); status
    /// and abort are answered from lock-free atomics.
    fn on_admin(&mut self, id: u64, op: AdminOp, writer: &ClientWriter) {
        let result = self.handle_admin(&op);
        send_admin_reply(
            writer,
            &self.client_counters,
            &self.io.links.pool,
            id,
            &result,
        );
    }

    fn handle_admin(&mut self, op: &AdminOp) -> Result<AdminResponse, ClientError> {
        match *op {
            AdminOp::RepairStart {
                brick,
                stripe_count,
                stripes_per_sec,
                bytes_per_sec,
                max_inflight,
                scrub_all,
            } => {
                if let Some(r) = &self.repair.repair {
                    if !r.is_done() {
                        // Idempotent: a second start while one runs is a
                        // no-op acknowledgement, not a second driver.
                        return Ok(AdminResponse::Started);
                    }
                }
                if stripe_count == 0 {
                    return Err(ClientError::InvalidRequest);
                }
                let geom = VolumeGeometry::new(
                    stripe_count,
                    self.cfg.m(),
                    self.cfg.block_size(),
                    Layout::Interleaved,
                );
                let n = u32::try_from(self.cfg.n()).unwrap_or(u32::MAX);
                let map = fab_repair::SegmentMap::full(n).map_err(|_| ClientError::InvalidRequest)?;
                let plan = if scrub_all {
                    plan_full_scrub(&geom, &map)
                } else {
                    plan_brick_rebuild(&geom, &map, brick)
                        .map_err(|_| ClientError::InvalidRequest)?
                };
                let workers = (max_inflight as usize).clamp(1, 8);
                let cfg = DriverConfig {
                    stripes_per_sec,
                    bytes_per_sec,
                    max_inflight: workers,
                    ..DriverConfig::default()
                };
                let clients: Vec<crate::NetClient> = (0..workers)
                    .map(|_| {
                        crate::NetClient::connect(
                            self.repair.cluster.clone(),
                            (*self.cfg).clone(),
                        )
                    })
                    .collect();
                let spawned = InProcRepair::spawn(
                    plan,
                    cfg,
                    clients,
                    self.repair.cursor_path.clone(),
                    None,
                )
                .map_err(|_| ClientError::Unavailable)?;
                self.repair.repair = Some(spawned);
                Ok(AdminResponse::Started)
            }
            AdminOp::RepairStatus => {
                let progress = match &self.repair.repair {
                    None => RepairProgress::default(),
                    Some(r) => {
                        let s = r.status();
                        RepairProgress {
                            planned: s.planned,
                            repaired: s.repaired,
                            skipped: s.skipped,
                            retried: s.retried,
                            failed: s.failed,
                            bytes_reconstructed: s.bytes_reconstructed,
                            throttle_waits: s.throttle_waits,
                            watermark: s.watermark,
                            scrub_p50_micros: s.scrub_p50_micros,
                            scrub_p99_micros: s.scrub_p99_micros,
                            running: !r.is_done(),
                            complete: r.is_complete(),
                        }
                    }
                };
                Ok(AdminResponse::Status(progress))
            }
            AdminOp::RepairAbort => {
                if let Some(r) = &self.repair.repair {
                    r.abort();
                }
                Ok(AdminResponse::Aborted)
            }
            AdminOp::StatsSnapshot => Ok(AdminResponse::Stats(self.stats_report())),
        }
    }

    /// Assembles the node's full metrics exposition: the `fab-obs`
    /// registry (op lifecycle, store, repair instruments) plus transport
    /// counters bridged under `net_*` names. Entries are name-sorted so
    /// the wire form matches `fab_obs::Snapshot`'s stable order.
    fn stats_report(&self) -> StatsReport {
        let mut counters: Vec<StatsEntry> = Vec::new();
        let mut gauges: Vec<StatsEntry> = Vec::new();
        let mut histograms: Vec<StatsHistogramEntry> = Vec::new();
        let counter = |counters: &mut Vec<StatsEntry>, name: &str, value: u64| {
            counters.push(StatsEntry {
                name: name.to_string(),
                value,
            });
        };
        if let Some(reg) = &self.obs {
            let snap = reg.export();
            for (name, value) in &snap.counters {
                counter(&mut counters, name, *value);
            }
            for (name, value) in &snap.gauges {
                counter(&mut gauges, name, *value);
            }
            for (name, h) in &snap.histograms {
                histograms.push(StatsHistogramEntry {
                    name: (*name).to_string(),
                    count: h.count,
                    p50: h.p50,
                    p95: h.p95,
                    p99: h.p99,
                });
            }
        }
        // Transport: per-peer counters summed into one node-level view.
        let mut peers = crate::transport::CounterSnapshot::default();
        let mut max_frames_per_write = 0u64;
        for c in &self.io.links.counters {
            let s = c.snapshot();
            peers.frames_sent += s.frames_sent;
            peers.bytes_sent += s.bytes_sent;
            peers.frames_recv += s.frames_recv;
            peers.bytes_recv += s.bytes_recv;
            peers.decode_errors += s.decode_errors;
            peers.reconnects += s.reconnects;
            peers.dropped += s.dropped;
            peers.writes += s.writes;
            peers.batched_writes += s.batched_writes;
            max_frames_per_write = max_frames_per_write.max(s.max_frames_per_write);
        }
        counter(&mut counters, "net_frames_sent", peers.frames_sent);
        counter(&mut counters, "net_bytes_sent", peers.bytes_sent);
        counter(&mut counters, "net_frames_recv", peers.frames_recv);
        counter(&mut counters, "net_bytes_recv", peers.bytes_recv);
        counter(&mut counters, "net_decode_errors", peers.decode_errors);
        counter(&mut counters, "net_reconnects", peers.reconnects);
        counter(&mut counters, "net_dropped", peers.dropped);
        counter(&mut counters, "net_writes", peers.writes);
        counter(&mut counters, "net_batched_writes", peers.batched_writes);
        counter(&mut gauges, "net_max_frames_per_write", max_frames_per_write);
        let clients = self.client_counters.snapshot();
        counter(&mut counters, "net_client_frames_sent", clients.frames_sent);
        counter(&mut counters, "net_client_frames_recv", clients.frames_recv);
        counter(&mut counters, "net_client_bytes_sent", clients.bytes_sent);
        counter(&mut counters, "net_client_bytes_recv", clients.bytes_recv);
        let (hits, misses) = self.io.links.pool.stats();
        counter(&mut counters, "net_pool_hits", hits);
        counter(&mut counters, "net_pool_misses", misses);
        counter(&mut gauges, "net_inbox_depth", self.inbox.len() as u64);
        // Group-commit pipeline. When metrics are on, the pipeline's
        // instruments are registered and already rode the registry snapshot
        // above; bridge by hand only for unregistered pipelines.
        if self.obs.is_none() {
            if let Durable::Group(pipeline) = &self.durable {
                let s = pipeline.stats_handle().stats();
                counter(&mut counters, "store_submitted", s.submitted);
                counter(&mut counters, "store_committed", s.committed);
                counter(&mut counters, "store_failed", s.failed);
                counter(&mut counters, "store_syncs", s.syncs);
                counter(&mut gauges, "store_max_batch", s.max_batch);
            }
        }
        // Repair driver (running or last finished).
        if let Some(r) = &self.repair.repair {
            let s = r.status();
            counter(&mut counters, "repair_repaired", s.repaired);
            counter(&mut counters, "repair_skipped", s.skipped);
            counter(&mut counters, "repair_retried", s.retried);
            counter(&mut counters, "repair_failed", s.failed);
            counter(
                &mut counters,
                "repair_bytes_reconstructed",
                s.bytes_reconstructed,
            );
            counter(&mut counters, "repair_throttle_waits", s.throttle_waits);
            counter(&mut gauges, "repair_planned", s.planned);
            counter(&mut gauges, "repair_watermark", s.watermark);
            counter(&mut gauges, "repair_scrub_p50_micros", s.scrub_p50_micros);
            counter(&mut gauges, "repair_scrub_p99_micros", s.scrub_p99_micros);
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        StatsReport {
            node: self.io.pid.value(),
            counters,
            gauges,
            histograms,
        }
    }

    fn deliver_completions(&mut self) {
        for Completion { op, result, .. } in self.coordinator.drain_completions() {
            if let Some((id, writer)) = self.waiting.remove(&op) {
                send_reply(
                    &writer,
                    &self.client_counters,
                    &self.io.links.pool,
                    id,
                    &Ok(result),
                );
            }
        }
    }
}

// ----------------------------------------------------- accept/readers -----

/// Accepted connections and their reader threads, for shutdown.
#[derive(Default)]
struct Registry {
    streams: Vec<TcpStream>,
    handles: Vec<JoinHandle<()>>,
}

/// One connection's reader loop: decode frames, route them to the event
/// loop, close on the first malformed frame (a peer that frames wrongly
/// once cannot be resynchronized — the stream position is lost).
fn handle_connection(
    mut stream: TcpStream,
    tx: &Sender<Event>,
    counters: &[Arc<PeerCounters>],
    client_counters: &Arc<PeerCounters>,
) {
    let writer = match stream.try_clone() {
        Ok(clone) => {
            let _ = clone.set_write_timeout(Some(WRITE_TIMEOUT));
            ClientWriter(Arc::new(Mutex::new(clone)))
        }
        Err(_) => return,
    };
    loop {
        match read_frame(&mut stream) {
            Ok((Message::Peer { from, env }, len)) => {
                if let Some(c) = counters.get(from.index()) {
                    c.record_recv(len);
                }
                if tx.send(Event::Net { from, env }).is_err() {
                    return;
                }
            }
            Ok((Message::ClientRequest { id, op }, len)) => {
                client_counters.record_recv(len);
                let writer = writer.clone();
                if tx.send(Event::Client { id, op, writer }).is_err() {
                    return;
                }
            }
            Ok((Message::AdminRequest { id, op }, len)) => {
                client_counters.record_recv(len);
                let writer = writer.clone();
                if tx.send(Event::Admin { id, op, writer }).is_err() {
                    return;
                }
            }
            Ok((Message::ClientReply { .. } | Message::AdminReply { .. }, _)) => {
                // A server never receives replies: schema violation.
                client_counters.record_decode_error();
                return;
            }
            Err(RecvError::Wire(_)) => {
                client_counters.record_decode_error();
                return;
            }
            Err(RecvError::Closed | RecvError::Io(_)) => return,
        }
    }
}

/// The accept loop. Owns the listener and returns it on shutdown so a
/// restarted brick can re-use the exact same bound socket (no
/// `TIME_WAIT`/rebind races in tests).
fn accept_loop(
    listener: TcpListener,
    tx: &Sender<Event>,
    counters: &[Arc<PeerCounters>],
    client_counters: &Arc<PeerCounters>,
    registry: &Mutex<Registry>,
    stop: &AtomicBool,
) -> TcpListener {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return listener; // woken by the shutdown self-connect
                }
                let _ = stream.set_nodelay(true);
                let clone = stream.try_clone();
                let tx = tx.clone();
                let counters = counters.to_vec();
                let client_counters = client_counters.clone();
                let handle = std::thread::Builder::new()
                    .name("fab-conn".to_string())
                    .spawn(move || handle_connection(stream, &tx, &counters, &client_counters));
                if let Ok(mut reg) = registry.lock() {
                    if let Ok(clone) = clone {
                        reg.streams.push(clone);
                    }
                    if let Ok(handle) = handle {
                        reg.handles.push(handle);
                    }
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return listener;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // don't spin hot.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

// --------------------------------------------------------- brick node -----

/// A running brick: event-loop thread + accept thread + per-connection
/// reader threads + per-peer writer threads.
///
/// One `BrickNode` per process is the deployment model (`fabd`); tests
/// boot several in one process to form a loopback cluster.
#[must_use]
pub struct BrickNode {
    tx: Sender<Event>,
    server: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<TcpListener>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<Mutex<Registry>>,
    faults: Arc<FaultPlan>,
    counters: Vec<Arc<PeerCounters>>,
    client_counters: Arc<PeerCounters>,
    pool: Arc<BufferPool>,
    commit_stats: Option<fab_store::CommitStatsHandle>,
    obs: Option<Arc<fab_obs::Registry>>,
    node: ProcessId,
}

impl std::fmt::Debug for BrickNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrickNode")
            .field("node", &self.node)
            .field("addr", &self.addr)
            .field("running", &self.server.is_some())
            .finish()
    }
}

impl BrickNode {
    /// Boots a brick on `listener` (already bound to
    /// `cfg.cluster[cfg.node.index()]`'s port).
    ///
    /// Taking the bound listener — rather than an address — lets a test
    /// kill a brick and restart it on the *same* socket without racing
    /// `TIME_WAIT`; [`BrickNode::shutdown`] returns the listener for
    /// exactly that purpose.
    ///
    /// Retransmission intervals below 5 ms are raised to 20 ms, as in
    /// `fab-runtime`: the simulator's tick-scale default would thrash a
    /// real network.
    ///
    /// # Errors
    ///
    /// `std::io::Error` if `cfg` is inconsistent (`cluster` length ≠ `n`,
    /// `node` out of range), the store directory cannot be opened, or a
    /// thread cannot be spawned.
    pub fn spawn(cfg: NodeConfig, listener: TcpListener) -> std::io::Result<BrickNode> {
        let NodeConfig {
            node,
            cluster,
            mut register,
            store_dir,
            backoff,
            commit_mode,
            metrics,
        } = cfg;
        if cluster.len() != register.n() || node.index() >= cluster.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "cluster has {} addresses for n={} bricks (node {})",
                    cluster.len(),
                    register.n(),
                    node.value()
                ),
            ));
        }
        if register.retransmit_interval < 5_000 {
            register.retransmit_interval = 20_000;
        }
        let register = Arc::new(register);
        let addr = listener.local_addr()?;

        let obs = metrics.then(|| Arc::new(fab_obs::Registry::new()));
        let cursor_path = store_dir
            .as_ref()
            .map(|dir| dir.join(format!("repair-{}.cursor", node.value())));
        let durable = match store_dir {
            Some(dir) => {
                std::fs::create_dir_all(&dir)?;
                let path = dir.join(format!("brick-{}.log", node.value()));
                let store = BrickStore::open(path).map_err(std::io::Error::other)?;
                match commit_mode {
                    CommitMode::PerRecord => Durable::PerRecord(store),
                    CommitMode::Group => Durable::Group(match &obs {
                        // Registered: store_* instruments ride the node's
                        // stats-snapshot exposition automatically.
                        Some(reg) => {
                            CommitPipeline::spawn_registered(store, COMPACT_THRESHOLD, reg)
                        }
                        None => CommitPipeline::spawn(store, COMPACT_THRESHOLD),
                    }),
                }
            }
            None => Durable::None,
        };
        let commit_stats = match &durable {
            Durable::Group(pipeline) => Some(pipeline.stats_handle()),
            _ => None,
        };

        let (tx, inbox) = unbounded();
        let faults = Arc::new(FaultPlan::new());
        let counters: Vec<Arc<PeerCounters>> = (0..cluster.len())
            .map(|_| Arc::new(PeerCounters::new()))
            .collect();
        let client_counters = Arc::new(PeerCounters::new());
        let pool = BufferPool::new(POOL_CAPACITY);
        let pool_handle = pool.clone();
        let peers: Vec<Option<PeerSender>> = cluster
            .iter()
            .enumerate()
            .map(|(i, peer_addr)| {
                if i == node.index() {
                    None
                } else {
                    Some(PeerSender::spawn(
                        *peer_addr,
                        backoff,
                        counters[i].clone(),
                        pool.clone(),
                    ))
                }
            })
            .collect();
        let links = Arc::new(PeerLinks {
            peers,
            counters: counters.clone(),
            pool,
        });

        let mut coordinator = Coordinator::new(node, register.clone());
        if let Some(reg) = &obs {
            coordinator.set_metrics(fab_core::OpMetrics::register(reg));
        }
        let mut server = NodeServer {
            cfg: register.clone(),
            replicas: HashMap::new(),
            coordinator,
            io: NodeIo {
                pid: node,
                links,
                self_tx: tx.clone(),
                faults: faults.clone(),
                epoch: Instant::now(),
                rng: SmallRng::seed_from_u64(0x0fab ^ u64::from(node.value())),
                next_timer: 0,
                timers: BinaryHeap::new(),
                cancelled: HashSet::new(),
            },
            inbox,
            waiting: HashMap::new(),
            client_counters: client_counters.clone(),
            durable,
            repair: RepairControl {
                cluster: cluster.clone(),
                cursor_path,
                repair: None,
            },
            obs: obs.clone(),
            failed: false,
        };
        server.load_from_store();
        let server_handle = std::thread::Builder::new()
            .name(format!("fabd-brick-{}", node.value()))
            .spawn(move || server.run())?;

        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Mutex::new(Registry::default()));
        let accept_handle = {
            let tx = tx.clone();
            let counters = counters.clone();
            let client_counters = client_counters.clone();
            let registry = registry.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("fabd-accept-{}", node.value()))
                .spawn(move || {
                    accept_loop(listener, &tx, &counters, &client_counters, &registry, &stop)
                })?
        };

        Ok(BrickNode {
            tx,
            server: Some(server_handle),
            accept: Some(accept_handle),
            addr,
            stop,
            registry,
            faults,
            counters,
            client_counters,
            pool: pool_handle,
            commit_stats,
            obs,
            node,
        })
    }

    /// The node's metrics registry (`None` when the config disabled it).
    /// The live exposition — including transport counters — is served by
    /// the `stats-snapshot` admin frame; this handle covers in-process
    /// tests and embedding.
    #[must_use]
    pub fn obs_registry(&self) -> Option<Arc<fab_obs::Registry>> {
        self.obs.clone()
    }

    /// The address this brick is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This brick's process id.
    #[must_use]
    pub fn node(&self) -> ProcessId {
        self.node
    }

    /// The brick's fault-injection plan (shared semantics with the
    /// simulator and the threaded runtime).
    #[must_use]
    pub fn fault_plan(&self) -> Arc<FaultPlan> {
        self.faults.clone()
    }

    /// Sets the probability that any outbound peer transmission is dropped
    /// (clamped into `[0, 1]`).
    pub fn set_drop_probability(&self, p: f64) {
        self.faults.set_drop_probability(p);
    }

    /// Point-in-time transport statistics.
    pub fn metrics(&self) -> TransportMetrics {
        TransportMetrics {
            peers: self.counters.iter().map(|c| c.snapshot()).collect(),
            clients: self.client_counters.snapshot(),
            commit: self.commit_stats.as_ref().map(fab_store::CommitStatsHandle::stats),
            pool: self.pool.stats(),
        }
    }

    fn shutdown_inner(&mut self) -> Option<TcpListener> {
        // 1. Stop the event loop (it refuses pending clients first).
        let _ = self.tx.send(Event::Shutdown);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
        // 2. Stop the accept loop: raise the flag, then wake it with a
        //    throwaway self-connection.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        let listener = self.accept.take().and_then(|h| h.join().ok());
        // 3. Unblock and join every reader thread by shutting its socket.
        let mut handles = Vec::new();
        if let Ok(mut reg) = self.registry.lock() {
            for s in reg.streams.drain(..) {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            handles = std::mem::take(&mut reg.handles);
        }
        for h in handles {
            let _ = h.join();
        }
        listener
    }

    /// Stops the brick — event loop, accept loop, reader threads — and
    /// returns the still-bound listener so a restarted brick can take over
    /// the same socket. Peer writer threads exit asynchronously when their
    /// channels disconnect.
    ///
    /// To the rest of the cluster this is indistinguishable from a crash:
    /// in-flight operations this brick coordinated either completed or
    /// will be recovered by the next reader (strict linearizability).
    pub fn shutdown(mut self) -> Option<TcpListener> {
        self.shutdown_inner()
    }
}

impl Drop for BrickNode {
    fn drop(&mut self) {
        if self.server.is_some() || self.accept.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}
