//! Concurrency primitives behind [`crate::transport::BufferPool`],
//! swappable for exhaustive model checking.
//!
//! Production builds use `std::sync::Mutex`; `RUSTFLAGS="--cfg loom"`
//! swaps in the workspace `loom` model checker's mutex so `tests/loom.rs`
//! can explore every take/put interleaving (see TESTING.md, tier 6).

#[cfg(loom)]
pub(crate) use loom::sync::Mutex;

#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;
