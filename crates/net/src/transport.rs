//! TCP transport primitives: outbound peer connections with reconnect and
//! capped exponential backoff, blocking framed reads, and per-peer traffic
//! counters.
//!
//! The transport offers exactly the guarantee the protocol was proved
//! against: a **fair-loss link**. A frame handed to [`PeerSender::send`]
//! is delivered at most once; if the connection is down (or fault
//! injection drops it) the frame is simply lost and the loss is counted.
//! Retransmission is the *coordinator's* job (`fab-core` timers), not the
//! transport's — buffering unbounded backlog for a dead peer would turn a
//! crashed brick into a memory leak on every live one.
//!
//! Reconnection uses the shared [`fab_simnet::Backoff`] schedule so the
//! threaded runtime, the simulator harnesses, and this transport agree on
//! fault-handling parameters.

use crate::server::WRITE_TIMEOUT;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fab_wire::{decode_body, FrameHeader, Message, WireError, HEADER_LEN, MAX_BODY_LEN};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an outbound connection attempt may block the writer thread.
pub const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Most frames a writer coalesces into one `write` syscall.
pub const MAX_COALESCED_FRAMES: usize = 64;

/// Most staged bytes a writer coalesces into one `write` syscall. A batch
/// closes as soon as it crosses this line (one oversized frame still goes
/// out alone).
pub const MAX_COALESCED_BYTES: usize = 1 << 20;

/// A bounded free-list of encoding buffers, shared between the threads
/// that encode frames and the writer threads that retire them.
///
/// The hot send path takes a buffer, encodes a frame into it with the
/// `fab-wire` `_into` encoders, and queues it; the writer copies it into
/// its staging buffer and puts it straight back. After warm-up every
/// `take` is a hit and the steady-state path allocates nothing per frame.
#[derive(Debug)]
pub struct BufferPool {
    free: crate::sys::Mutex<Vec<Vec<u8>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool retaining at most `capacity` idle buffers.
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(BufferPool {
            free: crate::sys::Mutex::new(Vec::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// An empty buffer: recycled if one is idle (hit), freshly allocated
    /// otherwise (miss).
    #[must_use]
    pub fn take(&self) -> Vec<u8> {
        // A poisoned lock (impossible in practice: no panics while held)
        // degrades to recycling anyway — the free list is a plain Vec whose
        // invariants can't be torn by an unwind — never to panicking on the
        // hot path.
        let recycled = self
            .free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        if let Some(buf) = recycled {
            self.hits.fetch_add(1, Ordering::Relaxed);
            buf
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        }
    }

    /// Returns `buf` to the free list (cleared, capacity kept). Dropped on
    /// the floor if the pool is already full.
    ///
    /// The `capacity` bound holds on *every* path, including a poisoned
    /// lock: a pool that stopped bounding itself after an unrelated panic
    /// would silently become the unbounded backlog this type exists to
    /// prevent.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self
            .free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if free.len() < self.capacity {
            free.push(buf);
        }
    }

    /// Test hook: poison the free-list lock by panicking while holding it.
    ///
    /// Only compiled for model-checking builds; lets `tests/loom.rs` prove
    /// the degraded (poisoned) path still enforces the capacity bound.
    #[cfg(loom)]
    #[doc(hidden)]
    pub fn poison_free_list(self: &Arc<Self>) {
        let me = Arc::clone(self);
        let _ = loom::thread::spawn(move || {
            // Hold the guard (inside the Ok) across the panic so the
            // unwind poisons the lock.
            let _guard = me.free.lock();
            // xtask-allow(no-panic): deliberate panic-while-locked, cfg(loom)-only, to drive the poisoned-path test
            panic!("poisoning BufferPool free list for the model checker");
        })
        .join();
    }

    /// `(hits, misses)` so far. A steady-state sender stops accumulating
    /// misses once the pool is warm.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Monotonic per-peer traffic counters, shared between the transport
/// threads and whoever wants to observe them ([`CounterSnapshot`]).
#[derive(Debug, Default)]
pub struct PeerCounters {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    decode_errors: AtomicU64,
    reconnects: AtomicU64,
    dropped: AtomicU64,
    writes: AtomicU64,
    batched_writes: AtomicU64,
    max_frames_per_write: AtomicU64,
}

impl PeerCounters {
    /// Fresh all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame of `bytes` handed to the socket.
    pub fn record_sent(&self, bytes: usize) {
        self.record_write(1, bytes);
    }

    /// Records one `write` syscall carrying `frames` coalesced frames of
    /// `bytes` total.
    pub fn record_write(&self, frames: usize, bytes: usize) {
        self.frames_sent.fetch_add(frames as u64, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        if frames > 1 {
            self.batched_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.max_frames_per_write
            .fetch_max(frames as u64, Ordering::Relaxed);
    }

    /// Records one frame of `bytes` received and decoded.
    pub fn record_recv(&self, bytes: usize) {
        self.frames_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a frame that failed to decode (hostile or corrupt input).
    pub fn record_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful re-establishment of a previously-working
    /// connection.
    pub fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a frame lost to a down link or to fault injection.
    pub fn record_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `frames` lost at once (a failed coalesced write).
    pub fn record_drops(&self, frames: usize) {
        self.dropped.fetch_add(frames as u64, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of the counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            batched_writes: self.batched_writes.load(Ordering::Relaxed),
            max_frames_per_write: self.max_frames_per_write.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counter values (see [`PeerCounters::snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct CounterSnapshot {
    /// Frames handed to the socket.
    pub frames_sent: u64,
    /// Bytes handed to the socket (headers included).
    pub bytes_sent: u64,
    /// Frames received and decoded.
    pub frames_recv: u64,
    /// Bytes received in decoded frames (headers included).
    pub bytes_recv: u64,
    /// Frames rejected by the wire decoder.
    pub decode_errors: u64,
    /// Connection re-establishments after the first success.
    pub reconnects: u64,
    /// Frames lost to a down link or to fault injection.
    pub dropped: u64,
    /// `write` syscalls issued (each may carry many frames).
    pub writes: u64,
    /// Writes that carried more than one coalesced frame.
    pub batched_writes: u64,
    /// Most frames ever coalesced into a single write.
    pub max_frames_per_write: u64,
}

/// Why a framed read from a socket failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The socket failed mid-frame (reset, timeout, shutdown).
    Io(ErrorKind),
    /// The bytes were not a valid frame or message — hostile, corrupt, or
    /// version-skewed input.
    Wire(WireError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Io(kind) => write!(f, "socket error: {kind:?}"),
            RecvError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Reads one framed [`Message`] from `stream`, blocking.
///
/// The 16-byte header is read and validated first (magic, version, kind,
/// bounded length), then exactly `body_len` bytes are read, checksummed,
/// and decoded. A length-lying header is rejected before the body buffer
/// is allocated. Returns the message and the total frame size in bytes.
///
/// # Errors
///
/// [`RecvError::Closed`] on clean EOF at a frame boundary, [`RecvError::Io`]
/// on socket failure, [`RecvError::Wire`] on any malformed input.
pub fn read_frame(stream: &mut TcpStream) -> Result<(Message, usize), RecvError> {
    let mut head = [0u8; HEADER_LEN];
    match stream.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Err(RecvError::Closed),
        Err(e) => return Err(RecvError::Io(e.kind())),
    }
    let header = FrameHeader::decode(&head).map_err(RecvError::Wire)?;
    // `decode` already rejected lengths above MAX_BODY_LEN, but the bound is
    // re-checked here, next to the allocation it protects, so the guarantee
    // survives refactors of the decoder (and L9 can see it locally).
    let body_len = header.body_len;
    if body_len > MAX_BODY_LEN {
        return Err(RecvError::Wire(WireError::BodyTooLarge {
            declared: body_len as u64,
            max: MAX_BODY_LEN as u64,
        }));
    }
    let mut body = vec![0u8; body_len];
    if let Err(e) = stream.read_exact(&mut body) {
        return Err(RecvError::Io(e.kind()));
    }
    header.verify_body(&body).map_err(RecvError::Wire)?;
    let msg = decode_body(header.kind, &body).map_err(RecvError::Wire)?;
    Ok((msg, HEADER_LEN + header.body_len))
}

/// A handle to one outbound peer connection, serviced by a writer thread.
///
/// Frames are queued on a channel; the writer thread owns the socket and
/// (re)connects lazily with [`fab_simnet::Backoff`]-scheduled retries.
/// Send semantics are fair-loss: if the link is down, the frame is dropped
/// and counted, never buffered past the queue.
#[derive(Debug)]
#[must_use]
pub struct PeerSender {
    tx: Sender<Vec<u8>>,
    handle: Option<JoinHandle<()>>,
    counters: Arc<PeerCounters>,
}

impl PeerSender {
    /// Spawns the writer thread for `peer`. Frame buffers handed to
    /// [`PeerSender::send`] are retired into `pool` once their bytes are
    /// staged, so encode-side callers can take them back and reuse them.
    pub fn spawn(
        peer: SocketAddr,
        backoff: fab_simnet::Backoff,
        counters: Arc<PeerCounters>,
        pool: Arc<BufferPool>,
    ) -> Self {
        let (tx, rx) = unbounded();
        let thread_counters = counters.clone();
        let handle = std::thread::Builder::new()
            .name(format!("fab-peer-{peer}"))
            .spawn(move || writer_loop(peer, &rx, backoff, &thread_counters, &pool))
            .ok();
        PeerSender {
            tx,
            handle,
            counters,
        }
    }

    /// Queues one encoded frame for transmission (fair-loss: the frame may
    /// be dropped if the link is down).
    pub fn send(&self, frame: Vec<u8>) {
        if self.tx.send(frame).is_err() {
            self.counters.record_drop();
        }
    }

    /// This peer's traffic counters.
    #[must_use]
    pub fn counters(&self) -> &Arc<PeerCounters> {
        &self.counters
    }

    /// Stops the writer thread and joins it. Queued frames not yet written
    /// are discarded (fair-loss).
    pub fn shutdown(mut self) {
        // An empty frame can never be produced by the encoder (every frame
        // starts with a 16-byte header), so it doubles as a stop sentinel.
        let _ = self.tx.send(Vec::new());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PeerSender {
    fn drop(&mut self) {
        // Dropping the sender disconnects the channel; the writer thread
        // exits after its current frame. Joining here would risk blocking
        // drops behind a slow socket, so detach instead.
        let _ = self.tx.send(Vec::new());
    }
}

/// The writer thread: owns the socket, reconnects with backoff, coalesces
/// queued frames into single writes, drops what it cannot deliver.
///
/// After blocking for the first frame it greedily drains whatever else is
/// already queued (up to [`MAX_COALESCED_FRAMES`] / [`MAX_COALESCED_BYTES`])
/// into one reused staging buffer and issues a single `write_all`. Under
/// load this collapses dozens of per-frame syscalls into one; when idle the
/// first frame still goes out immediately — coalescing never waits.
fn writer_loop(
    peer: SocketAddr,
    rx: &Receiver<Vec<u8>>,
    backoff: fab_simnet::Backoff,
    counters: &PeerCounters,
    pool: &BufferPool,
) {
    let mut conn: Option<TcpStream> = None;
    let mut attempt: u32 = 0;
    let mut next_retry = Instant::now();
    let mut connected_before = false;
    let mut staging: Vec<u8> = Vec::new();
    while let Ok(first) = rx.recv() {
        if first.is_empty() {
            return; // stop sentinel
        }
        // Stage the first frame, then drain everything already queued.
        staging.clear();
        staging.extend_from_slice(&first);
        pool.put(first);
        let mut frames = 1usize;
        let mut stop_after_flush = false;
        while frames < MAX_COALESCED_FRAMES && staging.len() < MAX_COALESCED_BYTES {
            match rx.try_recv() {
                Ok(f) if f.is_empty() => {
                    stop_after_flush = true;
                    break;
                }
                Ok(f) => {
                    staging.extend_from_slice(&f);
                    pool.put(f);
                    frames += 1;
                }
                Err(_) => break, // queue momentarily empty: flush now
            }
        }
        if conn.is_none() && Instant::now() >= next_retry {
            match TcpStream::connect_timeout(&peer, CONNECT_TIMEOUT) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_write_timeout(Some(WRITE_TIMEOUT));
                    if connected_before {
                        counters.record_reconnect();
                    }
                    connected_before = true;
                    attempt = 0;
                    conn = Some(s);
                }
                Err(_) => {
                    next_retry =
                        Instant::now() + Duration::from_micros(backoff.delay_micros(attempt));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
        match conn.as_mut() {
            Some(s) => {
                if s.write_all(&staging).is_ok() {
                    counters.record_write(frames, staging.len());
                } else {
                    // Write failed: the link is down. Drop the whole batch
                    // (the coordinator's retransmission timer covers the
                    // loss) and schedule a reconnect.
                    conn = None;
                    counters.record_drops(frames);
                    next_retry =
                        Instant::now() + Duration::from_micros(backoff.delay_micros(attempt));
                    attempt = attempt.saturating_add(1);
                }
            }
            None => counters.record_drops(frames),
        }
        if stop_after_flush {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_simnet::Backoff;
    use fab_timestamp::{ProcessId, Timestamp};
    use fab_wire::{encode_frame, encode_peer_body, FrameKind};
    use std::net::TcpListener;

    fn peer_frame(ticks: u64) -> Vec<u8> {
        let env = fab_core::Envelope {
            stripe: fab_core::StripeId(1),
            round: ticks,
            kind: fab_core::Payload::Request(fab_core::Request::Order {
                ts: Timestamp::from_parts(ticks.max(1), ProcessId::new(0)),
            }),
        };
        encode_frame(FrameKind::Peer, &encode_peer_body(ProcessId::new(0), &env))
    }

    #[test]
    fn sender_delivers_frames_to_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let counters = Arc::new(PeerCounters::new());
        let sender = PeerSender::spawn(addr, Backoff::default(), counters.clone(), BufferPool::new(8));
        sender.send(peer_frame(7));

        let (mut conn, _) = listener.accept().unwrap();
        let (msg, len) = read_frame(&mut conn).unwrap();
        match msg {
            Message::Peer { from, env } => {
                assert_eq!(from, ProcessId::new(0));
                assert_eq!(env.round, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(len > HEADER_LEN);
        sender.shutdown();
        let snap = counters.snapshot();
        assert_eq!(snap.frames_sent, 1);
        assert_eq!(snap.bytes_sent, len as u64);
    }

    #[test]
    fn buffer_pool_bound_survives_poisoned_lock() {
        let pool = BufferPool::new(1);

        // Poison the free-list lock: panic while holding the guard.
        let poisoner = Arc::clone(&pool);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.free.lock().unwrap();
            panic!("poison the pool lock");
        }));
        assert!(pool.free.lock().is_err(), "lock should now be poisoned");

        // The degraded path must still enforce the capacity bound...
        pool.put(Vec::with_capacity(64));
        pool.put(Vec::with_capacity(64));
        assert_eq!(
            pool.free
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len(),
            1,
            "poisoned path must keep the capacity bound"
        );

        // ...and `take` must still recycle rather than always allocating.
        let _ = pool.take();
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 0));
    }

    #[test]
    fn down_link_drops_and_counts_then_reconnects() {
        // Bind a listener to learn a port, then close it: sends must drop.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let counters = Arc::new(PeerCounters::new());
        let sender = PeerSender::spawn(
            addr,
            Backoff {
                base_micros: 1_000,
                factor: 2,
                max_micros: 10_000,
            },
            counters.clone(),
            BufferPool::new(8),
        );
        for t in 0..5 {
            sender.send(peer_frame(t + 1));
            std::thread::sleep(Duration::from_millis(5));
        }
        // Everything so far was dropped (link down).
        assert!(counters.snapshot().dropped >= 1);
        assert_eq!(counters.snapshot().frames_sent, 0);

        // Revive the listener on the same port and keep sending: the
        // backoff schedule must reconnect and deliver. The port was just
        // released, so another parallel test's ephemeral bind can grab it
        // for a moment — retry instead of flaking.
        let listener = {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match TcpListener::bind(addr) {
                    Ok(l) => break l,
                    Err(e) if Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => panic!("could not rebind {addr}: {e}"),
                }
            }
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        let mut t = 100;
        while Instant::now() < deadline {
            sender.send(peer_frame(t));
            t += 1;
            std::thread::sleep(Duration::from_millis(10));
            if counters.snapshot().frames_sent > 0 {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "sender never reconnected");
        let (mut conn, _) = listener.accept().unwrap();
        let (msg, _) = read_frame(&mut conn).unwrap();
        assert!(matches!(msg, Message::Peer { .. }));
        sender.shutdown();
    }

    #[test]
    fn writer_coalesces_queued_frames_into_batched_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let counters = Arc::new(PeerCounters::new());
        let sender = PeerSender::spawn(addr, Backoff::default(), counters.clone(), BufferPool::new(64));

        // Queue a burst before the writer can connect: once the connection
        // is up, the backlog must go out in far fewer writes than frames.
        const BURST: u64 = 48;
        for t in 0..BURST {
            sender.send(peer_frame(t + 1));
        }
        let (mut conn, _) = listener.accept().unwrap();
        let mut seen = Vec::new();
        while seen.len() < BURST as usize {
            let (msg, _) = read_frame(&mut conn).unwrap();
            match msg {
                Message::Peer { env, .. } => seen.push(env.round),
                other => panic!("unexpected {other:?}"),
            }
        }
        // FIFO, nothing lost, nothing reordered by coalescing.
        assert_eq!(seen, (1..=BURST).collect::<Vec<_>>());
        // The writer records a batch *after* its write_all returns, so the
        // reader can observe all frames a beat before the counters move.
        let deadline = Instant::now() + Duration::from_secs(5);
        while counters.snapshot().frames_sent < BURST && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = counters.snapshot();
        assert_eq!(snap.frames_sent, BURST);
        assert!(
            snap.writes < snap.frames_sent,
            "coalescing must shrink syscall count: {} writes for {} frames",
            snap.writes,
            snap.frames_sent
        );
        assert!(snap.batched_writes >= 1, "at least one multi-frame write");
        assert!(snap.max_frames_per_write > 1);
        sender.shutdown();
    }

    #[test]
    fn steady_state_send_path_reuses_pooled_buffers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let counters = Arc::new(PeerCounters::new());
        let pool = BufferPool::new(8);
        let sender = PeerSender::spawn(addr, Backoff::default(), counters.clone(), pool.clone());

        // The writer only connects once the first frame is queued, so the
        // accept must not block the sending thread.
        let reader = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut n = 0u64;
            while read_frame(&mut conn).is_ok() {
                n += 1;
            }
            n
        });
        const ROUNDS: u64 = 100;
        for t in 0..ROUNDS {
            let mut buf = pool.take();
            let env = fab_core::Envelope {
                stripe: fab_core::StripeId(1),
                round: t,
                kind: fab_core::Payload::Request(fab_core::Request::Order {
                    ts: Timestamp::from_parts(t + 1, ProcessId::new(0)),
                }),
            };
            fab_wire::encode_peer_message_into(ProcessId::new(0), &env, &mut buf);
            sender.send(buf);
            // Wait until this frame is staged (and its buffer pooled).
            let deadline = Instant::now() + Duration::from_secs(10);
            while counters.snapshot().frames_sent <= t {
                assert!(Instant::now() < deadline, "frame {t} never sent");
                std::thread::yield_now();
            }
        }
        let (hits, misses) = pool.stats();
        assert_eq!(hits + misses, ROUNDS);
        // Steady state allocates nothing per frame: after the first take
        // warms the pool, every subsequent take is a hit.
        assert_eq!(misses, 1, "{misses} allocations for {ROUNDS} frames");
        sender.shutdown();
        assert_eq!(reader.join().unwrap(), ROUNDS);
    }

    #[test]
    fn buffer_pool_is_bounded_and_clears_returned_buffers() {
        let pool = BufferPool::new(2);
        let a = pool.take();
        assert!(a.is_empty());
        pool.put(vec![1, 2, 3]);
        pool.put(vec![4]);
        pool.put(vec![5]); // beyond capacity: dropped
        let b = pool.take();
        let c = pool.take();
        assert!(b.is_empty() && c.is_empty(), "returned buffers are cleared");
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (2, 1));
        // Pool drained again: next take allocates.
        let _ = pool.take();
        assert_eq!(pool.stats(), (2, 2));
    }

    #[test]
    fn read_frame_rejects_garbage_and_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Clean close: Closed.
        let c = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        drop(c);
        assert_eq!(read_frame(&mut server_side).unwrap_err(), RecvError::Closed);

        // Garbage bytes: a wire error, not a panic.
        let mut c = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        c.write_all(b"this is not a FAB frame at all!!").unwrap();
        drop(c);
        assert!(matches!(
            read_frame(&mut server_side).unwrap_err(),
            RecvError::Wire(WireError::BadMagic { .. })
        ));

        // Truncated mid-body: an I/O error (EOF inside the frame).
        let mut c = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let frame = peer_frame(3);
        c.write_all(&frame[..frame.len() - 4]).unwrap();
        drop(c);
        assert!(matches!(
            read_frame(&mut server_side).unwrap_err(),
            RecvError::Io(_)
        ));
    }
}
