//! Exhaustive interleaving checks for [`fab_net::BufferPool`].
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (CI stage 9; see
//! TESTING.md, tier 6): the pool's free-list mutex is then the workspace
//! `loom` model checker's, and these tests explore every take/put
//! schedule. Two properties:
//!
//! 1. **No double hand-out** — a recycled buffer is given to at most one
//!    taker, whatever the interleaving.
//! 2. **Poisoned-lock degradation** — after a panic poisons the free-list
//!    lock, the pool keeps recycling *and* keeps its capacity bound (it
//!    must not silently become unbounded).
#![cfg(loom)]

use fab_net::BufferPool;
use std::sync::Arc;

#[test]
fn warm_buffer_handed_out_at_most_once() {
    loom::model(|| {
        let pool = BufferPool::new(4);
        // Warm the pool with exactly one idle buffer.
        pool.put(Vec::with_capacity(64));
        let (h0, m0) = pool.stats();

        // Two threads race to take it.
        let taker = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || pool.take())
        };
        let mine = pool.take();
        let theirs = taker.join().unwrap();

        // Both got a buffer, but the single warm one went to at most one
        // of them — `hits` grew by at most 1 over the two takes.
        let (h1, m1) = pool.stats();
        assert_eq!((h1 - h0) + (m1 - m0), 2, "every take is a hit or a miss");
        assert!(h1 - h0 <= 1, "one warm buffer must not satisfy two takes");
        drop(mine);
        drop(theirs);
    });
}

#[test]
fn poisoned_lock_still_recycles_and_keeps_the_bound() {
    loom::model(|| {
        let pool = BufferPool::new(1);
        pool.poison_free_list();

        // Degraded path: two puts into a capacity-1 pool may retain only
        // one buffer...
        pool.put(Vec::with_capacity(64));
        pool.put(Vec::with_capacity(64));

        // ...so of two takes, exactly one is a hit (the retained buffer)
        // and one is a miss (the bound dropped the second put).
        let _ = pool.take();
        let _ = pool.take();
        let (hits, misses) = pool.stats();
        assert_eq!(
            (hits, misses),
            (1, 1),
            "poisoned pool must keep recycling and keep the capacity bound"
        );
    });
}
