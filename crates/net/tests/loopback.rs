//! Loopback multi-process-shaped integration tests: several [`BrickNode`]s
//! on 127.0.0.1 form a real TCP cluster inside one test process.
//!
//! The big test (`five_brick_cluster_survives_kill_and_restart`) is
//! `#[ignore]`d so plain `cargo test` stays fast; CI runs it explicitly as
//! its own stage under a wall-clock timeout (`tools/ci.sh`). It boots the
//! paper's f=1 configuration (n=5, m=3), drives concurrent client
//! workloads, kills a brick mid-workload, restarts it from its durable
//! store on the *same* listening socket, and finally feeds the observed
//! per-stripe histories to `fab-checker`'s strict-linearizability checker.

use bytes::Bytes;
use fab_checker::{History, OpRecord, ValueId, NIL};
use fab_core::{OpResult, RegisterConfig, StripeId, StripeValue};
use fab_net::{BrickNode, NetClient, NodeConfig};
use fab_timestamp::ProcessId;
use fab_wire::{AdminOp, AdminResponse, RepairProgress};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn bind_cluster(n: usize) -> (Vec<TcpListener>, Vec<std::net::SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    (listeners, addrs)
}

/// Encodes a checker value id into a full stripe of `m` blocks.
fn stripe_for(id: ValueId, m: usize, block_size: usize) -> Vec<Bytes> {
    (0..m)
        .map(|j| {
            let mut b = vec![j as u8 + 1; block_size];
            b[..8].copy_from_slice(&id.to_le_bytes());
            Bytes::from(b)
        })
        .collect()
}

/// Extracts the value id a stripe read observed (`None` for aborts).
fn value_of(result: &OpResult) -> Option<ValueId> {
    match result {
        OpResult::Stripe(StripeValue::Nil) => Some(NIL),
        OpResult::Stripe(StripeValue::Data(blocks)) => {
            let b = blocks.first()?;
            let head: [u8; 8] = b.get(..8)?.try_into().ok()?;
            Some(u64::from_le_bytes(head))
        }
        _ => None,
    }
}

#[test]
fn three_brick_loopback_smoke() {
    let m = 2;
    let block = 64;
    let (listeners, addrs) = bind_cluster(3);
    let cfg = RegisterConfig::new(m, 3, block).unwrap();
    let nodes: Vec<BrickNode> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            BrickNode::spawn(
                NodeConfig::new(ProcessId::new(i as u32), addrs.clone(), cfg.clone()),
                l,
            )
            .unwrap()
        })
        .collect();

    let mut client = NetClient::connect(addrs, cfg);
    let data = stripe_for(7, m, block);
    assert_eq!(
        client.try_write_stripe(StripeId(0), data.clone()).unwrap(),
        OpResult::Written
    );
    assert_eq!(
        client.try_read_stripe(StripeId(0)).unwrap(),
        OpResult::Stripe(StripeValue::Data(data))
    );

    // Block granularity over the wire.
    let b = Bytes::from(vec![0x5A; block]);
    assert_eq!(
        client.try_write_block(StripeId(1), 1, b.clone()).unwrap(),
        OpResult::Written
    );
    match client.try_read_block(StripeId(1), 1).unwrap() {
        OpResult::Block(v) => assert_eq!(v.materialize(block), Some(b)),
        other => panic!("unexpected {other:?}"),
    }

    // A malformed request is rejected, not retried forever.
    let err = client
        .try_write_stripe(StripeId(2), vec![Bytes::from(vec![0u8; block]); m + 1])
        .unwrap_err();
    assert!(matches!(err, fab_net::NetClientError::Rejected(_)));

    // The transport actually moved frames, and clients were served.
    let metrics = nodes[0].metrics();
    let peer_frames: u64 = metrics.peers.iter().map(|c| c.frames_sent).sum();
    assert!(peer_frames > 0, "no peer traffic recorded: {metrics:?}");
    let client_frames: u64 = nodes
        .iter()
        .map(|n| n.metrics().clients.frames_recv)
        .sum();
    assert!(client_frames > 0, "no client traffic recorded");

    for node in nodes {
        assert!(node.shutdown().is_some());
    }
}

struct SharedTrace {
    epoch: Instant,
    histories: Vec<Mutex<History>>,
    next_value: AtomicU64,
    stop: AtomicBool,
}

impl SharedTrace {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

fn worker(trace: &SharedTrace, mut client: NetClient, seed: u64) -> (u64, u64) {
    let cfg = client_cfg(&client);
    let (m, block) = (cfg.m(), cfg.block_size());
    let stripes = trace.histories.len() as u64;
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let (mut writes, mut reads) = (0u64, 0u64);
    while !trace.stop.load(Ordering::Relaxed) {
        let stripe = next() % stripes;
        if next() % 2 == 0 {
            // Write a fresh value; one logical interval spans all client
            // retries (a wider interval only weakens the check — sound).
            let id = trace.next_value.fetch_add(1, Ordering::Relaxed);
            let start = trace.now();
            let outcome = client.try_write_stripe(StripeId(stripe), stripe_for(id, m, block));
            let end = trace.now();
            let rec = match outcome {
                Ok(OpResult::Written) => OpRecord::write(id, start, end).committed(),
                // Aborted, or outcome unknown after transport failure:
                // the write may or may not have taken effect before `end`.
                _ => OpRecord::write(id, start, end),
            };
            trace.histories[stripe as usize].lock().unwrap().push(rec);
            writes += 1;
        } else {
            let start = trace.now();
            let outcome = client.try_read_stripe(StripeId(stripe));
            let end = trace.now();
            if let Ok(result) = outcome {
                if let Some(id) = value_of(&result) {
                    trace.histories[stripe as usize]
                        .lock()
                        .unwrap()
                        .push(OpRecord::read(id, start, end));
                    reads += 1;
                }
            }
        }
    }
    (writes, reads)
}

fn client_cfg(client: &NetClient) -> RegisterConfig {
    use fab_volume::RegisterClient;
    client.config()
}

/// The tentpole scenario: n=5, m=3 (f=1) over real sockets, concurrent
/// clients, one brick killed and restarted from its durable log
/// mid-workload, and the whole observed history strictly linearizable.
#[test]
#[ignore = "multi-second wall clock; run explicitly (tools/ci.sh stage 6)"]
fn five_brick_cluster_survives_kill_and_restart() {
    let (n, m, block) = (5usize, 3usize, 64usize);
    let stripes = 3usize;
    let store_root = std::env::temp_dir().join(format!("fab-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);

    let (mut listeners, addrs) = bind_cluster(n);
    let cfg = RegisterConfig::new(m, n, block).unwrap();
    let spawn_node = |i: usize, listener: TcpListener| -> BrickNode {
        let node_cfg = NodeConfig::new(ProcessId::new(i as u32), addrs.clone(), cfg.clone())
            .with_store_dir(store_root.join(format!("node-{i}")));
        BrickNode::spawn(node_cfg, listener).unwrap()
    };
    let mut nodes: Vec<Option<BrickNode>> = listeners
        .drain(..)
        .enumerate()
        .map(|(i, l)| Some(spawn_node(i, l)))
        .collect();

    let trace = Arc::new(SharedTrace {
        epoch: Instant::now(),
        histories: (0..stripes).map(|_| Mutex::new(History::new())).collect(),
        next_value: AtomicU64::new(1),
        stop: AtomicBool::new(false),
    });

    // A little background message loss makes the retransmission path real.
    for node in nodes.iter().flatten() {
        node.set_drop_probability(0.02);
    }

    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            let trace = trace.clone();
            let mut client = NetClient::connect(addrs.clone(), cfg.clone());
            client.attempt_timeout = Duration::from_millis(500);
            client.max_rounds = 12;
            std::thread::spawn(move || worker(&trace, client, w + 1))
        })
        .collect();

    // Let the workload run, then kill brick 2 mid-flight.
    std::thread::sleep(Duration::from_millis(400));
    let victim = 2usize;
    let listener = nodes[victim]
        .take()
        .unwrap()
        .shutdown()
        .expect("shutdown returns the still-bound listener");

    // The cluster (n-1 = 4 bricks ≥ quorum) keeps serving.
    std::thread::sleep(Duration::from_millis(400));

    // Restart the brick on the same socket, recovering from its log.
    nodes[victim] = Some(spawn_node(victim, listener));
    std::thread::sleep(Duration::from_millis(500));

    trace.stop.store(true, Ordering::Relaxed);
    let mut total_writes = 0;
    let mut total_reads = 0;
    for w in workers {
        let (writes, reads) = w.join().unwrap();
        total_writes += writes;
        total_reads += reads;
    }
    assert!(
        total_writes >= 10 && total_reads >= 10,
        "workload made no progress: {total_writes} writes, {total_reads} reads"
    );

    // Quiesce: stop the injected loss and give coordinators a moment to
    // finish operations whose clients already gave up (those keep running
    // server-side and can briefly conflict with new operations).
    for node in nodes.iter().flatten() {
        node.set_drop_probability(0.0);
    }
    std::thread::sleep(Duration::from_millis(300));

    // Final quiescent reads — including through the restarted brick — then
    // a scrub, then the strict-linearizability verdict. Aborted attempts
    // (lingering conflicts) are simply retried; a read that aborts has no
    // effect and imposes no history record.
    let mut client = NetClient::connect(addrs.clone(), cfg.clone());
    for s in 0..stripes {
        let mut observed = None;
        for _ in 0..40 {
            let start = trace.now();
            let result = client.try_read_stripe(StripeId(s as u64)).unwrap();
            let end = trace.now();
            if let Some(id) = value_of(&result) {
                trace.histories[s].lock().unwrap().push(OpRecord::read(id, start, end));
                observed = Some(id);
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(observed.is_some(), "stripe {s}: final read never succeeded");
        // A scrub completes by reporting the (recovered) current stripe.
        let mut scrubbed = false;
        for _ in 0..40 {
            if matches!(
                client.try_scrub(StripeId(s as u64)).unwrap(),
                OpResult::Stripe(_)
            ) {
                scrubbed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(scrubbed, "stripe {s}: scrub never completed");
    }

    for (s, history) in trace.histories.iter().enumerate() {
        let history = history.lock().unwrap();
        assert!(!history.is_empty());
        if let Err(v) = history.check() {
            panic!("stripe {s}: history not strictly linearizable: {v:?}");
        }
    }

    // The restart was visible to the transport: some peer reconnected to
    // the victim's socket.
    let reconnects: u64 = nodes
        .iter()
        .flatten()
        .map(|node| node.metrics().peers.iter().map(|c| c.reconnects).sum::<u64>())
        .sum();
    assert!(reconnects > 0, "no reconnect was ever recorded");

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&store_root);
}

fn repair_status(admin: &mut NetClient, node: usize) -> RepairProgress {
    match admin.try_admin(node, &AdminOp::RepairStatus) {
        Ok(AdminResponse::Status(p)) => p,
        other => panic!("repair-status reply: {other:?}"),
    }
}

/// Brick replacement end to end over real sockets: kill a brick, wipe its
/// durable store (a fresh disk), restart it empty, and rebuild it with the
/// admin-driven repair orchestrator while foreground clients keep writing.
/// Mid-rebuild the orchestrating node itself is crashed and restarted; the
/// re-issued repair resumes from the durable cursor in its store dir rather
/// than starting over. Afterwards the observed history must be strictly
/// linearizable and the replaced brick's store must hold rebuilt state.
#[test]
#[ignore = "multi-second wall clock; run explicitly (tools/ci.sh stage 10)"]
fn five_brick_kill_wipe_repair_rebuilds() {
    let (n, m, block) = (5usize, 3usize, 64usize);
    let stripes = 24usize;
    let store_root =
        std::env::temp_dir().join(format!("fab-repair-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);

    let (mut listeners, addrs) = bind_cluster(n);
    let cfg = RegisterConfig::new(m, n, block).unwrap();
    let spawn_node = |i: usize, listener: TcpListener| -> BrickNode {
        let node_cfg = NodeConfig::new(ProcessId::new(i as u32), addrs.clone(), cfg.clone())
            .with_store_dir(store_root.join(format!("node-{i}")));
        BrickNode::spawn(node_cfg, listener).unwrap()
    };
    let mut nodes: Vec<Option<BrickNode>> = listeners
        .drain(..)
        .enumerate()
        .map(|(i, l)| Some(spawn_node(i, l)))
        .collect();

    let trace = Arc::new(SharedTrace {
        epoch: Instant::now(),
        histories: (0..stripes).map(|_| Mutex::new(History::new())).collect(),
        next_value: AtomicU64::new(1),
        stop: AtomicBool::new(false),
    });

    // Seed most stripes with committed writes so the wiped brick has real
    // state to lose (the gaps exercise the planner's skip path).
    let mut client = NetClient::connect(addrs.clone(), cfg.clone());
    for s in 0..stripes {
        if s % 5 == 4 {
            continue;
        }
        let id = trace.next_value.fetch_add(1, Ordering::Relaxed);
        let start = trace.now();
        let result = client
            .try_write_stripe(StripeId(s as u64), stripe_for(id, m, block))
            .unwrap();
        let end = trace.now();
        assert_eq!(result, OpResult::Written, "seed write to stripe {s}");
        trace.histories[s]
            .lock()
            .unwrap()
            .push(OpRecord::write(id, start, end).committed());
    }

    // The disk dies: kill the brick and wipe its durable store, then bring
    // the replacement up empty on the same socket.
    let victim = 4usize;
    let listener = nodes[victim]
        .take()
        .unwrap()
        .shutdown()
        .expect("shutdown returns the still-bound listener");
    std::fs::remove_dir_all(store_root.join(format!("node-{victim}"))).unwrap();
    nodes[victim] = Some(spawn_node(victim, listener));

    // Foreground load keeps running throughout the rebuild.
    let workers: Vec<_> = (0..2u64)
        .map(|w| {
            let trace = trace.clone();
            let mut client = NetClient::connect(addrs.clone(), cfg.clone());
            client.attempt_timeout = Duration::from_millis(500);
            client.max_rounds = 12;
            std::thread::spawn(move || worker(&trace, client, w + 1))
        })
        .collect();

    // Start a throttled rebuild orchestrated by node 0 (the throttle keeps
    // the run long enough to crash the orchestrator mid-flight).
    let start_op = AdminOp::RepairStart {
        brick: victim as u32,
        stripe_count: stripes as u64,
        stripes_per_sec: 6,
        bytes_per_sec: 0,
        max_inflight: 2,
        scrub_all: false,
    };
    let mut admin = NetClient::connect(addrs.clone(), cfg.clone());
    assert!(matches!(
        admin.try_admin(0, &start_op).unwrap(),
        AdminResponse::Started
    ));

    // Wait until the durable cursor has demonstrably advanced...
    let deadline = Instant::now() + Duration::from_secs(30);
    let watermark_seen = loop {
        let p = repair_status(&mut admin, 0);
        if p.watermark >= 3 {
            break p.watermark;
        }
        assert!(Instant::now() < deadline, "repair watermark never advanced");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        watermark_seen < stripes as u64,
        "repair finished before the orchestrator crash; lower the throttle"
    );

    // ...then crash the orchestrating node mid-repair and restart it. Its
    // store dir (and the repair cursor inside it) survives the crash.
    let l0 = nodes[0].take().unwrap().shutdown().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    nodes[0] = Some(spawn_node(0, l0));
    std::thread::sleep(Duration::from_millis(200));

    // Re-issue the same repair: the identical plan hashes the same, so the
    // fresh driver resumes from the durable watermark instead of restarting.
    assert!(matches!(
        admin.try_admin(0, &start_op).unwrap(),
        AdminResponse::Started
    ));
    let deadline = Instant::now() + Duration::from_secs(60);
    let final_status = loop {
        let p = repair_status(&mut admin, 0);
        if !p.running {
            break p;
        }
        assert!(Instant::now() < deadline, "repair never completed: {p:?}");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        final_status.complete,
        "repair stopped incomplete: {final_status:?}"
    );
    assert_eq!(final_status.failed, 0, "{final_status:?}");
    assert_eq!(final_status.watermark, stripes as u64, "{final_status:?}");
    // Resume proof: the second run did not redo the prefix the cursor
    // already covered, so it finished fewer stripes than the whole plan.
    assert!(
        final_status.repaired + final_status.skipped < stripes as u64,
        "driver restarted from scratch instead of the cursor: {final_status:?}"
    );

    trace.stop.store(true, Ordering::Relaxed);
    let mut total_writes = 0;
    let mut total_reads = 0;
    for w in workers {
        let (writes, reads) = w.join().unwrap();
        total_writes += writes;
        total_reads += reads;
    }
    assert!(
        total_writes >= 10 && total_reads >= 10,
        "workload made no progress: {total_writes} writes, {total_reads} reads"
    );
    std::thread::sleep(Duration::from_millis(300));

    // Every stripe reads back a definite value and the per-stripe histories
    // are strictly linearizable — the rebuild never forged or lost a write.
    let mut client = NetClient::connect(addrs.clone(), cfg.clone());
    for s in 0..stripes {
        let mut observed = None;
        for _ in 0..40 {
            let start = trace.now();
            let result = client.try_read_stripe(StripeId(s as u64)).unwrap();
            let end = trace.now();
            if let Some(id) = value_of(&result) {
                trace.histories[s].lock().unwrap().push(OpRecord::read(id, start, end));
                observed = Some(id);
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(observed.is_some(), "stripe {s}: final read never succeeded");
    }
    for (s, history) in trace.histories.iter().enumerate() {
        let history = history.lock().unwrap();
        assert!(!history.is_empty());
        if let Err(v) = history.check() {
            panic!("stripe {s}: history not strictly linearizable: {v:?}");
        }
    }

    // The replaced brick's fresh store now holds rebuilt segments.
    let victim_log = store_root
        .join(format!("node-{victim}"))
        .join(format!("brick-{victim}.log"));
    let rebuilt = std::fs::metadata(&victim_log).map(|md| md.len()).unwrap_or(0);
    assert!(rebuilt > 0, "replaced brick's store is still empty");

    // An abort after completion is a harmless no-op.
    assert!(matches!(
        admin.try_admin(0, &AdminOp::RepairAbort).unwrap(),
        AdminResponse::Aborted
    ));

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&store_root);
}

/// Fetches one node's metrics snapshot over the admin socket.
fn stats_snapshot(admin: &mut NetClient, node: usize) -> fab_wire::StatsReport {
    match admin.try_admin(node, &AdminOp::StatsSnapshot).unwrap() {
        AdminResponse::Stats(report) => report,
        other => panic!("node {node}: expected Stats reply, got {other:?}"),
    }
}

/// Sums a counter across every node's report (absent entries count 0).
fn summed(reports: &[fab_wire::StatsReport], name: &str) -> u64 {
    reports.iter().filter_map(|r| r.counter(name)).sum()
}

#[test]
#[ignore = "multi-second wall clock; run explicitly (tools/ci.sh stage 11)"]
fn five_brick_stats_snapshot_reconciles_over_loopback() {
    let (n, m, block) = (5usize, 3usize, 64usize);
    let stripes = 16usize;
    let store_root =
        std::env::temp_dir().join(format!("fab-stats-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);

    let (mut listeners, addrs) = bind_cluster(n);
    let cfg = RegisterConfig::new(m, n, block).unwrap();
    // Defaults exercise the metrics-on path: NodeConfig enables the
    // registry unless explicitly opted out.
    let spawn_node = |i: usize, listener: TcpListener| -> BrickNode {
        let node_cfg = NodeConfig::new(ProcessId::new(i as u32), addrs.clone(), cfg.clone())
            .with_store_dir(store_root.join(format!("node-{i}")));
        BrickNode::spawn(node_cfg, listener).unwrap()
    };
    let mut nodes: Vec<Option<BrickNode>> = listeners
        .drain(..)
        .enumerate()
        .map(|(i, l)| Some(spawn_node(i, l)))
        .collect();

    let mut client = NetClient::connect(addrs.clone(), cfg.clone());
    client.attempt_timeout = Duration::from_millis(500);
    client.max_rounds = 12;
    let mut admin = NetClient::connect(addrs.clone(), cfg.clone());

    // Phase 1: a clean workload. Every stripe written once and read back;
    // the cluster-wide op counters must cover what the client observed.
    let mut writes_acked = 0u64;
    let mut reads_done = 0u64;
    for s in 0..stripes {
        let result = client
            .try_write_stripe(StripeId(s as u64), stripe_for(s as u64 + 1, m, block))
            .unwrap();
        assert_eq!(result, OpResult::Written, "seed write to stripe {s}");
        writes_acked += 1;
    }
    for s in 0..stripes {
        let result = client.try_read_stripe(StripeId(s as u64)).unwrap();
        assert_eq!(value_of(&result), Some(s as u64 + 1), "read of stripe {s}");
        reads_done += 1;
    }

    let reports: Vec<_> = (0..n).map(|i| stats_snapshot(&mut admin, i)).collect();
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report.node, i as u32, "report carries the answering node");
        // The wire form mirrors `fab_obs::Snapshot`: name-sorted entries.
        for pair in report.counters.windows(2) {
            assert!(pair[0].name <= pair[1].name, "counters are name-sorted");
        }
    }
    assert!(
        summed(&reports, "op_writes_committed") >= writes_acked,
        "cluster committed-write counters cover every client-acked write"
    );
    let reads_total =
        summed(&reports, "op_reads_fastpath") + summed(&reports, "op_reads_recovered");
    assert!(
        reads_total >= reads_done,
        "cluster read counters cover every client read"
    );
    assert!(
        reports.iter().any(|r| r
            .histograms
            .iter()
            .any(|h| h.name == "op_write_micros" && h.count > 0)),
        "some coordinator recorded write latencies"
    );
    assert!(
        summed(&reports, "store_syncs") > 0,
        "group-commit pipelines surface fsync counts through the registry"
    );

    // Phase 2: kill a brick, advance the data past it, bring it back. The
    // stale replica forces recovery reads, and the peer links that heal
    // show up as reconnects — both must be visible in the snapshots.
    let victim = 1usize;
    let listener = nodes[victim]
        .take()
        .unwrap()
        .shutdown()
        .expect("shutdown returns the still-bound listener");
    for s in 0..stripes {
        let result = client
            .try_write_stripe(StripeId(s as u64), stripe_for(s as u64 + 101, m, block))
            .unwrap();
        assert_eq!(result, OpResult::Written, "degraded write to stripe {s}");
        writes_acked += 1;
    }
    nodes[victim] = Some(spawn_node(victim, listener));

    // A restart resets that node's in-memory registry, so the cluster-wide
    // sum can drop below the client's all-time tally. Reconcile the
    // post-restart window as a delta against this baseline instead.
    let baseline: Vec<_> = (0..n).map(|i| stats_snapshot(&mut admin, i)).collect();
    let baseline_reads =
        summed(&baseline, "op_reads_fastpath") + summed(&baseline, "op_reads_recovered");
    let baseline_writes = summed(&baseline, "op_writes_committed");
    let recovered_before = summed(&baseline, "op_reads_recovered");
    reads_done = 0;
    writes_acked = 0;

    let mut recovered_seen = false;
    let mut reconnects_seen = false;
    for _round in 0..40 {
        for s in 0..stripes {
            let result = client.try_read_stripe(StripeId(s as u64)).unwrap();
            assert_eq!(
                value_of(&result),
                Some(s as u64 + 101),
                "post-restart read of stripe {s}"
            );
            reads_done += 1;
        }
        let reports: Vec<_> = (0..n).map(|i| stats_snapshot(&mut admin, i)).collect();
        recovered_seen = summed(&reports, "op_reads_recovered") > recovered_before;
        reconnects_seen = summed(&reports, "net_reconnects") > 0;
        if recovered_seen && reconnects_seen {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        recovered_seen,
        "reads against the stale restarted replica surface as recovered reads"
    );
    assert!(
        reconnects_seen,
        "healed peer links surface as net_reconnects in stats snapshots"
    );

    // Counters are cumulative: a later snapshot never regresses.
    let first = stats_snapshot(&mut admin, 0);
    let second = stats_snapshot(&mut admin, 0);
    for entry in &first.counters {
        let later = second.counter(&entry.name).unwrap_or(0);
        assert!(
            later >= entry.value,
            "counter {} regressed: {} -> {later}",
            entry.name,
            entry.value
        );
    }

    // A last burst of writes in the stable post-restart window, then check
    // the counter deltas cover everything the client saw in that window.
    for s in 0..stripes {
        // Aborts are legal transient outcomes (e.g. a timestamp conflict
        // with a still-draining recovery); retry until the write commits.
        let mut committed = false;
        for _attempt in 0..20 {
            let result = client
                .try_write_stripe(StripeId(s as u64), stripe_for(s as u64 + 201, m, block))
                .unwrap();
            if result == OpResult::Written {
                committed = true;
                writes_acked += 1;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(committed, "final write to stripe {s} never committed");
    }
    let reports: Vec<_> = (0..n).map(|i| stats_snapshot(&mut admin, i)).collect();
    assert!(
        summed(&reports, "op_writes_committed") - baseline_writes >= writes_acked,
        "committed-write counter delta covers every client-acked write"
    );
    assert!(
        summed(&reports, "op_reads_fastpath") + summed(&reports, "op_reads_recovered")
            - baseline_reads
            >= reads_done,
        "read counter delta covers every client read"
    );

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&store_root);
}
