//! Unified observability substrate: lock-free metrics and a deterministic
//! structured-event ring.
//!
//! Every layer of the FAB reproduction shares one vocabulary of
//! instruments, registered by name in a [`Registry`]:
//!
//! * [`Counter`] — monotonic `AtomicU64` (ops completed, frames sent).
//! * [`Gauge`] — last-write-wins `AtomicU64` (queue depth, watermark).
//! * [`Histogram`] — 64 log2 buckets of `AtomicU64`; snapshots report
//!   approximate p50/p95/p99 as bucket upper bounds (the same scheme the
//!   repair driver has always used for scrub latency).
//! * [`PairCounter`] — two logically-coupled counts packed into *one*
//!   `AtomicU64` (32 bits each), so a snapshot of the pair is a single
//!   atomic load and can never tear: `reads_fastpath + reads_recovered`
//!   is exact at one linearization point, which is what lets the torture
//!   suite reconcile it against journal ground truth as a convicting
//!   invariant. `tests/loom.rs` model-checks the no-tear property.
//! * [`EventRing`] — a bounded ring of structured [`Event`]s whose
//!   timestamps are **injected** by the caller (sim ticks under
//!   `fab-simnet`, a monotonic-clock offset under `fab-net`), never read
//!   from a wall clock here.
//!
//! # Determinism rules (L2)
//!
//! This crate is reachable from simulation-driven code, so it obeys the
//! same determinism discipline as `fab-core`: no `Instant`, no
//! `SystemTime`, no `HashMap`/`HashSet` iteration order, no OS
//! randomness, no thread spawning. All time values are plain `u64`s the
//! caller supplies; all maps are `BTreeMap` so snapshot order is stable.
//! Recording a metric never feeds back into protocol behavior, so a
//! simulation's fingerprint is bit-identical with metrics on or off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 histogram buckets (`2^0 .. 2^63`).
pub const HIST_BUCKETS: usize = 64;

/// Default capacity of a [`Registry`]'s event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

// ---------------------------------------------------------------- counter --

/// A monotonic event counter. Lock-free; `Relaxed` ordering — totals are
/// exact once writers quiesce, approximate while they race, which is the
/// standard metrics contract.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter (standalone; see [`Registry::counter`] for
    /// the registered form).
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------------ gauge --

/// A last-write-wins level (queue depth, watermark, high-water mark).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is higher (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` (for gauges tracking a running level).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero under races only in the sense
    /// that wrapping is the caller's bug; levels are expected paired
    /// add/sub.
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// -------------------------------------------------------------- histogram --

/// A fixed-shape log2 histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` (bucket 0 counts the value 0). Lock-free recording,
/// quantiles reported as bucket upper bounds — coarse, allocation-free,
/// and good enough to tell a 100µs fsync from a 10ms one.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index `value` lands in.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// The inclusive upper bound reported for bucket `i` (`u64::MAX` for
    /// the last bucket).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            return u64::MAX;
        }
        1u64.checked_shl(i as u32).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let Some(slot) = self.buckets.get(Self::bucket_index(value)) else {
            return;
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Raw bucket counts (for invariant tests and reconciliation).
    #[must_use]
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// A point-in-time snapshot with approximate quantiles. Taken while
    /// writers race it is approximate (each bucket read individually),
    /// which is fine for reporting; exact once writers quiesce.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.buckets();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count,
            p50: percentile(&buckets, 50),
            p95: percentile(&buckets, 95),
            p99: percentile(&buckets, 99),
        }
    }
}

/// Approximate percentile from log2 buckets: the upper bound of the
/// bucket containing the p-th sample (1-based, rounding up).
fn percentile(buckets: &[u64], p: u64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = (total * p).div_ceil(100).max(1);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= target {
            return Histogram::bucket_upper_bound(i);
        }
    }
    u64::MAX
}

/// A point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Median (log2-bucket upper bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

// ----------------------------------------------------------- pair counter --

/// Two coupled counters packed into one `AtomicU64` (32 bits each), so a
/// reader's view of the pair is a *single* atomic load: the pair can
/// never tear. The canonical use is `(reads_fastpath, reads_recovered)` —
/// their sum is the exact number of completed reads at one linearization
/// point, which the torture suite reconciles against the journal.
///
/// Each half holds 32 bits (≈4.3 billion events); overflow bleeds into
/// the other half and is out of scope for the workloads this repo runs.
#[derive(Debug, Default)]
pub struct PairCounter(AtomicU64);

impl PairCounter {
    /// A fresh zeroed pair.
    #[must_use]
    pub fn new() -> Self {
        PairCounter(AtomicU64::new(0))
    }

    /// Increments the first count.
    pub fn inc_first(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the second count.
    pub fn inc_second(&self) {
        self.0.fetch_add(1 << 32, Ordering::Relaxed);
    }

    /// Increments both counts in one indivisible step (for pairs
    /// documented to move together).
    pub fn inc_both(&self) {
        self.0.fetch_add(1 | (1 << 32), Ordering::Relaxed);
    }

    /// An untearable snapshot `(first, second)`.
    #[must_use]
    pub fn get(&self) -> (u64, u64) {
        let raw = self.0.load(Ordering::Relaxed);
        (raw & 0xFFFF_FFFF, raw >> 32)
    }

    /// `first + second` from one atomic load.
    #[must_use]
    pub fn total(&self) -> u64 {
        let (a, b) = self.get();
        a + b
    }
}

// -------------------------------------------------------------- event ring --

/// One structured trace event. Fixed-size and allocation-free: `kind` is
/// a static label, `a`/`b` carry event-specific payload (op id, stripe,
/// latency — whatever the recording site documents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-injected timestamp (sim ticks or monotonic micros — never
    /// read from a clock here).
    pub at: u64,
    /// Static event label (`"read-recovered"`, `"commit-fenced"`, ...).
    pub kind: &'static str,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

#[derive(Debug)]
struct RingInner {
    /// Events, oldest first once the ring has wrapped.
    buf: Vec<Event>,
    /// Index of the next slot to overwrite.
    next: usize,
    /// Events evicted by wraparound.
    overwritten: u64,
}

/// A bounded ring of [`Event`]s: recording never blocks progress on
/// anything but the ring's own short critical section (the `ring` lock
/// class, rank-last and bounded — see `tools/xtask/src/model.rs`), never
/// allocates after the ring fills, and overwrites the oldest event when
/// full (counted, never silent). The occupancy queries are lock-free so
/// event-loop threads can poll them without ever waiting on a tracer.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    /// Events currently held, maintained outside the lock so `len` /
    /// `is_empty` never wait (monotone: grows to `capacity`, then stays).
    held: AtomicU64,
    /// Events dropped because a concurrent writer or reader held the
    /// ring at record time.
    dropped: AtomicU64,
    ring: Mutex<RingInner>,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            capacity,
            held: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(RingInner {
                buf: Vec::with_capacity(capacity),
                next: 0,
                overwritten: 0,
            }),
        }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    /// Never blocks: a contended or poisoned lock drops the event (the
    /// drop is counted in `dropped`) rather than stalling the recording
    /// thread — tracing must not add a wait to a protocol hot path.
    pub fn record(&self, event: Event) {
        let Ok(mut ring) = self.ring.try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let occupied = ring.buf.len();
        if occupied < self.capacity {
            ring.buf.push(event);
            self.held.store(occupied as u64 + 1, Ordering::Release);
        } else {
            let slot = ring.next;
            ring.buf[slot] = event;
            ring.next = (slot + 1) % self.capacity;
            ring.overwritten += 1;
        }
    }

    /// The ring's contents, oldest first, plus how many events wraparound
    /// has evicted.
    #[must_use]
    pub fn capture(&self) -> (Vec<Event>, u64) {
        let Ok(ring) = self.ring.lock() else {
            return (Vec::new(), 0);
        };
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.next..]);
        out.extend_from_slice(&ring.buf[..ring.next]);
        (out, ring.overwritten)
    }

    /// Events currently held (lock-free).
    #[must_use]
    pub fn len(&self) -> usize {
        self.held.load(Ordering::Acquire) as usize
    }

    /// Whether no event has been recorded yet (lock-free).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped by `record` because the ring was contended
    /// (lock-free).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// --------------------------------------------------------------- registry --

/// A pair's registered entry: the packed counter plus the two exposition
/// names its halves report under.
#[derive(Debug)]
struct PairEntry {
    pair: Arc<PairCounter>,
    first_name: &'static str,
    second_name: &'static str,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    pairs: BTreeMap<&'static str, PairEntry>,
}

/// One node's instrument namespace. Instruments are created on first
/// request and shared thereafter (`Arc`), so the hot path holds direct
/// handles and never takes the registry lock; the lock guards only
/// registration and snapshots.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
    events: EventRing,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default event-ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry whose event ring holds `capacity` events.
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            inner: Mutex::new(RegistryInner::default()),
            events: EventRing::new(capacity),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A poisoned registry still serves metrics: observability must
        // not amplify an unrelated panic.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter named `name`, created on first request.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.locked()
                .counters
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first request.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.locked()
                .gauges
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first request.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.locked()
                .histograms
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The pair counter registered as `name`, created on first request;
    /// its halves appear in snapshots as `first_name` and `second_name`.
    pub fn pair(
        &self,
        name: &'static str,
        first_name: &'static str,
        second_name: &'static str,
    ) -> Arc<PairCounter> {
        Arc::clone(
            &self
                .locked()
                .pairs
                .entry(name)
                .or_insert_with(|| PairEntry {
                    pair: Arc::new(PairCounter::new()),
                    first_name,
                    second_name,
                })
                .pair,
        )
    }

    /// Records a trace event with a caller-injected timestamp.
    pub fn trace(&self, at: u64, kind: &'static str, a: u64, b: u64) {
        self.events.record(Event { at, kind, a, b });
    }

    /// The registry's event ring.
    #[must_use]
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// A point-in-time snapshot of every registered instrument, in stable
    /// (name-sorted) order. Pair halves are reported as two counter
    /// entries read from one atomic load each — untorn by construction.
    /// (Named `export`, not `snapshot`, so the call-graph lints can tell
    /// this registry-lock-taking walk apart from the lock-free
    /// `Histogram::snapshot`.)
    #[must_use]
    pub fn export(&self) -> Snapshot {
        let inner = self.locked();
        let mut counters: Vec<(&'static str, u64)> = inner
            .counters
            .iter()
            .map(|(name, c)| (*name, c.get()))
            .collect();
        for entry in inner.pairs.values() {
            let (a, b) = entry.pair.get();
            counters.push((entry.first_name, a));
            counters.push((entry.second_name, b));
        }
        counters.sort_unstable_by_key(|(name, _)| *name);
        Snapshot {
            counters,
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (*name, g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (*name, h.snapshot()))
                .collect(),
        }
    }
}

/// A stable-ordered snapshot of a [`Registry`] (the in-process form of
/// the `stats-snapshot` admin reply).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values, name-sorted (pair halves included).
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge levels, name-sorted.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram snapshots, name-sorted.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl Snapshot {
    /// The counter named `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Renders the text exposition format `fab-cli stats` prints:
    /// one `kind name value...` line per instrument, name-sorted.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} p50={} p95={} p99={}",
                h.count, h.p50, h.p95, h.p99
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set_max(3); // lower: no effect
        assert_eq!(g.get(), 7);
        g.set_max(10);
        assert_eq!(g.get(), 10);
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.p50 >= 100 && s.p50 <= 256, "p50 {}", s.p50);
        assert!(s.p99 < 1 << 21, "p99 {} excludes the outlier", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.p50, s.p95, s.p99), (0, 0, 0, 0));
    }

    #[test]
    fn pair_counter_sums_exactly() {
        let p = PairCounter::new();
        p.inc_first();
        p.inc_first();
        p.inc_second();
        assert_eq!(p.get(), (2, 1));
        assert_eq!(p.total(), 3);
        p.inc_both();
        assert_eq!(p.get(), (3, 2));
    }

    #[test]
    fn event_ring_wraps_and_counts_evictions() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.record(Event {
                at: i,
                kind: "t",
                a: i,
                b: 0,
            });
        }
        let (events, overwritten) = ring.capture();
        assert_eq!(overwritten, 2);
        assert_eq!(
            events.iter().map(|e| e.at).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest first after wraparound"
        );
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn registry_reuses_instruments_and_snapshots_stably() {
        let reg = Registry::new();
        let c1 = reg.counter("reads");
        let c2 = reg.counter("reads");
        c1.inc();
        c2.inc();
        assert_eq!(reg.counter("reads").get(), 2);
        reg.gauge("depth").set(4);
        reg.histogram("lat").record(100);
        let pair = reg.pair("reads_split", "reads_fastpath", "reads_recovered");
        pair.inc_first();
        pair.inc_second();
        let snap = reg.export();
        assert_eq!(snap.counter("reads"), Some(2));
        assert_eq!(snap.counter("reads_fastpath"), Some(1));
        assert_eq!(snap.counter("reads_recovered"), Some(1));
        assert_eq!(snap.gauges, vec![("depth", 4)]);
        assert_eq!(snap.histograms.len(), 1);
        // Stable order: counters name-sorted.
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let text = snap.render();
        assert!(text.contains("counter reads 2"));
        assert!(text.contains("gauge depth 4"));
        assert!(text.contains("histogram lat count=1"));
    }

    #[test]
    fn trace_events_carry_injected_timestamps() {
        let reg = Registry::with_event_capacity(2);
        reg.trace(10, "read-recovered", 1, 2);
        reg.trace(20, "read-recovered", 3, 4);
        reg.trace(30, "commit", 5, 6);
        let (events, overwritten) = reg.events().capture();
        assert_eq!(overwritten, 1);
        assert_eq!(events[0].at, 20);
        assert_eq!(events[1].at, 30);
        assert_eq!(events[1].kind, "commit");
    }
}
