//! Model check of the [`fab_obs::PairCounter`] no-tear guarantee.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (CI stage 9): the
//! in-tree `loom` explores every serialized interleaving of the writer
//! threads against a reader. The property under test is the one the
//! torture reconciliation probe leans on: a snapshot of a pair counter
//! is a *single* atomic load, so a reader can never observe the two
//! halves of a coupled update out of step.
#![cfg(loom)]

use fab_obs::PairCounter;
use std::sync::Arc;

/// `inc_both` moves both halves in one indivisible step: whatever the
/// schedule, a reader sees `first == second`. (Two separate atomics
/// would let a reader land between the halves of an update.)
#[test]
fn coupled_increments_never_tear() {
    loom::model(|| {
        let pair = Arc::new(PairCounter::new());
        let writer = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                pair.inc_both();
                pair.inc_both();
            })
        };
        let (a, b) = pair.get();
        assert_eq!(a, b, "pair snapshot tore: ({a}, {b})");
        assert!(a <= 2);
        writer.join().unwrap();
        let (a, b) = pair.get();
        assert_eq!((a, b), (2, 2));
    });
}

/// Independent halves racing from two threads still sum exactly: the
/// reader's total comes from one load, so it is the pair's value at a
/// single linearization point — never a mix of two instants.
#[test]
fn racing_halves_sum_exactly() {
    loom::model(|| {
        let pair = Arc::new(PairCounter::new());
        let w1 = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || pair.inc_first())
        };
        let w2 = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || pair.inc_second())
        };
        let (a, b) = pair.get();
        assert!(a <= 1 && b <= 1, "impossible intermediate ({a}, {b})");
        w1.join().unwrap();
        w2.join().unwrap();
        assert_eq!(pair.get(), (1, 1));
        assert_eq!(pair.total(), 2);
    });
}
