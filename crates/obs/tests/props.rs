//! Property tests for the metrics substrate: bucket placement, quantile
//! monotonicity, pair-counter exactness, ring-buffer bounds.

use fab_obs::{Event, EventRing, Histogram, PairCounter, Registry, HIST_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every recorded value lands in exactly the bucket whose reported
    /// range covers it: `value <= upper_bound(bucket_index(value))` and
    /// (below the saturating last bucket) `value > upper_bound(i - 1)`.
    #[test]
    fn recorded_value_lands_in_reporting_bucket(value in any::<u64>()) {
        let i = Histogram::bucket_index(value);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!(value <= Histogram::bucket_upper_bound(i));
        if i > 0 && i < HIST_BUCKETS - 1 {
            prop_assert!(value > Histogram::bucket_upper_bound(i - 1));
        }
        // And recording actually increments that bucket.
        let h = Histogram::new();
        h.record(value);
        prop_assert_eq!(h.buckets()[i], 1);
    }

    /// Quantiles are monotone (p50 <= p95 <= p99), the snapshot count is
    /// exact, and every quantile is an upper bound for at least its share
    /// of the samples.
    #[test]
    fn snapshot_quantiles_are_monotone(samples in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert!(snap.p50 <= snap.p95);
        prop_assert!(snap.p95 <= snap.p99);
        let at_most_p50 = samples.iter().filter(|&&s| s <= snap.p50).count();
        prop_assert!(
            at_most_p50 * 100 >= samples.len() * 50,
            "p50 {} covers only {}/{} samples", snap.p50, at_most_p50, samples.len()
        );
        let at_most_p99 = samples.iter().filter(|&&s| s <= snap.p99).count();
        prop_assert!(at_most_p99 * 100 >= samples.len() * 99);
    }

    /// A pair counter's halves always sum to the number of increments,
    /// whatever the interleaving of first/second increments.
    #[test]
    fn pair_counter_total_is_exact(firsts in 0u32..1000, seconds in 0u32..1000) {
        let p = PairCounter::new();
        for _ in 0..firsts {
            p.inc_first();
        }
        for _ in 0..seconds {
            p.inc_second();
        }
        prop_assert_eq!(p.get(), (u64::from(firsts), u64::from(seconds)));
        prop_assert_eq!(p.total(), u64::from(firsts) + u64::from(seconds));
    }

    /// The ring never exceeds its capacity, evictions are counted
    /// exactly, and a snapshot is the most recent `capacity` events in
    /// order.
    #[test]
    fn ring_is_bounded_and_ordered(capacity in 1usize..16, n in 0usize..64) {
        let ring = EventRing::new(capacity);
        for i in 0..n {
            ring.record(Event { at: i as u64, kind: "e", a: 0, b: 0 });
        }
        let (events, overwritten) = ring.capture();
        prop_assert!(events.len() <= capacity);
        prop_assert_eq!(events.len(), n.min(capacity));
        prop_assert_eq!(overwritten, n.saturating_sub(capacity) as u64);
        let expected: Vec<u64> = (n.saturating_sub(capacity)..n).map(|i| i as u64).collect();
        let got: Vec<u64> = events.iter().map(|e| e.at).collect();
        prop_assert_eq!(got, expected);
    }

    /// Registry snapshots are deterministic: same recording sequence,
    /// identical snapshot (including render text), and counter order is
    /// always name-sorted.
    #[test]
    fn registry_snapshot_is_deterministic(values in prop::collection::vec(0u64..1000, 0..50)) {
        let build = || {
            let reg = Registry::new();
            let c = reg.counter("ops");
            let h = reg.histogram("lat");
            let p = reg.pair("reads", "reads_fastpath", "reads_recovered");
            for &v in &values {
                c.add(v);
                h.record(v);
                if v % 2 == 0 { p.inc_first() } else { p.inc_second() }
            }
            reg.export()
        };
        let (a, b) = (build(), build());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.render(), b.render());
    }
}
