//! Explicitly enumerated m-quorum systems.
//!
//! The threshold construction ([`MQuorumSystem`](crate::MQuorumSystem)) is
//! canonical — Lemma 3 of the paper shows an m-quorum system exists iff the
//! threshold system is one — but Definition 1 admits *any* set family with
//! the consistency and availability properties. Smaller, lopsided quorum
//! systems can reduce load on designated processes (e.g. exclude a brick
//! scheduled for maintenance from most quorums). This module represents
//! such systems explicitly and verifies Definition 1 at construction time.
//!
//! Verification of availability enumerates all `C(n, f)` fault patterns, so
//! construction is intended for the small n (≤ ~20) this storage system
//! targets; [`ExplicitError::TooLarge`] guards the blow-up.

use crate::QuorumError;
use fab_timestamp::ProcessId;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from explicit quorum-system construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExplicitError {
    /// Invalid base parameters.
    Params(QuorumError),
    /// Two listed quorums intersect in fewer than m processes
    /// (CONSISTENCY violated).
    Inconsistent {
        /// Indices of the violating quorums in the input list.
        quorums: (usize, usize),
        /// Their intersection size.
        intersection: usize,
    },
    /// Some f-subset of processes hits every quorum (AVAILABILITY
    /// violated).
    Unavailable {
        /// A fault pattern with no disjoint quorum (bitmask over `0..n`).
        faulty: u64,
    },
    /// A quorum references a process outside `0..n` or is listed twice.
    Malformed {
        /// Index of the malformed quorum in the input list.
        quorum: usize,
    },
    /// `n` exceeds the exhaustive-verification limit (64) or `C(n, f)` is
    /// too large to enumerate.
    TooLarge,
}

impl fmt::Display for ExplicitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplicitError::Params(e) => write!(f, "{e}"),
            ExplicitError::Inconsistent {
                quorums: (a, b),
                intersection,
            } => write!(
                f,
                "quorums #{a} and #{b} intersect in only {intersection} processes"
            ),
            ExplicitError::Unavailable { faulty } => {
                write!(f, "fault pattern {faulty:#b} intersects every quorum")
            }
            ExplicitError::Malformed { quorum } => {
                write!(
                    f,
                    "quorum #{quorum} is malformed (out of range or duplicate)"
                )
            }
            ExplicitError::TooLarge => {
                write!(
                    f,
                    "system too large for exhaustive Definition-1 verification"
                )
            }
        }
    }
}

impl Error for ExplicitError {}

/// An m-quorum system given by an explicit list of quorums, verified
/// against Definition 1 at construction.
///
/// # Examples
///
/// ```
/// use fab_quorum::explicit::ExplicitQuorumSystem;
/// use fab_timestamp::ProcessId;
///
/// // A lopsided 1-quorum system over 4 processes tolerating f = 1:
/// // p0 participates in every quorum except the one covering its failure.
/// let p = |i| ProcessId::new(i);
/// let q = ExplicitQuorumSystem::new(
///     1,
///     4,
///     1,
///     &[vec![p(0), p(1)], vec![p(0), p(2)], vec![p(0), p(3)], vec![p(1), p(2), p(3)]],
/// )?;
/// assert!(q.is_quorum([p(0), p(3)]));
/// assert!(!q.is_quorum([p(1), p(3)]));
/// # Ok::<(), fab_quorum::explicit::ExplicitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitQuorumSystem {
    m: usize,
    n: usize,
    f: usize,
    /// Each quorum as a bitmask over `0..n`.
    masks: Vec<u64>,
}

impl ExplicitQuorumSystem {
    /// Builds and verifies an explicit m-quorum system over `0..n`
    /// tolerating `f` faults.
    ///
    /// # Errors
    ///
    /// Returns an [`ExplicitError`] if the parameters are invalid, any
    /// quorum is malformed, or Definition 1's consistency/availability
    /// fails. Systems with `n > 24` are rejected (exhaustive checking).
    pub fn new(
        m: usize,
        n: usize,
        f: usize,
        quorums: &[Vec<ProcessId>],
    ) -> Result<Self, ExplicitError> {
        if m == 0 || n < m {
            return Err(ExplicitError::Params(QuorumError::InvalidParams { m, n }));
        }
        if n > 24 {
            return Err(ExplicitError::TooLarge);
        }
        // Convert to masks, validating membership.
        let mut masks = Vec::with_capacity(quorums.len());
        for (idx, q) in quorums.iter().enumerate() {
            let mut mask = 0u64;
            for p in q {
                let i = p.index();
                if i >= n || mask & (1 << i) != 0 {
                    return Err(ExplicitError::Malformed { quorum: idx });
                }
                mask |= 1 << i;
            }
            if mask == 0 {
                return Err(ExplicitError::Malformed { quorum: idx });
            }
            masks.push(mask);
        }
        if masks.is_empty() {
            return Err(ExplicitError::Unavailable { faulty: 0 });
        }
        // CONSISTENCY: all pairs intersect in >= m.
        for a in 0..masks.len() {
            for b in a..masks.len() {
                // xtask-allow(no-as-truncation): u32→usize is widening on every supported platform
                let inter = (masks[a] & masks[b]).count_ones() as usize;
                if inter < m {
                    return Err(ExplicitError::Inconsistent {
                        quorums: (a, b),
                        intersection: inter,
                    });
                }
            }
        }
        // AVAILABILITY: every f-subset leaves some quorum untouched.
        let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut fault = init_combination(f);
        while let Some(faulty) = fault {
            if faulty & !full != 0 {
                break;
            }
            if !masks.iter().any(|&q| q & faulty == 0) {
                return Err(ExplicitError::Unavailable { faulty });
            }
            fault = next_combination(faulty, full);
        }
        Ok(ExplicitQuorumSystem { m, n, f, masks })
    }

    /// Builds the threshold system `{Q : |Q| ≥ n − f}` explicitly (for
    /// cross-checking against [`MQuorumSystem`](crate::MQuorumSystem)).
    ///
    /// # Errors
    ///
    /// As [`ExplicitQuorumSystem::new`].
    pub fn threshold(m: usize, n: usize, f: usize) -> Result<Self, ExplicitError> {
        if m == 0 || n < m || n > 24 {
            return Err(if n > 24 {
                ExplicitError::TooLarge
            } else {
                ExplicitError::Params(QuorumError::InvalidParams { m, n })
            });
        }
        let size = n - f;
        let full = (1u64 << n) - 1;
        let mut quorums = Vec::new();
        let mut mask = init_combination(size);
        while let Some(q) = mask {
            if q & !full != 0 {
                break;
            }
            quorums.push(
                (0..n)
                    .filter(|i| q & (1 << i) != 0)
                    .filter_map(|i| u32::try_from(i).ok().map(ProcessId::new))
                    .collect(),
            );
            mask = next_combination(q, full);
        }
        Self::new(m, n, f, &quorums)
    }

    /// Required intersection m.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Universe size n.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault tolerance f.
    #[must_use]
    pub fn max_faulty(&self) -> usize {
        self.f
    }

    /// Number of listed quorums.
    #[must_use]
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// An explicit system is never empty (construction rejects it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the distinct processes in `members` cover some listed
    /// quorum.
    pub fn is_quorum<I>(&self, members: I) -> bool
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let mut mask = 0u64;
        for p in members {
            if p.index() < self.n {
                mask |= 1 << p.index();
            }
        }
        // (clippy's manual_contains suggestion is not applicable: the
        // predicate masks each candidate with itself, not a fixed key.)
        #[allow(clippy::manual_contains)]
        self.masks.iter().any(|&q| q & mask == q)
    }

    /// The per-process load: the fraction of listed quorums each process
    /// participates in (the quantity lopsided constructions reduce for
    /// chosen processes).
    #[must_use]
    pub fn loads(&self) -> Vec<f64> {
        let total = self.masks.len() as f64;
        (0..self.n)
            .map(|i| self.masks.iter().filter(|&&q| q & (1 << i) != 0).count() as f64 / total)
            .collect()
    }
}

/// The smallest `k`-bit combination, or `None` for k = 0 populations.
fn init_combination(k: usize) -> Option<u64> {
    if k == 0 {
        // A single empty fault pattern: represented as 0; callers treat the
        // f = 0 case through this one iteration.
        Some(0)
    } else {
        Some((1u64 << k) - 1)
    }
}

/// Gosper's hack: next combination with the same popcount, `None` when the
/// bits overflow `full`. The zero mask (f = 0) terminates immediately.
fn next_combination(v: u64, full: u64) -> Option<u64> {
    if v == 0 {
        return None;
    }
    let c = v & v.wrapping_neg();
    let r = v + c;
    if r > full {
        return None;
    }
    let next = (((r ^ v) >> 2) / c) | r;
    if next > full {
        None
    } else {
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MQuorumSystem;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn threshold_explicit_matches_implicit() {
        for (m, n) in [(1usize, 3usize), (2, 4), (5, 8)] {
            let f = (n - m) / 2;
            let implicit = MQuorumSystem::for_code(m, n).unwrap();
            let explicit = ExplicitQuorumSystem::threshold(m, n, f).unwrap();
            assert_eq!(explicit.m(), m);
            assert_eq!(explicit.max_faulty(), implicit.max_faulty());
            // Agreement on a sweep of candidate sets.
            for mask in 0u32..(1 << n) {
                let members: Vec<ProcessId> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| p(i as u32))
                    .collect();
                assert_eq!(
                    implicit.is_quorum(members.iter().copied()),
                    explicit.is_quorum(members.iter().copied()),
                    "m={m} n={n} mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn inconsistent_family_rejected() {
        // Two disjoint "quorums" with m = 1.
        let err = ExplicitQuorumSystem::new(1, 4, 0, &[vec![p(0), p(1)], vec![p(2), p(3)]])
            .unwrap_err();
        assert!(matches!(err, ExplicitError::Inconsistent { .. }));
    }

    #[test]
    fn unavailable_family_rejected() {
        // Every quorum contains p0, so the fault pattern {p0} kills all.
        let err = ExplicitQuorumSystem::new(1, 3, 1, &[vec![p(0), p(1)], vec![p(0), p(2)]])
            .unwrap_err();
        assert!(matches!(err, ExplicitError::Unavailable { .. }));
    }

    #[test]
    fn malformed_quorums_rejected() {
        let err = ExplicitQuorumSystem::new(1, 3, 0, &[vec![p(0), p(9)]]).unwrap_err();
        assert!(matches!(err, ExplicitError::Malformed { quorum: 0 }));
        let err = ExplicitQuorumSystem::new(1, 3, 0, &[vec![p(0), p(0)]]).unwrap_err();
        assert!(matches!(err, ExplicitError::Malformed { quorum: 0 }));
        let err = ExplicitQuorumSystem::new(1, 3, 0, &[]).unwrap_err();
        assert!(matches!(err, ExplicitError::Unavailable { .. }));
    }

    #[test]
    fn lopsided_system_shifts_load() {
        // Star-ish system: p0 in three of four quorums.
        let q = ExplicitQuorumSystem::new(
            1,
            4,
            1,
            &[
                vec![p(0), p(1)],
                vec![p(0), p(2)],
                vec![p(0), p(3)],
                vec![p(1), p(2), p(3)],
            ],
        )
        .unwrap();
        let loads = q.loads();
        assert!(loads[0] > loads[1], "{loads:?}");
        assert!(q.is_quorum([p(1), p(2), p(3)]));
        assert!(!q.is_quorum([p(2), p(3)]));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn f_zero_single_quorum_is_fine() {
        let q = ExplicitQuorumSystem::new(2, 3, 0, &[vec![p(0), p(1)]]).unwrap();
        assert!(q.is_quorum([p(0), p(1), p(2)]));
        assert!(!q.is_quorum([p(1), p(2)]));
    }

    #[test]
    fn too_large_rejected() {
        let err = ExplicitQuorumSystem::threshold(5, 25, 1).unwrap_err();
        assert_eq!(err, ExplicitError::TooLarge);
    }

    #[test]
    fn beyond_theorem2_bound_is_always_rejected() {
        // Any family claiming f > (n-m)/2 must fail consistency or
        // availability (Theorem 2's impossibility direction).
        for n in 2..=7usize {
            for m in 1..=n {
                let f = (n - m) / 2 + 1;
                if f > n {
                    continue;
                }
                assert!(
                    ExplicitQuorumSystem::threshold(m, n, f).is_err(),
                    "m={m} n={n} f={f}"
                );
            }
        }
    }
}
