//! m-quorum systems (§2.2 and Appendix A of the paper).
//!
//! With m-out-of-n erasure coding, a read must see at least m blocks
//! written by the preceding write, so read and write quorums must intersect
//! in **m** processes — not 1, as in replicated quorum systems. Definition
//! 1 of the paper requires of a quorum system `Q ⊆ 2^U`:
//!
//! * **Consistency** — `|Q₁ ∩ Q₂| ≥ m` for all `Q₁, Q₂ ∈ Q`,
//! * **Availability** — for every set `S` of `f` processes there is a
//!   quorum disjoint from `S`.
//!
//! Theorem 2 shows an m-quorum system exists **iff `n ≥ 2f + m`**, and
//! Lemma 3 shows that whenever one exists, the *threshold* construction
//! `Q = { Q ⊆ U : |Q| ≥ n − f }` is one. [`MQuorumSystem`] implements that
//! canonical threshold construction; the existence theorem itself is
//! checked by exhaustive enumeration in this crate's tests.
//!
//! # Examples
//!
//! ```
//! use fab_quorum::MQuorumSystem;
//!
//! // 5-of-8 erasure coding: tolerates f = ⌊(8−5)/2⌋ = 1 faulty brick,
//! // and every quorum has 8 − 1 = 7 members.
//! let q = MQuorumSystem::for_code(5, 8)?;
//! assert_eq!(q.max_faulty(), 1);
//! assert_eq!(q.quorum_size(), 7);
//! // Any two quorums overlap in at least m = 5 processes.
//! assert!(q.min_intersection() >= 5);
//! # Ok::<(), fab_quorum::QuorumError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod explicit;

pub use explicit::{ExplicitError, ExplicitQuorumSystem};

use fab_timestamp::ProcessId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from m-quorum-system construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuorumError {
    /// Parameters violate `1 ≤ m ≤ n`.
    InvalidParams {
        /// Required intersection size.
        m: usize,
        /// Universe size.
        n: usize,
    },
    /// No m-quorum system exists: Theorem 2 requires `n ≥ 2f + m`.
    Unsatisfiable {
        /// Required intersection size.
        m: usize,
        /// Universe size.
        n: usize,
        /// Requested fault tolerance.
        f: usize,
    },
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::InvalidParams { m, n } => {
                write!(f, "invalid quorum parameters m={m}, n={n}")
            }
            QuorumError::Unsatisfiable { m, n, f: faults } => write!(
                f,
                "no m-quorum system exists for m={m}, n={n}, f={faults} (needs n >= 2f + m)"
            ),
        }
    }
}

impl Error for QuorumError {}

/// The canonical threshold m-quorum system: every subset of `U` with at
/// least `n − f` members is a quorum.
///
/// By Lemma 4, this satisfies consistency (`|Q₁ ∩ Q₂| ≥ n − 2f ≥ m`) and
/// availability (any `n − f` correct processes form a quorum) exactly when
/// `n ≥ 2f + m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MQuorumSystem {
    m: usize,
    n: usize,
    f: usize,
}

impl MQuorumSystem {
    /// Creates the threshold m-quorum system for an m-of-n code with the
    /// **maximum** fault tolerance `f = ⌊(n − m)/2⌋` (the paper's standing
    /// assumption, §2.2).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParams`] unless `1 ≤ m ≤ n`.
    pub fn for_code(m: usize, n: usize) -> Result<Self, QuorumError> {
        if m == 0 || n < m {
            return Err(QuorumError::InvalidParams { m, n });
        }
        Self::with_faults(m, n, (n - m) / 2)
    }

    /// Creates a threshold m-quorum system tolerating exactly `f` faults.
    ///
    /// Smaller `f` than the maximum yields larger intersections (useful to
    /// trade availability for fast-read hit rate).
    ///
    /// # Errors
    ///
    /// * [`QuorumError::InvalidParams`] unless `1 ≤ m ≤ n`.
    /// * [`QuorumError::Unsatisfiable`] if `n < 2f + m` (Theorem 2).
    pub fn with_faults(m: usize, n: usize, f: usize) -> Result<Self, QuorumError> {
        if m == 0 || n < m {
            return Err(QuorumError::InvalidParams { m, n });
        }
        if n < 2 * f + m {
            return Err(QuorumError::Unsatisfiable { m, n, f });
        }
        Ok(MQuorumSystem { m, n, f })
    }

    /// Required intersection size m.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Universe size n.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of faulty processes tolerated.
    #[must_use]
    pub fn max_faulty(&self) -> usize {
        self.f
    }

    /// Number of processes in every quorum (`n − f`).
    #[must_use]
    pub fn quorum_size(&self) -> usize {
        self.n - self.f
    }

    /// The guaranteed minimum intersection of any two quorums
    /// (`n − 2f ≥ m`).
    #[must_use]
    pub fn min_intersection(&self) -> usize {
        self.n - 2 * self.f
    }

    /// Iterates over the universe `U = {p_0, …, p_{n−1}}`.
    pub fn universe(&self) -> impl Iterator<Item = ProcessId> + '_ {
        // `filter_map` rather than `as`: an index that does not fit in a
        // `u32` cannot name a process, so it is dropped instead of wrapped.
        (0..self.n)
            .filter_map(|i| u32::try_from(i).ok())
            .map(ProcessId::new)
    }

    /// Returns `true` if the distinct processes in `members` form a quorum.
    ///
    /// Out-of-universe ids are ignored; duplicates count once.
    pub fn is_quorum<I>(&self, members: I) -> bool
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let mut seen = vec![false; self.n];
        let mut count = 0usize;
        for p in members {
            let i = p.index();
            if i < self.n && !seen[i] {
                seen[i] = true;
                count += 1;
            }
        }
        count >= self.quorum_size()
    }

    /// Samples a uniformly random quorum of exactly `quorum_size()`
    /// processes (used by tests and the fast-read target picker).
    #[must_use]
    pub fn random_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ProcessId> {
        let mut ids: Vec<ProcessId> = self.universe().collect();
        ids.shuffle(rng);
        ids.truncate(self.quorum_size());
        ids.sort_unstable();
        ids
    }

    /// Samples `k` distinct random processes from the universe (the
    /// "pick m random processes" step of `fast-read-stripe`, Alg. 1 line 6).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    #[must_use]
    pub fn random_processes<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<ProcessId> {
        assert!(k <= self.n, "cannot sample {k} of {} processes", self.n);
        let mut ids: Vec<ProcessId> = self.universe().collect();
        ids.shuffle(rng);
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }
}

impl fmt::Display for MQuorumSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "m-quorum(m={}, n={}, f={}, |Q|={})",
            self.m,
            self.n,
            self.f,
            self.quorum_size()
        )
    }
}

/// Tracks which processes have replied during one messaging phase of a
/// `quorum()` exchange (§2.2).
///
/// The `quorum(msg)` primitive sends `msg` to all n processes, retransmits
/// over the fair-lossy channels, and returns once an m-quorum has replied.
/// A tracker records distinct responders and answers "is this a quorum
/// yet?"; the messaging itself lives in the drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumTracker {
    system: MQuorumSystem,
    replied: Vec<bool>,
    count: usize,
}

impl QuorumTracker {
    /// Creates an empty tracker for one messaging phase.
    #[must_use]
    pub fn new(system: MQuorumSystem) -> Self {
        QuorumTracker {
            replied: vec![false; system.n()],
            count: 0,
            system,
        }
    }

    /// Records a reply from `pid`. Returns `true` if this reply was new
    /// (not a duplicate or out-of-universe).
    pub fn record(&mut self, pid: ProcessId) -> bool {
        let i = pid.index();
        if i >= self.replied.len() || self.replied[i] {
            return false;
        }
        self.replied[i] = true;
        self.count += 1;
        true
    }

    /// Returns `true` once the distinct responders form an m-quorum.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.count >= self.system.quorum_size()
    }

    /// Number of distinct responders so far.
    #[must_use]
    pub fn replies(&self) -> usize {
        self.count
    }

    /// Returns `true` if `pid` has replied.
    #[must_use]
    pub fn has_replied(&self, pid: ProcessId) -> bool {
        pid.index() < self.replied.len() && self.replied[pid.index()]
    }

    /// Iterates over the processes that have replied, in id order.
    pub fn responders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.replied
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .filter_map(|(i, _)| u32::try_from(i).ok().map(ProcessId::new))
    }

    /// The quorum system this tracker checks against.
    #[must_use]
    pub fn system(&self) -> MQuorumSystem {
        self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn for_code_uses_max_faults() {
        let q = MQuorumSystem::for_code(5, 8).unwrap();
        assert_eq!(q.max_faulty(), 1);
        assert_eq!(q.quorum_size(), 7);
        assert_eq!(q.min_intersection(), 6);
        assert!(q.min_intersection() >= q.m());

        let q = MQuorumSystem::for_code(5, 7).unwrap();
        assert_eq!(q.max_faulty(), 1);
        assert_eq!(q.quorum_size(), 6);
        assert_eq!(q.min_intersection(), 5);

        // Replication: m=1, n=3 — the classic majority system.
        let q = MQuorumSystem::for_code(1, 3).unwrap();
        assert_eq!(q.max_faulty(), 1);
        assert_eq!(q.quorum_size(), 2);
    }

    #[test]
    fn with_faults_enforces_theorem2_bound() {
        // n >= 2f + m is necessary and sufficient.
        assert!(MQuorumSystem::with_faults(5, 8, 1).is_ok());
        assert!(matches!(
            MQuorumSystem::with_faults(5, 8, 2),
            Err(QuorumError::Unsatisfiable { m: 5, n: 8, f: 2 })
        ));
        assert!(MQuorumSystem::with_faults(3, 3, 0).is_ok());
        assert!(MQuorumSystem::with_faults(3, 9, 3).is_ok());
        assert!(MQuorumSystem::with_faults(3, 8, 3).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(
            MQuorumSystem::for_code(0, 5),
            Err(QuorumError::InvalidParams { .. })
        ));
        assert!(MQuorumSystem::for_code(6, 5).is_err());
    }

    /// Exhaustively verifies Definition 1 for all small (m, n): every pair
    /// of threshold quorums intersects in ≥ m processes, and for every
    /// f-subset S there is a quorum disjoint from S.
    #[test]
    fn definition1_holds_exhaustively_for_small_systems() {
        for n in 1usize..=10 {
            for m in 1..=n {
                let q = MQuorumSystem::for_code(m, n).unwrap();
                let size = q.quorum_size();
                let subsets: Vec<u32> = (0u32..1 << n)
                    .filter(|s| s.count_ones() as usize == size)
                    .collect();
                // Consistency.
                for &a in &subsets {
                    for &b in &subsets {
                        assert!(
                            (a & b).count_ones() as usize >= m,
                            "n={n} m={m}: quorums {a:b} and {b:b} intersect in < m"
                        );
                    }
                }
                // Availability: for every f-subset there's a disjoint quorum.
                let f = q.max_faulty();
                for faulty in (0u32..1 << n).filter(|s| s.count_ones() as usize == f) {
                    let alive = !faulty & ((1u32 << n) - 1);
                    assert!(
                        alive.count_ones() as usize >= size,
                        "n={n} m={m} f={f}: no quorum avoids faulty set {faulty:b}"
                    );
                }
            }
        }
    }

    /// The "only if" direction of Theorem 2: with f one larger than the
    /// bound allows, consistency and availability cannot both hold.
    #[test]
    fn theorem2_bound_is_tight() {
        for n in 2usize..=10 {
            for m in 1..=n {
                let f_max = (n - m) / 2;
                // One more fault than allowed must be rejected.
                assert!(
                    MQuorumSystem::with_faults(m, n, f_max + 1).is_err(),
                    "n={n} m={m}: f={} should be unsatisfiable",
                    f_max + 1
                );
            }
        }
    }

    #[test]
    fn is_quorum_counts_distinct_members() {
        let q = MQuorumSystem::for_code(2, 5).unwrap(); // f=1, size=4
        let ids: Vec<ProcessId> = (0..4u32).map(ProcessId::new).collect();
        assert!(q.is_quorum(ids.iter().copied()));
        // Duplicates don't help.
        let dup = vec![
            ProcessId::new(0),
            ProcessId::new(0),
            ProcessId::new(1),
            ProcessId::new(2),
        ];
        assert!(!q.is_quorum(dup));
        // Out-of-universe ids are ignored.
        let oob = vec![
            ProcessId::new(0),
            ProcessId::new(1),
            ProcessId::new(2),
            ProcessId::new(99),
        ];
        assert!(!q.is_quorum(oob));
    }

    #[test]
    fn random_quorum_is_valid_and_distinct() {
        let q = MQuorumSystem::for_code(5, 8).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let members = q.random_quorum(&mut rng);
            assert_eq!(members.len(), q.quorum_size());
            assert!(q.is_quorum(members.iter().copied()));
            let mut sorted = members.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), members.len(), "members must be distinct");
        }
    }

    #[test]
    fn random_processes_samples_k_distinct() {
        let q = MQuorumSystem::for_code(5, 8).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let picked = q.random_processes(&mut rng, 5);
        assert_eq!(picked.len(), 5);
        let mut d = picked.clone();
        d.dedup();
        assert_eq!(d.len(), 5);
        assert!(picked.iter().all(|p| p.index() < 8));
    }

    #[test]
    fn tracker_completes_exactly_at_quorum_size() {
        let q = MQuorumSystem::for_code(5, 8).unwrap(); // size 7
        let mut t = QuorumTracker::new(q);
        for i in 0..6u32 {
            assert!(t.record(ProcessId::new(i)));
            assert!(!t.is_complete(), "after {} replies", i + 1);
        }
        // Duplicate doesn't complete it.
        assert!(!t.record(ProcessId::new(0)));
        assert!(!t.is_complete());
        assert!(t.record(ProcessId::new(6)));
        assert!(t.is_complete());
        assert_eq!(t.replies(), 7);
        assert_eq!(t.responders().count(), 7);
        assert!(t.has_replied(ProcessId::new(3)));
        assert!(!t.has_replied(ProcessId::new(7)));
    }

    #[test]
    fn tracker_ignores_out_of_universe() {
        let q = MQuorumSystem::for_code(1, 3).unwrap();
        let mut t = QuorumTracker::new(q);
        assert!(!t.record(ProcessId::new(10)));
        assert_eq!(t.replies(), 0);
    }

    #[test]
    fn display_is_informative() {
        let q = MQuorumSystem::for_code(5, 8).unwrap();
        assert_eq!(q.to_string(), "m-quorum(m=5, n=8, f=1, |Q|=7)");
        let e = QuorumError::Unsatisfiable { m: 5, n: 8, f: 2 };
        assert!(e.to_string().contains("n >= 2f + m"));
    }
}
