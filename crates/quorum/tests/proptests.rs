//! Property tests for m-quorum systems: randomized checks of Definition 1
//! over parameters too large to enumerate exhaustively.

use fab_quorum::{MQuorumSystem, QuorumTracker};
use fab_timestamp::ProcessId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn random_quorums_intersect_in_at_least_m(
        n in 1usize..=64,
        m_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let m = 1 + ((n - 1) as f64 * m_frac) as usize;
        let q = MQuorumSystem::for_code(m, n).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = q.random_quorum(&mut rng);
        let b = q.random_quorum(&mut rng);
        let inter = a.iter().filter(|p| b.contains(p)).count();
        prop_assert!(inter >= m, "m={} n={} intersection={}", m, n, inter);
        prop_assert!(inter >= q.min_intersection());
    }

    #[test]
    fn any_quorum_survives_max_faults(
        n in 1usize..=64,
        m_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // Availability: kill any f processes; the survivors form a quorum.
        let m = 1 + ((n - 1) as f64 * m_frac) as usize;
        let q = MQuorumSystem::for_code(m, n).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let faulty = q.random_processes(&mut rng, q.max_faulty());
        let survivors: Vec<ProcessId> =
            q.universe().filter(|p| !faulty.contains(p)).collect();
        prop_assert!(q.is_quorum(survivors.iter().copied()));
    }

    #[test]
    fn one_extra_fault_breaks_availability_or_consistency(
        n in 2usize..=64,
        m_frac in 0.0f64..1.0,
    ) {
        let m = 1 + ((n - 1) as f64 * m_frac) as usize;
        let f = (n - m) / 2;
        prop_assert!(MQuorumSystem::with_faults(m, n, f + 1).is_err());
    }

    #[test]
    fn tracker_agrees_with_is_quorum(
        n in 1usize..=32,
        m_frac in 0.0f64..1.0,
        replies in proptest::collection::vec(0u32..40, 0..64),
    ) {
        let m = 1 + ((n - 1) as f64 * m_frac) as usize;
        let q = MQuorumSystem::for_code(m, n).unwrap();
        let mut t = QuorumTracker::new(q);
        for &r in &replies {
            t.record(ProcessId::new(r));
        }
        let as_set: Vec<ProcessId> = replies.iter().map(|&r| ProcessId::new(r)).collect();
        prop_assert_eq!(t.is_complete(), q.is_quorum(as_set));
        prop_assert_eq!(t.responders().count(), t.replies());
    }
}
