//! Series generators for Figure 2 (MTTDL vs capacity) and Figure 3
//! (storage overhead vs MTTDL).

use crate::params::{BrickParams, InternalLayout};
use crate::schemes::{Scheme, SystemDesign};
use serde::{Deserialize, Serialize};

/// One point of a Figure-2 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttdlPoint {
    /// Logical capacity in terabytes.
    pub capacity_tb: f64,
    /// Mean time to first data loss in years.
    pub mttdl_years: f64,
    /// Number of bricks in the design.
    pub bricks: usize,
}

/// One named curve of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MttdlSeries {
    /// Curve label as it appears in the paper's legend.
    pub label: String,
    /// Points, one per capacity.
    pub points: Vec<MttdlPoint>,
}

/// The five system designs plotted in Figure 2.
pub fn figure2_designs() -> Vec<(String, SystemDesign)> {
    let commodity = BrickParams::commodity();
    vec![
        (
            "4-way replication/R5 bricks".to_string(),
            SystemDesign {
                scheme: Scheme::Replication { k: 4 },
                brick: commodity,
                layout: InternalLayout::Raid5,
            },
        ),
        (
            "E.C.(5,8)/R5 bricks".to_string(),
            SystemDesign {
                scheme: Scheme::ErasureCode { m: 5, n: 8 },
                brick: commodity,
                layout: InternalLayout::Raid5,
            },
        ),
        (
            "4-way replication/R0 bricks".to_string(),
            SystemDesign {
                scheme: Scheme::Replication { k: 4 },
                brick: commodity,
                layout: InternalLayout::Raid0,
            },
        ),
        (
            "E.C.(5,8)/R0 bricks".to_string(),
            SystemDesign {
                scheme: Scheme::ErasureCode { m: 5, n: 8 },
                brick: commodity,
                layout: InternalLayout::Raid0,
            },
        ),
        (
            "Striping/reliable R5 bricks".to_string(),
            SystemDesign {
                scheme: Scheme::Striping,
                brick: BrickParams::high_end(),
                layout: InternalLayout::Raid5,
            },
        ),
    ]
}

/// Generates the Figure-2 series over the given capacities (the paper
/// sweeps 1 TB – 1000 TB on a log axis).
pub fn figure2(capacities_tb: &[f64]) -> Vec<MttdlSeries> {
    figure2_designs()
        .into_iter()
        .map(|(label, design)| MttdlSeries {
            label,
            points: capacities_tb
                .iter()
                .map(|&capacity_tb| MttdlPoint {
                    capacity_tb,
                    mttdl_years: design.mttdl_years(capacity_tb),
                    bricks: design.brick_count(capacity_tb),
                })
                .collect(),
        })
        .collect()
}

/// One point of a Figure-3 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// The varied parameter (replication factor k, or code width n).
    pub parameter: usize,
    /// Scheme description.
    pub scheme: String,
    /// MTTDL achieved at the reference capacity, in years.
    pub mttdl_years: f64,
    /// Raw/logical storage overhead (includes intra-brick R5 overhead).
    pub overhead: f64,
}

/// One named curve of Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadSeries {
    /// Curve label as it appears in the paper's legend.
    pub label: String,
    /// Points, one per swept parameter value.
    pub points: Vec<OverheadPoint>,
}

/// Generates Figure 3: storage overhead as a function of achieved MTTDL
/// at `capacity_tb` (the paper uses 256 TB), sweeping replication factor
/// `k = 1..=max_k` and erasure-code width `n = 5..=max_n` with m = 5.
pub fn figure3(capacity_tb: f64, max_k: usize, max_n: usize) -> Vec<OverheadSeries> {
    let brick = BrickParams::commodity();
    let mut series = Vec::new();
    for layout in [InternalLayout::Raid0, InternalLayout::Raid5] {
        let mut points = Vec::new();
        for k in 1..=max_k {
            let d = SystemDesign {
                scheme: Scheme::Replication { k },
                brick,
                layout,
            };
            points.push(OverheadPoint {
                parameter: k,
                scheme: d.scheme.to_string(),
                mttdl_years: d.mttdl_years(capacity_tb),
                overhead: d.storage_overhead(),
            });
        }
        series.push(OverheadSeries {
            label: format!("Replication/{layout} bricks"),
            points,
        });
    }
    for layout in [InternalLayout::Raid0, InternalLayout::Raid5] {
        let mut points = Vec::new();
        for n in 5..=max_n {
            let d = SystemDesign {
                scheme: Scheme::ErasureCode { m: 5, n },
                brick,
                layout,
            };
            points.push(OverheadPoint {
                parameter: n,
                scheme: d.scheme.to_string(),
                mttdl_years: d.mttdl_years(capacity_tb),
                overhead: d.storage_overhead(),
            });
        }
        series.push(OverheadSeries {
            label: format!("E.C.(5,n)/{layout} bricks"),
            points,
        });
    }
    series
}

/// The smallest storage overhead a scheme family reaches while meeting a
/// target MTTDL (the planner behind `examples/reliability_planner.rs`).
pub fn cheapest_meeting_target(
    series: &[OverheadSeries],
    target_mttdl_years: f64,
) -> Option<&OverheadPoint> {
    series
        .iter()
        .flat_map(|s| s.points.iter())
        .filter(|p| p.mttdl_years >= target_mttdl_years)
        .min_by(|a, b| a.overhead.total_cmp(&b.overhead))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_has_five_series() {
        let caps = [1.0, 10.0, 100.0, 1000.0];
        let series = figure2(&caps);
        assert_eq!(series.len(), 5);
        for s in &series {
            assert_eq!(s.points.len(), 4);
            // Monotone decline along the capacity axis.
            for w in s.points.windows(2) {
                assert!(
                    w[1].mttdl_years <= w[0].mttdl_years,
                    "{}: MTTDL must not rise with capacity",
                    s.label
                );
            }
        }
        // Striping is the worst at scale (paper: "adequate only for small
        // systems").
        let at_1000 = |label: &str| {
            series
                .iter()
                .find(|s| s.label.starts_with(label))
                .unwrap()
                .points[3]
                .mttdl_years
        };
        let striping = at_1000("Striping");
        assert!(at_1000("4-way replication/R5") > striping * 1e3);
        assert!(at_1000("E.C.(5,8)/R5") > striping * 1e3);
    }

    #[test]
    fn figure3_replication_is_much_more_expensive_at_high_mttdl() {
        let series = figure3(256.0, 7, 12);
        assert_eq!(series.len(), 4);
        // To reach one million years, replication needs ~4x raw storage
        // while EC(5,n) stays under 2.2x (the paper's headline numbers:
        // 4 vs 1.6 on R0 bricks).
        let target = 1e6;
        let rep_r0 = series
            .iter()
            .find(|s| s.label == "Replication/R0 bricks")
            .unwrap();
        let ec_r0 = series
            .iter()
            .find(|s| s.label == "E.C.(5,n)/R0 bricks")
            .unwrap();
        let rep_cost = rep_r0
            .points
            .iter()
            .filter(|p| p.mttdl_years >= target)
            .map(|p| p.overhead)
            .fold(f64::INFINITY, f64::min);
        let ec_cost = ec_r0
            .points
            .iter()
            .filter(|p| p.mttdl_years >= target)
            .map(|p| p.overhead)
            .fold(f64::INFINITY, f64::min);
        assert!(rep_cost >= 3.0, "replication cost {rep_cost}");
        assert!(ec_cost <= 2.2, "EC cost {ec_cost}");
        assert!(
            rep_cost / ec_cost >= 1.8,
            "EC should be ~2x+ cheaper: {rep_cost} vs {ec_cost}"
        );
    }

    #[test]
    fn figure3_overheads_step_correctly() {
        let series = figure3(256.0, 4, 8);
        let rep = series
            .iter()
            .find(|s| s.label == "Replication/R0 bricks")
            .unwrap();
        let ks: Vec<f64> = rep.points.iter().map(|p| p.overhead).collect();
        assert_eq!(ks, vec![1.0, 2.0, 3.0, 4.0], "integer steps");
        let ec = series
            .iter()
            .find(|s| s.label == "E.C.(5,n)/R0 bricks")
            .unwrap();
        let ns: Vec<f64> = ec.points.iter().map(|p| p.overhead).collect();
        assert!((ns[0] - 1.0).abs() < 1e-12);
        assert!((ns[3] - 1.6).abs() < 1e-12, "5-of-8 = 1.6x");
    }

    #[test]
    fn planner_picks_cheapest_adequate_design() {
        let series = figure3(256.0, 7, 12);
        let pick = cheapest_meeting_target(&series, 1e6).expect("some design qualifies");
        assert!(pick.mttdl_years >= 1e6);
        assert!(pick.scheme.starts_with("E.C."), "EC wins on cost: {pick:?}");
        // An impossible target yields None.
        assert!(cheapest_meeting_target(&series, 1e30).is_none());
    }
}
