//! Analytic reliability and cost models for brick-based storage systems —
//! the models behind Figures 2 and 3 of *"A Decentralized Algorithm for
//! Erasure-Coded Virtual Disks"* (§1.2, "Why erasure codes?").
//!
//! The paper motivates erasure coding by comparing three ways to survive
//! brick failures: striping over high-end hardware, k-way replication over
//! commodity bricks, and m-of-n erasure coding over commodity bricks. This
//! crate computes, for any such design:
//!
//! * **MTTDL** — mean time to first data loss, from a birth–death Markov
//!   model of concurrent brick failures under random (declustered)
//!   striping ([`markov`], [`schemes`]),
//! * **storage overhead** — raw/logical capacity ratio, including
//!   intra-brick RAID-5 overhead ([`schemes`]),
//!
//! and regenerates the paper's figure series ([`figures`]).
//!
//! # Examples
//!
//! ```
//! use fab_reliability::{BrickParams, InternalLayout, Scheme, SystemDesign};
//!
//! // The paper's headline design: 5-of-8 erasure coding on commodity
//! // RAID-5 bricks reaches a million-year MTTDL at a fraction of
//! // replication's storage cost (cross-brick overhead n/m = 1.6).
//! let design = SystemDesign {
//!     scheme: Scheme::ErasureCode { m: 5, n: 8 },
//!     brick: BrickParams::commodity(),
//!     layout: InternalLayout::Raid5,
//! };
//! assert!(design.mttdl_years(256.0) > 1e6);
//! assert!((design.scheme.cross_brick_overhead() - 1.6).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod figures;
pub mod markov;
pub mod params;
pub mod schemes;
pub mod sensitivity;

pub use figures::{
    cheapest_meeting_target, figure2, figure2_designs, figure3, MttdlPoint, MttdlSeries,
    OverheadPoint, OverheadSeries,
};
pub use markov::{declustered_mttdl_hours, BirthDeathChain};
pub use params::{BrickParams, InternalLayout, HOURS_PER_YEAR};
pub use schemes::{Scheme, SystemDesign};
pub use sensitivity::{sweep, sweep_all, Parameter, Sweep, SweepPoint};
