//! Birth–death Markov chains for mean-time-to-data-loss computation.
//!
//! All MTTDL figures in this crate come from one primitive: a chain whose
//! state counts concurrently-failed units out of a population, with
//! per-state failure and repair rates, and an absorbing state at the loss
//! threshold. The expected absorption time from the all-healthy state is
//! the MTTDL. The chain is tiny (loss thresholds ≤ a dozen), so we solve
//! the hitting-time linear system exactly with Gaussian elimination rather
//! than approximating with closed forms.

/// A birth–death chain over states `0..=absorbing` where `absorbing` is
/// data loss. State `i` means `i` units are concurrently failed.
#[derive(Debug, Clone)]
pub struct BirthDeathChain {
    /// `fail[i]`: rate of one more failure while `i` are already down
    /// (for `i` in `0..absorbing`).
    fail: Vec<f64>,
    /// `repair[i]`: rate of one repair completing while `i` are down
    /// (for `i` in `1..absorbing`; `repair[0]` is ignored).
    repair: Vec<f64>,
}

impl BirthDeathChain {
    /// Creates a chain from per-state failure and repair rates. Both
    /// slices have length `absorbing` (the loss threshold).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, are zero, or any rate is negative or
    /// non-finite, or any failure rate is zero (the chain must be able to
    /// reach absorption).
    pub fn new(fail: Vec<f64>, repair: Vec<f64>) -> Self {
        assert_eq!(fail.len(), repair.len(), "rate vectors must align");
        assert!(!fail.is_empty(), "need at least one transient state");
        for (i, &r) in fail.iter().enumerate() {
            assert!(
                r.is_finite() && r > 0.0,
                "failure rate {i} must be positive"
            );
        }
        for (i, &r) in repair.iter().enumerate() {
            assert!(
                r.is_finite() && r >= 0.0,
                "repair rate {i} must be non-negative"
            );
        }
        BirthDeathChain { fail, repair }
    }

    /// Expected time from state 0 (all healthy) to absorption (data loss).
    ///
    /// Solves the standard hitting-time recurrence
    /// `E_i = 1/r_i + (fail_i/r_i)·E_{i+1} + (repair_i/r_i)·E_{i−1}`
    /// with `E_absorbing = 0`, via the tridiagonal closed form: define
    /// `D_i = E_i − E_{i+1}`; then `D_i = (1 + repair_i · D_{i−1}) / fail_i`
    /// and `E_0 = Σ D_i`.
    pub fn mean_time_to_absorption(&self) -> f64 {
        let k = self.fail.len();
        let mut d_prev = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..k {
            let repair = if i == 0 { 0.0 } else { self.repair[i] };
            let d_i = (1.0 + repair * d_prev) / self.fail[i];
            total += d_i;
            d_prev = d_i;
        }
        total
    }
}

/// MTTDL of a declustered redundancy group: `population` units each
/// failing at rate `1/mttf_hours`, repairs at rate `concurrent_failures /
/// repair_hours` (parallel repair), data lost when `tolerance + 1` units
/// are down at once.
///
/// With random (declustered) striping every unit shares data with every
/// other, so after the first failure *any* further failure counts toward
/// the loss threshold — the paper's observation that system MTTDL is
/// roughly proportional to the number of failure combinations that lose
/// data.
///
/// # Panics
///
/// Panics if `population <= tolerance` or any parameter is non-positive.
pub fn declustered_mttdl_hours(
    population: usize,
    tolerance: usize,
    mttf_hours: f64,
    repair_hours: f64,
) -> f64 {
    assert!(population > tolerance, "population must exceed tolerance");
    assert!(mttf_hours > 0.0 && repair_hours > 0.0);
    let lambda = 1.0 / mttf_hours;
    let mu = 1.0 / repair_hours;
    let k = tolerance + 1;
    let fail: Vec<f64> = (0..k).map(|i| (population - i) as f64 * lambda).collect();
    let repair: Vec<f64> = (0..k).map(|i| i as f64 * mu).collect();
    BirthDeathChain::new(fail, repair).mean_time_to_absorption()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_redundancy_is_population_mttf() {
        // tolerance 0: loss at the first failure; E = 1/(B·λ).
        let mttdl = declustered_mttdl_hours(100, 0, 1000.0, 10.0);
        assert!((mttdl - 10.0).abs() < 1e-9, "1000h/100 units = 10h");
    }

    #[test]
    fn single_tolerance_matches_closed_form() {
        // Two units, tolerance 1, no-repair sanity: E = 1/(2λ) + 1/λ.
        let chain = BirthDeathChain::new(vec![2.0, 1.0], vec![0.0, 0.0]);
        assert!((chain.mean_time_to_absorption() - 1.5).abs() < 1e-12);

        // With repair μ ≫ λ, the classic mirror formula MTTF²/(2·MTTR)
        // dominates: for λ=1e-5, μ=1e-1 → E ≈ 5e8.
        let mttdl = declustered_mttdl_hours(2, 1, 1e5, 10.0);
        let closed = 1e5 * 1e5 / (2.0 * 10.0);
        let ratio = mttdl / closed;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mttdl_increases_with_tolerance() {
        let base: Vec<f64> = (0..4)
            .map(|t| declustered_mttdl_hours(64, t, 5e5, 24.0))
            .collect();
        for w in base.windows(2) {
            assert!(
                w[1] > w[0] * 100.0,
                "each tolerated failure should add orders of magnitude: {base:?}"
            );
        }
    }

    #[test]
    fn mttdl_decreases_with_population() {
        let small = declustered_mttdl_hours(10, 2, 5e5, 24.0);
        let large = declustered_mttdl_hours(1000, 2, 5e5, 24.0);
        assert!(small > large * 100.0);
    }

    #[test]
    fn faster_repair_helps() {
        let slow = declustered_mttdl_hours(50, 2, 5e5, 168.0);
        let fast = declustered_mttdl_hours(50, 2, 5e5, 12.0);
        assert!(fast > slow * 10.0);
    }

    #[test]
    #[should_panic(expected = "population must exceed tolerance")]
    fn tolerance_bound_enforced() {
        let _ = declustered_mttdl_hours(3, 3, 1e5, 24.0);
    }
}
