//! Component reliability parameters.
//!
//! The paper extrapolated brick and network reliability from the
//! component-wise figures in Asami's dissertation (the paper's reference 3),
//! which is
//! not publicly available. We substitute well-known commodity figures of
//! the same era and document them here; Figures 2–3 compare the *shapes* of
//! MTTDL/overhead curves across redundancy schemes, which depend on the
//! redundancy combinatorics rather than on these absolute constants (see
//! DESIGN.md, substitutions table).

use serde::{Deserialize, Serialize};

/// Physical parameters of one storage brick and its repair process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrickParams {
    /// Disks per brick.
    pub disks_per_brick: usize,
    /// Raw capacity of one disk, in terabytes.
    pub disk_capacity_tb: f64,
    /// Mean time to failure of one disk, in hours.
    pub disk_mttf_hours: f64,
    /// Mean time to repair/replace a failed disk inside a brick, in hours.
    pub disk_repair_hours: f64,
    /// MTTF of the brick's non-disk components (controller, PSU, fans) —
    /// failures that take the whole brick's data offline, in hours.
    pub brick_other_mttf_hours: f64,
    /// Mean time to repair/rebuild a failed brick from redundancy, in
    /// hours. This is the window during which additional failures
    /// accumulate toward data loss.
    pub brick_repair_hours: f64,
}

impl BrickParams {
    /// Commodity bricks circa 2004: 12 × 250 GB ATA disks with 500k-hour
    /// disk MTTF, a 100k-hour chassis, 24 h disk swap, 48 h brick rebuild.
    pub fn commodity() -> Self {
        BrickParams {
            disks_per_brick: 12,
            disk_capacity_tb: 0.25,
            disk_mttf_hours: 500_000.0,
            disk_repair_hours: 24.0,
            brick_other_mttf_hours: 100_000.0,
            brick_repair_hours: 48.0,
        }
    }

    /// High-end, high-reliability array hardware (the "conventional
    /// arrays" of Figure 2's striping curve). Vendors quote terminal
    /// data-loss MTTFs of tens of thousands of years for such arrays
    /// (fully redundant controllers, paths, and power), so the non-disk
    /// terminal-failure MTTF here is 4×10⁸ hours (~45 000 years).
    pub fn high_end() -> Self {
        BrickParams {
            disks_per_brick: 12,
            disk_capacity_tb: 0.25,
            disk_mttf_hours: 1_000_000.0,
            disk_repair_hours: 12.0,
            brick_other_mttf_hours: 400_000_000.0,
            brick_repair_hours: 24.0,
        }
    }

    /// Raw capacity of one brick in terabytes.
    pub fn raw_capacity_tb(&self) -> f64 {
        self.disks_per_brick as f64 * self.disk_capacity_tb
    }

    /// Usable capacity of one brick under the given internal layout.
    pub fn usable_capacity_tb(&self, layout: InternalLayout) -> f64 {
        match layout {
            InternalLayout::Raid0 => self.raw_capacity_tb(),
            InternalLayout::Raid5 => {
                self.raw_capacity_tb() * (self.disks_per_brick as f64 - 1.0)
                    / self.disks_per_brick as f64
            }
        }
    }
}

impl Default for BrickParams {
    fn default() -> Self {
        BrickParams::commodity()
    }
}

/// How a brick protects data internally (Figures 2–3 compare both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InternalLayout {
    /// Non-redundant striping over the brick's disks: any disk failure
    /// loses the brick's data.
    Raid0,
    /// Single-parity protection over the brick's disks: the brick's data
    /// survives one disk failure at a time.
    Raid5,
}

impl std::fmt::Display for InternalLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternalLayout::Raid0 => write!(f, "R0"),
            InternalLayout::Raid5 => write!(f, "R5"),
        }
    }
}

/// Hours per year, for MTTDL reporting in years.
pub const HOURS_PER_YEAR: f64 = 24.0 * 365.25;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        let p = BrickParams::commodity();
        assert!((p.raw_capacity_tb() - 3.0).abs() < 1e-9);
        assert!((p.usable_capacity_tb(InternalLayout::Raid0) - 3.0).abs() < 1e-9);
        assert!((p.usable_capacity_tb(InternalLayout::Raid5) - 2.75).abs() < 1e-9);
    }

    #[test]
    fn high_end_is_more_reliable() {
        let c = BrickParams::commodity();
        let h = BrickParams::high_end();
        assert!(h.brick_other_mttf_hours > c.brick_other_mttf_hours);
        assert!(h.disk_mttf_hours > c.disk_mttf_hours);
    }

    #[test]
    fn layout_display() {
        assert_eq!(InternalLayout::Raid0.to_string(), "R0");
        assert_eq!(InternalLayout::Raid5.to_string(), "R5");
    }
}
