//! Redundancy schemes and their MTTDL / storage-overhead models
//! (Figures 2 and 3 of the paper).
//!
//! Three ways to protect data across bricks are compared:
//!
//! 1. **Striping** over (possibly high-end) bricks — no cross-brick
//!    redundancy; data is lost when any one brick terminally fails.
//! 2. **k-way replication** — each block lives on k bricks; loss requires
//!    k concurrent brick failures touching one replica group.
//! 3. **m-of-n erasure coding** — loss requires more than n−m concurrent
//!    brick failures touching one stripe.
//!
//! The system model: bricks form redundancy groups of `g` bricks each
//! (`g = k` for replication, `n` for erasure coding, 1 for striping); a
//! group loses data when more than `tolerance` of its bricks are down at
//! once, and the system loses data when any group does. Per-group loss
//! times come from the birth–death chain in [`crate::markov`]; with `G`
//! statistically independent groups the system MTTDL is the group MTTDL
//! divided by `G` — the paper's observation that "the system-wide MTTDL is
//! roughly proportional to the number of combinations of brick failures
//! that can lead to a data loss" (§1.2).

use crate::markov::declustered_mttdl_hours;
use crate::params::{BrickParams, InternalLayout, HOURS_PER_YEAR};
use serde::{Deserialize, Serialize};

/// A cross-brick redundancy scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Non-redundant striping across bricks.
    Striping,
    /// k-way replication (k ≥ 1; k = 1 degenerates to striping).
    Replication {
        /// Number of copies.
        k: usize,
    },
    /// m-of-n deterministic erasure coding.
    ErasureCode {
        /// Data blocks per stripe.
        m: usize,
        /// Total blocks per stripe.
        n: usize,
    },
}

impl Scheme {
    /// Number of concurrent *brick* failures the scheme survives.
    pub fn tolerance(&self) -> usize {
        match self {
            Scheme::Striping => 0,
            Scheme::Replication { k } => k - 1,
            Scheme::ErasureCode { m, n } => n - m,
        }
    }

    /// Raw-to-logical capacity ratio across bricks (excluding any
    /// intra-brick redundancy).
    pub fn cross_brick_overhead(&self) -> f64 {
        match self {
            Scheme::Striping => 1.0,
            Scheme::Replication { k } => *k as f64,
            Scheme::ErasureCode { m, n } => *n as f64 / *m as f64,
        }
    }

    /// Minimum number of bricks the scheme needs.
    pub fn min_bricks(&self) -> usize {
        match self {
            Scheme::Striping => 1,
            Scheme::Replication { k } => *k,
            Scheme::ErasureCode { n, .. } => *n,
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Striping => write!(f, "striping"),
            Scheme::Replication { k } => write!(f, "{k}-way replication"),
            Scheme::ErasureCode { m, n } => write!(f, "E.C.({m},{n})"),
        }
    }
}

/// A complete system design: scheme + brick hardware + internal layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemDesign {
    /// Cross-brick redundancy scheme.
    pub scheme: Scheme,
    /// Brick hardware parameters.
    pub brick: BrickParams,
    /// Intra-brick protection.
    pub layout: InternalLayout,
}

impl SystemDesign {
    /// Terminal MTTF of one brick in hours: the rate at which a brick
    /// irrecoverably loses its data.
    ///
    /// * R0: any disk failure or chassis failure is terminal.
    /// * R5: a chassis failure, or a second disk failing while the first
    ///   rebuilds (classic RAID-5 double-failure model).
    pub fn brick_mttf_hours(&self) -> f64 {
        let p = &self.brick;
        let d = p.disks_per_brick as f64;
        let disk_rate = match self.layout {
            InternalLayout::Raid0 => d / p.disk_mttf_hours,
            InternalLayout::Raid5 => {
                // Double-failure rate: d·λ · ((d−1)·λ) / μ, the standard
                // RAID-5 result MTTF²/(d(d−1)·MTTR).
                d * (d - 1.0) * p.disk_repair_hours / (p.disk_mttf_hours * p.disk_mttf_hours)
            }
        };
        let total_rate = disk_rate + 1.0 / p.brick_other_mttf_hours;
        1.0 / total_rate
    }

    /// Number of bricks needed to offer `logical_tb` of capacity.
    pub fn brick_count(&self, logical_tb: f64) -> usize {
        let usable = self.brick.usable_capacity_tb(self.layout);
        let raw_needed = logical_tb * self.scheme.cross_brick_overhead();
        let count = (raw_needed / usable).ceil() as usize;
        count.max(self.scheme.min_bricks())
    }

    /// Total storage overhead: raw disk capacity / logical capacity
    /// (the y-axis of Figure 3). Includes intra-brick R5 overhead.
    pub fn storage_overhead(&self) -> f64 {
        let internal = match self.layout {
            InternalLayout::Raid0 => 1.0,
            InternalLayout::Raid5 => {
                self.brick.disks_per_brick as f64 / (self.brick.disks_per_brick as f64 - 1.0)
            }
        };
        self.scheme.cross_brick_overhead() * internal
    }

    /// System MTTDL in hours for a given logical capacity.
    pub fn mttdl_hours(&self, logical_tb: f64) -> f64 {
        let bricks = self.brick_count(logical_tb);
        let group = self.scheme.min_bricks().max(1);
        let tolerance = self.scheme.tolerance().min(group - 1);
        let group_mttdl = declustered_mttdl_hours(
            group,
            tolerance,
            self.brick_mttf_hours(),
            self.brick.brick_repair_hours,
        );
        let groups = (bricks as f64 / group as f64).max(1.0);
        group_mttdl / groups
    }

    /// System MTTDL in years (the y-axis of Figure 2).
    pub fn mttdl_years(&self, logical_tb: f64) -> f64 {
        self.mttdl_hours(logical_tb) / HOURS_PER_YEAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(scheme: Scheme, layout: InternalLayout) -> SystemDesign {
        SystemDesign {
            scheme,
            brick: BrickParams::commodity(),
            layout,
        }
    }

    #[test]
    fn tolerances() {
        assert_eq!(Scheme::Striping.tolerance(), 0);
        assert_eq!(Scheme::Replication { k: 4 }.tolerance(), 3);
        assert_eq!(Scheme::ErasureCode { m: 5, n: 8 }.tolerance(), 3);
    }

    #[test]
    fn overheads() {
        assert!((Scheme::Replication { k: 4 }.cross_brick_overhead() - 4.0).abs() < 1e-12);
        assert!((Scheme::ErasureCode { m: 5, n: 8 }.cross_brick_overhead() - 1.6).abs() < 1e-12);
        // R5 bricks add d/(d−1).
        let d = design(Scheme::ErasureCode { m: 5, n: 8 }, InternalLayout::Raid5);
        assert!((d.storage_overhead() - 1.6 * 12.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn r5_bricks_outlast_r0_bricks() {
        let r0 = design(Scheme::Striping, InternalLayout::Raid0);
        let r5 = design(Scheme::Striping, InternalLayout::Raid5);
        assert!(r5.brick_mttf_hours() > r0.brick_mttf_hours() * 2.0);
    }

    #[test]
    fn brick_count_scales_with_capacity_and_overhead() {
        let rep = design(Scheme::Replication { k: 4 }, InternalLayout::Raid0);
        let ec = design(Scheme::ErasureCode { m: 5, n: 8 }, InternalLayout::Raid0);
        assert_eq!(rep.brick_count(3.0), 4);
        assert!(rep.brick_count(256.0) > ec.brick_count(256.0) * 2);
        // Minimum bricks respected even for tiny capacities.
        assert_eq!(ec.brick_count(0.1), 8);
    }

    /// The Figure 2 shape at one capacity point: 4-way replication ≥
    /// EC(5,8) ≫ striping; R5 bricks beat R0 bricks for the same scheme.
    #[test]
    fn figure2_ordering_holds() {
        let cap = 256.0;
        let striping_highend = SystemDesign {
            scheme: Scheme::Striping,
            brick: BrickParams::high_end(),
            layout: InternalLayout::Raid5,
        };
        let rep_r0 = design(Scheme::Replication { k: 4 }, InternalLayout::Raid0);
        let rep_r5 = design(Scheme::Replication { k: 4 }, InternalLayout::Raid5);
        let ec_r0 = design(Scheme::ErasureCode { m: 5, n: 8 }, InternalLayout::Raid0);
        let ec_r5 = design(Scheme::ErasureCode { m: 5, n: 8 }, InternalLayout::Raid5);

        let s = striping_highend.mttdl_years(cap);
        let (r0, r5) = (rep_r0.mttdl_years(cap), rep_r5.mttdl_years(cap));
        let (e0, e5) = (ec_r0.mttdl_years(cap), ec_r5.mttdl_years(cap));

        assert!(r0 > s * 1e2, "replication dwarfs striping: {r0} vs {s}");
        assert!(e0 > s * 1e1, "EC dwarfs striping: {e0} vs {s}");
        assert!(r5 > r0, "R5 bricks beat R0: {r5} vs {r0}");
        assert!(e5 > e0, "R5 bricks beat R0: {e5} vs {e0}");
        assert!(r0 > e0, "4-way replication edges out EC(5,8): {r0} vs {e0}");
        assert!(
            e0 > r0 / 1e2,
            "but EC stays within ~2 orders of magnitude: {e0} vs {r0}"
        );
    }

    /// MTTDL declines with capacity for every scheme (Figure 2's x-axis
    /// trend). Below the scheme's minimum brick count the curve plateaus
    /// (the system cannot shrink), so we assert non-increasing everywhere
    /// and strict decline across the full sweep.
    #[test]
    fn mttdl_declines_with_capacity() {
        for scheme in [
            Scheme::Striping,
            Scheme::Replication { k: 4 },
            Scheme::ErasureCode { m: 5, n: 8 },
        ] {
            let d = design(scheme, InternalLayout::Raid0);
            let caps = [1.0, 10.0, 100.0, 1000.0];
            let ys: Vec<f64> = caps.iter().map(|&c| d.mttdl_years(c)).collect();
            for w in ys.windows(2) {
                assert!(w[1] <= w[0], "{scheme}: {ys:?} must be non-increasing");
            }
            assert!(
                ys[3] < ys[0] / 10.0,
                "{scheme}: {ys:?} must decline over three decades"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Scheme::ErasureCode { m: 5, n: 8 }.to_string(), "E.C.(5,8)");
        assert_eq!(
            Scheme::Replication { k: 4 }.to_string(),
            "4-way replication"
        );
    }
}
