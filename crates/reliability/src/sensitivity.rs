//! Sensitivity analysis: how a design's MTTDL responds to each physical
//! parameter.
//!
//! The paper's Figures 2–3 fix the component constants; an operator
//! evaluating a real deployment wants to know which constants *matter*.
//! This module sweeps one parameter at a time and reports both the raw
//! MTTDL series and a local elasticity (d log MTTDL / d log parameter),
//! which makes the redundancy math tangible: for a scheme tolerating t
//! concurrent brick failures, MTTDL scales roughly as `MTTF^(t+1)` and
//! `repair^(−t)` — elasticities of about `t+1` and `−t`.

use crate::params::BrickParams;
use crate::schemes::SystemDesign;
use serde::{Deserialize, Serialize};

/// A physical parameter that can be swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parameter {
    /// Disk mean time to failure (hours).
    DiskMttf,
    /// Disk repair/replace time inside a brick (hours).
    DiskRepair,
    /// MTTF of the brick's non-disk components (hours).
    BrickOtherMttf,
    /// Brick rebuild time from cross-brick redundancy (hours).
    BrickRepair,
}

impl Parameter {
    /// All sweepable parameters.
    pub const ALL: [Parameter; 4] = [
        Parameter::DiskMttf,
        Parameter::DiskRepair,
        Parameter::BrickOtherMttf,
        Parameter::BrickRepair,
    ];

    /// Current value of this parameter in `brick`.
    pub fn get(&self, brick: &BrickParams) -> f64 {
        match self {
            Parameter::DiskMttf => brick.disk_mttf_hours,
            Parameter::DiskRepair => brick.disk_repair_hours,
            Parameter::BrickOtherMttf => brick.brick_other_mttf_hours,
            Parameter::BrickRepair => brick.brick_repair_hours,
        }
    }

    /// Returns `brick` with this parameter set to `value`.
    pub fn set(&self, mut brick: BrickParams, value: f64) -> BrickParams {
        match self {
            Parameter::DiskMttf => brick.disk_mttf_hours = value,
            Parameter::DiskRepair => brick.disk_repair_hours = value,
            Parameter::BrickOtherMttf => brick.brick_other_mttf_hours = value,
            Parameter::BrickRepair => brick.brick_repair_hours = value,
        }
        brick
    }
}

impl std::fmt::Display for Parameter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parameter::DiskMttf => write!(f, "disk MTTF"),
            Parameter::DiskRepair => write!(f, "disk repair time"),
            Parameter::BrickOtherMttf => write!(f, "brick chassis MTTF"),
            Parameter::BrickRepair => write!(f, "brick rebuild time"),
        }
    }
}

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Multiplier applied to the baseline parameter value.
    pub factor: f64,
    /// The resulting parameter value.
    pub value: f64,
    /// System MTTDL in years at that value.
    pub mttdl_years: f64,
}

/// The result of sweeping one parameter for one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// Which parameter was varied.
    pub parameter: Parameter,
    /// The sampled points (ascending factors).
    pub points: Vec<SweepPoint>,
    /// Local elasticity d(log MTTDL)/d(log value) at the baseline.
    pub elasticity: f64,
}

/// Sweeps `parameter` over `factors × baseline` for `design` at
/// `capacity_tb`, and estimates the baseline elasticity.
///
/// # Panics
///
/// Panics if `factors` has fewer than two entries or contains
/// non-positive values.
pub fn sweep(
    design: &SystemDesign,
    capacity_tb: f64,
    parameter: Parameter,
    factors: &[f64],
) -> Sweep {
    assert!(factors.len() >= 2, "need at least two sweep factors");
    assert!(
        factors.iter().all(|&f| f > 0.0),
        "sweep factors must be positive"
    );
    let baseline = parameter.get(&design.brick);
    let points: Vec<SweepPoint> = factors
        .iter()
        .map(|&factor| {
            let value = baseline * factor;
            let d = SystemDesign {
                brick: parameter.set(design.brick, value),
                ..*design
            };
            SweepPoint {
                factor,
                value,
                mttdl_years: d.mttdl_years(capacity_tb),
            }
        })
        .collect();
    // Central-difference elasticity around factor 1.0 (±10%).
    let up = SystemDesign {
        brick: parameter.set(design.brick, baseline * 1.1),
        ..*design
    }
    .mttdl_years(capacity_tb);
    let down = SystemDesign {
        brick: parameter.set(design.brick, baseline / 1.1),
        ..*design
    }
    .mttdl_years(capacity_tb);
    let elasticity = (up.ln() - down.ln()) / (1.1f64.ln() - (1.0 / 1.1f64).ln());
    Sweep {
        parameter,
        points,
        elasticity,
    }
}

/// Sweeps every parameter with a default factor ladder (1/8× … 8×).
pub fn sweep_all(design: &SystemDesign, capacity_tb: f64) -> Vec<Sweep> {
    let factors = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    Parameter::ALL
        .iter()
        .map(|&p| sweep(design, capacity_tb, p, &factors))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::InternalLayout;
    use crate::schemes::Scheme;

    fn design() -> SystemDesign {
        SystemDesign {
            scheme: Scheme::ErasureCode { m: 5, n: 8 },
            brick: BrickParams::commodity(),
            layout: InternalLayout::Raid0,
        }
    }

    #[test]
    fn parameter_get_set_round_trip() {
        let b = BrickParams::commodity();
        for p in Parameter::ALL {
            let v = p.get(&b);
            let b2 = p.set(b, v * 2.0);
            assert!((p.get(&b2) - v * 2.0).abs() < 1e-9, "{p}");
            // Other parameters untouched.
            for q in Parameter::ALL {
                if q != p {
                    assert!((q.get(&b2) - q.get(&b)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn mttf_elasticity_is_about_t_plus_one() {
        // E.C.(5,8) tolerates t = 3 concurrent brick failures, so MTTDL
        // scales as brickMTTF^(t+1) = ^4 — diluted by the disk share of
        // the brick failure rate (disks are ~70% of it under commodity
        // constants, chassis the rest): expect ≈ 0.7 × 4 ≈ 2.8.
        let s = sweep(&design(), 256.0, Parameter::DiskMttf, &[0.5, 1.0, 2.0]);
        assert!(
            (2.2..4.2).contains(&s.elasticity),
            "elasticity {}",
            s.elasticity
        );
        // Monotone increasing in MTTF.
        assert!(s
            .points
            .windows(2)
            .all(|w| w[1].mttdl_years > w[0].mttdl_years));
    }

    #[test]
    fn repair_elasticity_is_about_minus_t() {
        let s = sweep(&design(), 256.0, Parameter::BrickRepair, &[0.5, 1.0, 2.0]);
        assert!(
            (-3.5..=-2.0).contains(&s.elasticity),
            "elasticity {}",
            s.elasticity
        );
        assert!(s
            .points
            .windows(2)
            .all(|w| w[1].mttdl_years < w[0].mttdl_years));
    }

    #[test]
    fn chassis_mttf_matters_less_for_disk_dominated_bricks() {
        let disks = sweep(&design(), 256.0, Parameter::DiskMttf, &[0.5, 1.0, 2.0]);
        let chassis = sweep(
            &design(),
            256.0,
            Parameter::BrickOtherMttf,
            &[0.5, 1.0, 2.0],
        );
        // Both positive, but the chassis term is the smaller share of the
        // brick failure rate under commodity constants.
        assert!(chassis.elasticity > 0.0);
        assert!(disks.elasticity > chassis.elasticity);
    }

    #[test]
    fn sweep_all_covers_every_parameter() {
        let all = sweep_all(&design(), 256.0);
        assert_eq!(all.len(), 4);
        for s in &all {
            assert_eq!(s.points.len(), 7);
        }
    }
}
