//! The durable repair cursor: a tiny append-only checkpoint file that
//! lets a crashed/restarted driver resume from its last fsynced
//! watermark instead of rescanning the whole plan.
//!
//! ## On-disk format
//!
//! Fixed 24-byte records, appended and fsynced (`sync_data`) on every
//! checkpoint, using the same CRC discipline as the brick store:
//!
//! ```text
//! record := magic:   u32le  = 0x4652_4331  ("FRC1")
//!           plan:    u64le    fingerprint of the plan inputs
//!           mark:    u64le    contiguous-prefix watermark (plan index)
//!           crc:     u32le  = fab_store::crc32(first 20 bytes)
//! ```
//!
//! Recovery scans the file front to back and keeps the **last** record
//! whose magic and CRC check out and whose plan fingerprint matches the
//! current plan; a torn or corrupt tail (crash mid-append) is ignored.
//! A file checkpointed under a different plan fingerprint is discarded
//! entirely — resuming an old plan's watermark into a new plan would
//! silently skip stripes.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use fab_store::crc32;

/// Record magic: "FRC1".
const MAGIC: u32 = 0x4652_4331;
/// Bytes per checkpoint record.
const RECORD_BYTES: usize = 24;
/// Records kept before the file is compacted down to one on open.
const COMPACT_THRESHOLD: u64 = 4096;

/// A durable watermark for one repair plan.
#[derive(Debug)]
pub struct RepairCursor {
    file: File,
    plan_hash: u64,
    watermark: u64,
}

/// Parses one 24-byte record; `None` if torn or corrupt.
fn parse_record(rec: &[u8]) -> Option<(u64, u64)> {
    let magic = u32::from_le_bytes(rec.get(0..4)?.try_into().ok()?);
    if magic != MAGIC {
        return None;
    }
    let body = rec.get(0..20)?;
    let crc = u32::from_le_bytes(rec.get(20..24)?.try_into().ok()?);
    if crc32(body) != crc {
        return None;
    }
    let plan = u64::from_le_bytes(rec.get(4..12)?.try_into().ok()?);
    let mark = u64::from_le_bytes(rec.get(12..20)?.try_into().ok()?);
    Some((plan, mark))
}

fn encode_record(plan_hash: u64, watermark: u64) -> [u8; RECORD_BYTES] {
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    rec[4..12].copy_from_slice(&plan_hash.to_le_bytes());
    rec[12..20].copy_from_slice(&watermark.to_le_bytes());
    let crc = crc32(&rec[0..20]);
    rec[20..24].copy_from_slice(&crc.to_le_bytes());
    rec
}

impl RepairCursor {
    /// Opens (creating if absent) the cursor file at `path` for the plan
    /// identified by `plan_hash`, recovering the last durable watermark.
    pub fn open(path: &Path, plan_hash: u64) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)?;
        // Last valid record wins; torn/corrupt tails and foreign-plan
        // records are skipped.
        let mut watermark = 0u64;
        let mut records = 0u64;
        let mut foreign = false;
        for rec in contents.chunks_exact(RECORD_BYTES) {
            match parse_record(rec) {
                Some((plan, mark)) if plan == plan_hash => {
                    watermark = mark;
                    records += 1;
                }
                Some(_) => foreign = true,
                None => {}
            }
        }
        let mut cursor = RepairCursor {
            file,
            plan_hash,
            watermark,
        };
        // A file full of another plan's checkpoints, or one grown past
        // the compaction threshold, is rewritten as a single record.
        if foreign || records > COMPACT_THRESHOLD {
            cursor.rewrite()?;
        }
        Ok(cursor)
    }

    fn rewrite(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        let rec = encode_record(self.plan_hash, self.watermark);
        write_at_end(&mut self.file, &rec)?;
        self.file.sync_data()
    }

    /// The last durably recorded watermark: the number of leading plan
    /// entries known repaired (or skipped) before any crash.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Durably records `watermark`: append one record, then
    /// `sync_data`. Returns only after the record is on disk.
    pub fn checkpoint(&mut self, watermark: u64) -> io::Result<()> {
        if watermark == self.watermark {
            return Ok(());
        }
        let rec = encode_record(self.plan_hash, watermark);
        write_at_end(&mut self.file, &rec)?;
        self.file.sync_data()?;
        self.watermark = watermark;
        Ok(())
    }
}

/// Appends `rec` at the current end of file (the file is opened
/// read+write, so the offset is wherever the recovery scan left it —
/// seek explicitly).
fn write_at_end(file: &mut File, rec: &[u8]) -> io::Result<()> {
    use std::io::Seek;
    file.seek(io::SeekFrom::End(0))?;
    file.write_all(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fab-repair-cursor-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    #[test]
    fn fresh_cursor_starts_at_zero_and_persists() {
        let path = tmp("fresh");
        {
            let mut c = RepairCursor::open(&path, 7).unwrap();
            assert_eq!(c.watermark(), 0);
            c.checkpoint(5).unwrap();
            c.checkpoint(12).unwrap();
        }
        let c = RepairCursor::open(&path, 7).unwrap();
        assert_eq!(c.watermark(), 12, "last fsynced watermark survives reopen");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        {
            let mut c = RepairCursor::open(&path, 7).unwrap();
            c.checkpoint(9).unwrap();
        }
        // Crash mid-append: a partial record at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let rec = encode_record(7, 99);
            f.write_all(&rec[0..10]).unwrap();
        }
        let c = RepairCursor::open(&path, 7).unwrap();
        assert_eq!(c.watermark(), 9, "torn tail must not surface watermark 99");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_is_skipped() {
        let path = tmp("corrupt");
        {
            let mut c = RepairCursor::open(&path, 7).unwrap();
            c.checkpoint(3).unwrap();
            c.checkpoint(8).unwrap();
        }
        // Flip a byte in the last record's watermark field.
        {
            let mut contents = std::fs::read(&path).unwrap();
            let off = contents.len() - RECORD_BYTES + 12;
            contents[off] ^= 0xFF;
            std::fs::write(&path, &contents).unwrap();
        }
        let c = RepairCursor::open(&path, 7).unwrap();
        assert_eq!(c.watermark(), 3, "corrupt last record falls back to prior");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_plan_cursor_is_discarded() {
        let path = tmp("foreign");
        {
            let mut c = RepairCursor::open(&path, 7).unwrap();
            c.checkpoint(42).unwrap();
        }
        // Same file, different plan fingerprint: watermark must reset.
        let c = RepairCursor::open(&path, 8).unwrap();
        assert_eq!(c.watermark(), 0, "stale plan's watermark must not leak");
        drop(c);
        // And the stale records are gone: reopening under the old plan
        // no longer sees 42 either.
        let c = RepairCursor::open(&path, 7).unwrap();
        assert_eq!(c.watermark(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_is_idempotent_for_same_watermark() {
        let path = tmp("idem");
        let mut c = RepairCursor::open(&path, 7).unwrap();
        c.checkpoint(4).unwrap();
        let len_before = std::fs::metadata(&path).unwrap().len();
        c.checkpoint(4).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_before);
        std::fs::remove_file(&path).unwrap();
    }
}
