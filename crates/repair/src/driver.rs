//! The repair driver: runs a [`RepairPlan`] as a paced sequence of
//! scrubs, surviving aborts (retry with capped-exponential backoff),
//! throttling against foreground traffic (token buckets on stripes/sec
//! and bytes/sec), and prioritizing stripes the workload is actually
//! reading degraded ([`HealthMap`]).
//!
//! The core is sans-io, like the protocol `Coordinator` it drives: the
//! driver never scrubs, sleeps, or reads a clock itself. Callers poll
//! it with the current time and get back an [`Action`] — issue this
//! scrub, wait until then, or done. The same state machine therefore
//! runs identically under the deterministic simulator (torture
//! campaigns drive it on simulated time) and behind the blocking
//! wrapper in [`crate::inproc`] on wall-clock time over real sockets.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use fab_core::{OpResult, StripeId, StripeValue};
use fab_simnet::fault::Backoff;

use crate::health::HealthMap;
use crate::planner::RepairPlan;
use crate::stats::{RepairCounters, RepairStats};

/// Pacing and retry policy for one repair run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Scrub-rate ceiling in stripes per second; 0 = unthrottled.
    pub stripes_per_sec: u64,
    /// Reconstruction-rate ceiling in bytes per second; 0 = unthrottled.
    pub bytes_per_sec: u64,
    /// Maximum scrubs outstanding at once.
    pub max_inflight: usize,
    /// Attempts per stripe before giving up (aborts only; an abort under
    /// foreground write contention is expected and transient).
    pub max_attempts: u32,
    /// Delay schedule between retries of one stripe.
    pub backoff: Backoff,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            stripes_per_sec: 0,
            bytes_per_sec: 0,
            max_inflight: 4,
            max_attempts: 8,
            backoff: Backoff::default(),
        }
    }
}

/// What the caller should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Issue a scrub of this stripe (report back via
    /// [`RepairDriver::on_scrub_result`]).
    Scrub(StripeId),
    /// Nothing can be issued before this time (throttle or retry
    /// backoff). Poll again at `until_micros` — or earlier if a result
    /// arrives.
    Wait {
        /// Absolute time (same clock as `poll`'s `now`), microseconds.
        until_micros: u64,
    },
    /// In-flight scrubs are outstanding and nothing else can be issued;
    /// wait for a result.
    Idle,
    /// Every plan entry is terminal and nothing is in flight.
    Done,
}

/// Lifecycle of one plan entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Not yet issued (or awaiting a retry slot).
    Pending,
    /// A scrub is outstanding.
    Inflight,
    /// Reconstructed and re-stored.
    Repaired,
    /// Never written — scrub was a clean no-op.
    Skipped,
    /// Retry budget exhausted (outside the fault model).
    Failed,
    /// Covered by the durable cursor of a previous run.
    Resumed,
}

impl EntryState {
    fn is_terminal(self) -> bool {
        !matches!(self, EntryState::Pending | EntryState::Inflight)
    }

    /// Terminal states the durable watermark may advance over. `Failed`
    /// deliberately blocks the watermark so a restarted driver retries
    /// the stripe rather than recording it as done.
    fn advances_watermark(self) -> bool {
        matches!(
            self,
            EntryState::Repaired | EntryState::Skipped | EntryState::Resumed
        )
    }
}

/// Deterministic integer token bucket. Tokens are tracked in millionths
/// (unit-micros) so refill at `rate` units/sec over a microsecond clock
/// needs no division: `elapsed_micros * rate` IS the refill in
/// unit-micros.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    /// Units per second; 0 disables the bucket.
    rate: u64,
    /// Burst bound, in unit-micros.
    capacity_e6: u128,
    /// Current balance, in unit-micros.
    tokens_e6: u128,
    /// Last refill time.
    last_micros: u64,
}

impl TokenBucket {
    fn new(rate: u64, burst_units: u64) -> Self {
        let capacity_e6 = u128::from(burst_units) * 1_000_000;
        TokenBucket {
            rate,
            capacity_e6,
            tokens_e6: capacity_e6,
            last_micros: 0,
        }
    }

    fn refill(&mut self, now: u64) {
        if self.rate == 0 {
            return;
        }
        let elapsed = now.saturating_sub(self.last_micros);
        self.last_micros = self.last_micros.max(now);
        self.tokens_e6 = self
            .tokens_e6
            .saturating_add(u128::from(elapsed) * u128::from(self.rate))
            .min(self.capacity_e6);
    }

    /// Whether `cost` units are available right now (after refilling).
    fn ready(&mut self, now: u64, cost: u64) -> bool {
        if self.rate == 0 {
            return true;
        }
        self.refill(now);
        self.tokens_e6 >= u128::from(cost) * 1_000_000
    }

    fn take(&mut self, cost: u64) {
        if self.rate == 0 {
            return;
        }
        self.tokens_e6 = self
            .tokens_e6
            .saturating_sub(u128::from(cost) * 1_000_000);
    }

    /// Earliest time `cost` units will be available, assuming no other
    /// takers.
    fn ready_at(&self, now: u64, cost: u64) -> u64 {
        if self.rate == 0 {
            return now;
        }
        let need = (u128::from(cost) * 1_000_000).saturating_sub(self.tokens_e6);
        if need == 0 {
            return now;
        }
        let micros = need.div_ceil(u128::from(self.rate));
        now.saturating_add(u64::try_from(micros).unwrap_or(u64::MAX))
    }
}

/// A scheduled retry of one plan entry. The attempt count lives in
/// `RepairDriver::attempts` (it must survive the retry being promoted
/// back into the run queue).
#[derive(Debug, Clone, Copy)]
struct Retry {
    not_before: u64,
}

/// Terminal summary of a driver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Counter snapshot at the end of the run.
    pub stats: RepairStats,
    /// Stripes whose retry budget ran out (empty under the fault model).
    pub failed: Vec<StripeId>,
    /// Whether every plan entry reached `Repaired`/`Skipped`/`Resumed`.
    pub complete: bool,
}

/// The sans-io repair state machine. See the module docs for the
/// poll/on_scrub_result contract.
#[derive(Debug)]
pub struct RepairDriver {
    plan: RepairPlan,
    cfg: DriverConfig,
    idx_of: BTreeMap<StripeId, usize>,
    state: Vec<EntryState>,
    /// First plan index never yet promoted into the queue.
    next_idx: usize,
    /// Promoted work, front = highest priority (due retries, then hot
    /// degraded stripes).
    priority: VecDeque<usize>,
    /// Indexes currently sitting in `priority` (dedup guard).
    queued: BTreeSet<usize>,
    /// Pending retries by plan index.
    retries: BTreeMap<usize, Retry>,
    /// Scrub attempts so far by plan index (absent = none yet).
    attempts: BTreeMap<usize, u32>,
    inflight: usize,
    terminal: usize,
    watermark: usize,
    stripe_bucket: TokenBucket,
    byte_bucket: TokenBucket,
    counters: Arc<RepairCounters>,
    health: Option<HealthMap>,
    aborted: bool,
}

impl RepairDriver {
    /// A driver over `plan` with fresh counters.
    pub fn new(plan: RepairPlan, cfg: DriverConfig) -> Self {
        RepairDriver::with_counters(plan, cfg, Arc::new(RepairCounters::new()))
    }

    /// A driver publishing into caller-owned counters (shared with a
    /// status endpoint).
    pub fn with_counters(plan: RepairPlan, cfg: DriverConfig, counters: Arc<RepairCounters>) -> Self {
        let idx_of = plan
            .stripes
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let n = plan.stripes.len();
        counters.planned.set(n as u64);
        let stripe_bucket = TokenBucket::new(cfg.stripes_per_sec, cfg.stripes_per_sec.max(1));
        let byte_bucket = TokenBucket::new(
            cfg.bytes_per_sec,
            cfg.bytes_per_sec.max(plan.bytes_per_stripe),
        );
        RepairDriver {
            idx_of,
            state: vec![EntryState::Pending; n],
            next_idx: 0,
            priority: VecDeque::new(),
            queued: BTreeSet::new(),
            retries: BTreeMap::new(),
            attempts: BTreeMap::new(),
            inflight: 0,
            terminal: 0,
            watermark: 0,
            stripe_bucket,
            byte_bucket,
            counters,
            health: None,
            aborted: false,
            plan,
            cfg,
        }
    }

    /// Attaches a degraded-stripe feed: on every poll, freshly reported
    /// stripes jump the queue (hottest first).
    #[must_use]
    pub fn with_health(mut self, health: HealthMap) -> Self {
        self.health = Some(health);
        self
    }

    /// Marks the first `watermark` plan entries as already repaired by a
    /// previous run (from [`crate::cursor::RepairCursor::watermark`]).
    /// Entries past the watermark are re-scrubbed even if the previous
    /// run had repaired them out of order — re-repair is idempotent, a
    /// missed stripe is not.
    #[must_use]
    pub fn resume_from(mut self, watermark: u64) -> Self {
        let mark = usize::try_from(watermark)
            .unwrap_or(usize::MAX)
            .min(self.state.len());
        for s in self.state.iter_mut().take(mark) {
            *s = EntryState::Resumed;
        }
        self.terminal = mark;
        self.watermark = mark;
        self.next_idx = mark;
        self.counters.watermark.set(mark as u64);
        self
    }

    /// The plan being executed.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// The shared counters.
    pub fn counters(&self) -> Arc<RepairCounters> {
        Arc::clone(&self.counters)
    }

    /// Contiguous-prefix progress: every plan entry before this index is
    /// repaired/skipped. This is what gets checkpointed durably.
    pub fn watermark(&self) -> u64 {
        self.watermark as u64
    }

    /// Whether every entry is terminal and nothing is in flight.
    pub fn is_done(&self) -> bool {
        (self.terminal == self.state.len() && self.inflight == 0) || self.aborted
    }

    /// Stops issuing new scrubs; outstanding results are still absorbed.
    pub fn abort(&mut self) {
        self.aborted = true;
    }

    /// Terminal summary (meaningful once [`RepairDriver::is_done`]).
    pub fn outcome(&self) -> RepairOutcome {
        let failed: Vec<StripeId> = self
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == EntryState::Failed)
            .filter_map(|(i, _)| self.plan.stripes.get(i).copied())
            .collect();
        RepairOutcome {
            stats: self.counters.snapshot(),
            complete: !self.aborted && self.terminal == self.state.len() && failed.is_empty(),
            failed,
        }
    }

    /// Decides the next action as of `now` (microseconds, any monotonic
    /// origin — simulated or wall clock).
    pub fn poll(&mut self, now: u64) -> Action {
        if self.aborted {
            return Action::Done;
        }
        self.promote_health();
        self.promote_due_retries(now);
        if self.inflight >= self.cfg.max_inflight.max(1) {
            return Action::Idle;
        }
        let Some(idx) = self.next_candidate() else {
            if self.inflight > 0 {
                return Action::Idle;
            }
            // Nothing runnable: either a retry is cooling down, or the
            // plan is exhausted.
            if let Some(until) = self.earliest_retry() {
                return Action::Wait {
                    until_micros: until,
                };
            }
            return Action::Done;
        };
        // Both buckets must clear before the scrub is issued; otherwise
        // requeue the candidate at the front and report when to retry.
        let cost = self.plan.bytes_per_stripe;
        let stripe_ok = self.stripe_bucket.ready(now, 1);
        let bytes_ok = self.byte_bucket.ready(now, cost);
        if !(stripe_ok && bytes_ok) {
            let until = self
                .stripe_bucket
                .ready_at(now, 1)
                .max(self.byte_bucket.ready_at(now, cost));
            self.priority.push_front(idx);
            self.queued.insert(idx);
            self.counters.throttle_waits.inc();
            return Action::Wait {
                until_micros: until,
            };
        }
        let Some(&stripe) = self.plan.stripes.get(idx) else {
            // Unreachable: every queued index came from the plan.
            return Action::Idle;
        };
        self.stripe_bucket.take(1);
        self.byte_bucket.take(cost);
        if let Some(s) = self.state.get_mut(idx) {
            *s = EntryState::Inflight;
        }
        self.inflight += 1;
        Action::Scrub(stripe)
    }

    /// Feeds back the outcome of a scrub issued by [`RepairDriver::poll`].
    /// Results for stripes outside the plan, or not in flight, are
    /// ignored (stale completions after an abort).
    pub fn on_scrub_result(&mut self, stripe: StripeId, result: &OpResult, now: u64) {
        let Some(&idx) = self.idx_of.get(&stripe) else {
            return;
        };
        if self.state.get(idx) != Some(&EntryState::Inflight) {
            return;
        }
        self.inflight = self.inflight.saturating_sub(1);
        let next = match result {
            OpResult::Stripe(StripeValue::Nil) => {
                self.counters.skipped.inc();
                EntryState::Skipped
            }
            r if r.is_ok() => {
                self.counters.repaired.inc();
                self.counters
                    .bytes_reconstructed
                    .add(self.plan.bytes_per_stripe);
                EntryState::Repaired
            }
            _aborted => {
                let attempts = self.attempts.get(&idx).copied().unwrap_or(0) + 1;
                self.attempts.insert(idx, attempts);
                if attempts >= self.cfg.max_attempts.max(1) {
                    self.retries.remove(&idx);
                    self.counters.failed.inc();
                    EntryState::Failed
                } else {
                    self.counters.retried.inc();
                    let delay = self.cfg.backoff.delay_micros(attempts.saturating_sub(1));
                    self.retries.insert(
                        idx,
                        Retry {
                            not_before: now.saturating_add(delay),
                        },
                    );
                    EntryState::Pending
                }
            }
        };
        if let Some(s) = self.state.get_mut(idx) {
            *s = next;
        }
        if next.is_terminal() {
            self.terminal += 1;
            self.advance_watermark();
        }
    }

    fn advance_watermark(&mut self) {
        while self
            .state
            .get(self.watermark)
            .is_some_and(|s| s.advances_watermark())
        {
            self.watermark += 1;
        }
        self.counters
            .watermark
            .set(self.watermark as u64);
    }

    /// Pulls freshly reported degraded stripes to the queue front.
    fn promote_health(&mut self) {
        let Some(health) = &self.health else {
            return;
        };
        if health.degraded_count() == 0 {
            return;
        }
        let hot = health.drain_hot();
        // push_front in reverse so the hottest ends up at the very front.
        for stripe in hot.iter().rev() {
            let Some(&idx) = self.idx_of.get(stripe) else {
                continue;
            };
            if self.state.get(idx) != Some(&EntryState::Pending)
                || self.queued.contains(&idx)
                || self.retries.contains_key(&idx)
            {
                continue;
            }
            self.priority.push_front(idx);
            self.queued.insert(idx);
        }
    }

    /// Moves retries whose backoff has elapsed to the queue front.
    fn promote_due_retries(&mut self, now: u64) {
        let due: Vec<usize> = self
            .retries
            .iter()
            .filter(|(_, r)| r.not_before <= now)
            .map(|(&i, _)| i)
            .collect();
        for idx in due {
            self.retries.remove(&idx);
            if self.queued.insert(idx) {
                self.priority.push_front(idx);
            }
        }
    }

    fn next_candidate(&mut self) -> Option<usize> {
        while let Some(idx) = self.priority.pop_front() {
            self.queued.remove(&idx);
            if self.state.get(idx) == Some(&EntryState::Pending) {
                return Some(idx);
            }
        }
        while self.next_idx < self.state.len() {
            let idx = self.next_idx;
            self.next_idx += 1;
            if self.state.get(idx) == Some(&EntryState::Pending) && !self.retries.contains_key(&idx)
            {
                return Some(idx);
            }
        }
        None
    }

    fn earliest_retry(&self) -> Option<u64> {
        self.retries.values().map(|r| r.not_before).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::RepairPlan;
    use fab_core::AbortReason;

    fn plan(n: u64) -> RepairPlan {
        RepairPlan {
            stripes: (0..n).map(StripeId).collect(),
            bytes_per_stripe: 192,
            hash: 0xABCD,
        }
    }

    fn data() -> OpResult {
        OpResult::Stripe(StripeValue::Data(vec![bytes::Bytes::from_static(&[1; 4])]))
    }

    #[test]
    fn runs_plan_to_completion_and_advances_watermark() {
        let mut d = RepairDriver::new(plan(5), DriverConfig::default());
        let mut repaired = Vec::new();
        let mut now = 0;
        loop {
            match d.poll(now) {
                Action::Scrub(s) => {
                    repaired.push(s);
                    d.on_scrub_result(s, &data(), now);
                }
                Action::Wait { until_micros } => now = until_micros,
                Action::Idle => unreachable!("results are fed synchronously"),
                Action::Done => break,
            }
        }
        assert_eq!(repaired, (0..5).map(StripeId).collect::<Vec<_>>());
        assert_eq!(d.watermark(), 5);
        let out = d.outcome();
        assert!(out.complete);
        assert_eq!(out.stats.repaired, 5);
        assert_eq!(out.stats.bytes_reconstructed, 5 * 192);
    }

    #[test]
    fn nil_scrubs_count_as_skipped_not_repaired() {
        let mut d = RepairDriver::new(plan(3), DriverConfig::default());
        while let Action::Scrub(s) = d.poll(0) {
            d.on_scrub_result(s, &OpResult::Stripe(StripeValue::Nil), 0);
        }
        assert!(d.is_done());
        let out = d.outcome();
        assert!(out.complete);
        assert_eq!(out.stats.skipped, 3);
        assert_eq!(out.stats.repaired, 0);
        assert_eq!(out.stats.bytes_reconstructed, 0);
        assert_eq!(d.watermark(), 3, "skipped stripes advance the watermark");
    }

    #[test]
    fn bounded_inflight() {
        let cfg = DriverConfig {
            max_inflight: 2,
            ..DriverConfig::default()
        };
        let mut d = RepairDriver::new(plan(5), cfg);
        let Action::Scrub(a) = d.poll(0) else { panic!() };
        let Action::Scrub(b) = d.poll(0) else { panic!() };
        assert_eq!(d.poll(0), Action::Idle, "third scrub held back");
        d.on_scrub_result(a, &data(), 0);
        assert!(matches!(d.poll(0), Action::Scrub(_)));
        d.on_scrub_result(b, &data(), 0);
    }

    #[test]
    fn aborts_retry_with_backoff_then_fail_terminally() {
        let cfg = DriverConfig {
            max_attempts: 3,
            ..DriverConfig::default()
        };
        let backoff = cfg.backoff;
        let mut d = RepairDriver::new(plan(1), cfg);
        let mut now = 0u64;
        for attempt in 0..3u32 {
            let action = d.poll(now);
            let Action::Scrub(s) = action else {
                panic!("attempt {attempt}: {action:?}");
            };
            d.on_scrub_result(s, &OpResult::Aborted(AbortReason::Conflict), now);
            if attempt < 2 {
                // Cooling down: the driver asks us to wait out the backoff.
                let Action::Wait { until_micros } = d.poll(now) else {
                    panic!("expected backoff wait after attempt {attempt}");
                };
                assert_eq!(until_micros, now + backoff.delay_micros(attempt));
                now = until_micros;
            }
        }
        assert!(d.is_done());
        let out = d.outcome();
        assert!(!out.complete);
        assert_eq!(out.failed, vec![StripeId(0)]);
        assert_eq!(out.stats.retried, 2);
        assert_eq!(out.stats.failed, 1);
        assert_eq!(d.watermark(), 0, "failed stripe blocks the watermark");
    }

    #[test]
    fn stripe_throttle_paces_issues() {
        let cfg = DriverConfig {
            stripes_per_sec: 1,
            max_inflight: 8,
            ..DriverConfig::default()
        };
        let mut d = RepairDriver::new(plan(3), cfg);
        // Burst capacity is one stripe: first scrub immediate.
        let Action::Scrub(a) = d.poll(0) else { panic!() };
        d.on_scrub_result(a, &data(), 0);
        // Second must wait out the 1/sec refill.
        let Action::Wait { until_micros } = d.poll(0) else {
            panic!()
        };
        assert_eq!(until_micros, 1_000_000);
        assert!(matches!(d.poll(until_micros), Action::Scrub(_)));
        assert!(d.counters().snapshot().throttle_waits >= 1);
    }

    #[test]
    fn byte_throttle_paces_issues() {
        let cfg = DriverConfig {
            bytes_per_sec: 192, // exactly one stripe per second
            max_inflight: 8,
            ..DriverConfig::default()
        };
        let mut d = RepairDriver::new(plan(2), cfg);
        let Action::Scrub(a) = d.poll(0) else { panic!() };
        d.on_scrub_result(a, &data(), 0);
        let Action::Wait { until_micros } = d.poll(0) else {
            panic!()
        };
        assert_eq!(until_micros, 1_000_000);
    }

    #[test]
    fn health_reports_jump_the_queue() {
        let health = HealthMap::new();
        let mut d = RepairDriver::new(plan(10), DriverConfig::default()).with_health(health.clone());
        health.report(StripeId(7));
        health.report(StripeId(7));
        health.report(StripeId(4));
        let Action::Scrub(first) = d.poll(0) else { panic!() };
        let Action::Scrub(second) = d.poll(0) else { panic!() };
        let Action::Scrub(third) = d.poll(0) else { panic!() };
        assert_eq!(first, StripeId(7), "hottest degraded stripe first");
        assert_eq!(second, StripeId(4));
        assert_eq!(third, StripeId(0), "then plan order");
        // A report for an already-issued stripe is not re-queued.
        health.report(StripeId(7));
        let Action::Scrub(fourth) = d.poll(0) else { panic!() };
        assert_eq!(fourth, StripeId(1));
    }

    #[test]
    fn resume_skips_the_durable_prefix_exactly() {
        let mut d = RepairDriver::new(plan(6), DriverConfig::default()).resume_from(4);
        assert_eq!(d.watermark(), 4);
        let mut issued = Vec::new();
        while let Action::Scrub(s) = d.poll(0) {
            issued.push(s);
            d.on_scrub_result(s, &data(), 0);
        }
        assert_eq!(issued, vec![StripeId(4), StripeId(5)]);
        assert!(d.is_done());
        assert!(d.outcome().complete);
        assert_eq!(d.watermark(), 6);
    }

    #[test]
    fn stale_results_are_ignored() {
        let mut d = RepairDriver::new(plan(2), DriverConfig::default());
        // Result for a stripe never issued, and one outside the plan.
        d.on_scrub_result(StripeId(1), &data(), 0);
        d.on_scrub_result(StripeId(99), &data(), 0);
        assert_eq!(d.counters().snapshot().repaired, 0);
        assert_eq!(d.watermark(), 0);
    }

    #[test]
    fn abort_stops_issuing() {
        let mut d = RepairDriver::new(plan(5), DriverConfig::default());
        let Action::Scrub(s) = d.poll(0) else { panic!() };
        d.abort();
        assert_eq!(d.poll(0), Action::Done);
        // A straggler result is still absorbed without panicking.
        d.on_scrub_result(s, &data(), 0);
        assert!(!d.outcome().complete);
    }

    #[test]
    fn watermark_is_contiguous_despite_out_of_order_completion() {
        let cfg = DriverConfig {
            max_inflight: 3,
            ..DriverConfig::default()
        };
        let mut d = RepairDriver::new(plan(3), cfg);
        let Action::Scrub(s0) = d.poll(0) else { panic!() };
        let Action::Scrub(s1) = d.poll(0) else { panic!() };
        let Action::Scrub(s2) = d.poll(0) else { panic!() };
        d.on_scrub_result(s2, &data(), 0);
        assert_eq!(d.watermark(), 0, "stripe 0 still outstanding");
        d.on_scrub_result(s0, &data(), 0);
        assert_eq!(d.watermark(), 1);
        d.on_scrub_result(s1, &data(), 0);
        assert_eq!(d.watermark(), 3, "contiguous prefix catches up");
    }
}
