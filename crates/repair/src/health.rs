//! Degraded-stripe tracking: reads that had to take the recovery path
//! report their stripe here, and the repair driver promotes the hottest
//! degraded stripes to the front of the queue.
//!
//! Until a stripe is repaired, every read of it pays the recovery tax
//! (the dominant degraded-read cost in erasure-coded systems), so
//! repairing stripes the workload actually touches first directly cuts
//! foreground latency.

use std::collections::BTreeMap;
use std::sync::Arc;

use fab_core::StripeId;
use parking_lot::Mutex;

/// A shared map of stripe → degraded-read count. Cheap to clone; all
/// clones observe the same map.
///
/// Lock discipline: every method takes the internal lock for a few map
/// operations and releases it before returning — no calls are made with
/// the lock held, so `HealthMap` can never participate in a lock cycle.
#[derive(Debug, Clone, Default)]
pub struct HealthMap {
    inner: Arc<Mutex<BTreeMap<StripeId, u64>>>,
}

impl HealthMap {
    /// An empty map.
    pub fn new() -> Self {
        HealthMap::default()
    }

    /// Records one degraded (recovery-path) read of `stripe`.
    pub fn report(&self, stripe: StripeId) {
        let mut map = self.inner.lock();
        *map.entry(stripe).or_insert(0) += 1;
    }

    /// Takes the current hot set, hottest first (ties broken by stripe
    /// id for determinism), clearing the map. Callers own filtering out
    /// stripes they no longer care about.
    pub fn drain_hot(&self) -> Vec<StripeId> {
        let drained: Vec<(StripeId, u64)> = {
            let mut map = self.inner.lock();
            std::mem::take(&mut *map).into_iter().collect()
        };
        let mut entries = drained;
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        entries.into_iter().map(|(s, _)| s).collect()
    }

    /// Number of distinct degraded stripes currently recorded. (Named to
    /// avoid the ubiquitous `len`/`is_empty` pair: the static lint engine
    /// resolves calls by method name, and a lock-taking `len` would put
    /// every collection in the workspace under suspicion.)
    pub fn degraded_count(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hottest_first_with_deterministic_ties() {
        let h = HealthMap::new();
        for _ in 0..3 {
            h.report(StripeId(7));
        }
        h.report(StripeId(2));
        h.report(StripeId(9));
        assert_eq!(h.degraded_count(), 3);
        assert_eq!(
            h.drain_hot(),
            vec![StripeId(7), StripeId(2), StripeId(9)],
            "count desc, then stripe id asc"
        );
        assert_eq!(h.degraded_count(), 0, "drain clears the map");
    }

    #[test]
    fn clones_share_state() {
        let h = HealthMap::new();
        let h2 = h.clone();
        h2.report(StripeId(1));
        assert_eq!(h.drain_hot(), vec![StripeId(1)]);
    }
}
