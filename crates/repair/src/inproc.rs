//! Blocking runners for the sans-io [`RepairDriver`]: a synchronous
//! single-client loop (sim tests, torture differential runs) and a
//! threaded in-process repair job ([`InProcRepair`]) that `fabd` spawns
//! to serve `RepairStart` without blocking its event loop.
//!
//! This module owns every wall-clock and thread concern of the repair
//! subsystem; everything else in the crate is deterministic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use fab_core::{OpResult, StripeId};
use fab_volume::RegisterClient;

use crate::cursor::RepairCursor;
use crate::driver::{Action, DriverConfig, RepairDriver, RepairOutcome};
use crate::health::HealthMap;
use crate::planner::RepairPlan;
use crate::stats::{RepairCounters, RepairStats};

/// Stripes of watermark advance between durable cursor checkpoints.
/// Small enough that a crash loses little progress, large enough that
/// the fsync cost disappears into the scrub cost.
pub const CHECKPOINT_EVERY: u64 = 32;

fn maybe_checkpoint(cursor: &mut Option<RepairCursor>, watermark: u64, every: u64) {
    let Some(c) = cursor.as_mut() else { return };
    if watermark.saturating_sub(c.watermark()) >= every.max(1) {
        // Checkpointing is best-effort progress insurance: an fsync
        // failure degrades to "restart rescans more", never to a wrong
        // watermark, so the repair itself keeps going without a cursor.
        if c.checkpoint(watermark).is_err() {
            *cursor = None;
        }
    }
}

fn final_checkpoint(cursor: &mut Option<RepairCursor>, watermark: u64) {
    if let Some(c) = cursor.as_mut() {
        let _ = c.checkpoint(watermark);
    }
}

/// Runs `driver` to completion over one synchronous client, on the wall
/// clock. Scrubs are issued one at a time (the client interface is
/// synchronous), so `max_inflight` is effectively 1; throttle waits
/// become real sleeps. Checkpoints `cursor` (if any) every
/// `checkpoint_every` stripes of watermark advance and once at the end.
pub fn run_with_client<C: RegisterClient>(
    driver: &mut RepairDriver,
    client: &mut C,
    mut cursor: Option<RepairCursor>,
    checkpoint_every: u64,
) -> RepairOutcome {
    let started = Instant::now();
    let counters = driver.counters();
    loop {
        let now = as_micros(started.elapsed());
        match driver.poll(now) {
            Action::Scrub(stripe) => {
                let t0 = Instant::now();
                let result = client.scrub(stripe);
                counters.record_scrub_micros(as_micros(t0.elapsed()));
                driver.on_scrub_result(stripe, &result, as_micros(started.elapsed()));
                maybe_checkpoint(&mut cursor, driver.watermark(), checkpoint_every);
            }
            Action::Wait { until_micros } => {
                std::thread::sleep(Duration::from_micros(until_micros.saturating_sub(now)));
            }
            // Unreachable with a synchronous client (nothing stays in
            // flight across poll calls), but a clean stall-free fallback
            // beats asserting on it.
            Action::Idle => std::thread::sleep(Duration::from_millis(1)),
            Action::Done => break,
        }
    }
    final_checkpoint(&mut cursor, driver.watermark());
    driver.outcome()
}

fn as_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A handle to an in-process repair job: lock-free status snapshots and
/// abort for an event loop, join for tests and the bench harness.
#[derive(Debug)]
pub struct InProcRepair {
    counters: Arc<RepairCounters>,
    abort: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    complete: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<RepairOutcome>>,
}

impl InProcRepair {
    /// Starts a repair of `plan` over the given clients (one worker
    /// thread per client; in-flight concurrency is the smaller of
    /// `cfg.max_inflight` and the client count). If `cursor_path` is
    /// given, the run resumes from that durable cursor and checkpoints
    /// into it. The call itself never blocks on repair work — it opens
    /// the cursor file and spawns threads.
    pub fn spawn<C>(
        plan: RepairPlan,
        cfg: DriverConfig,
        clients: Vec<C>,
        cursor_path: Option<PathBuf>,
        health: Option<HealthMap>,
    ) -> std::io::Result<InProcRepair>
    where
        C: RegisterClient + Send + 'static,
    {
        Self::spawn_inner(
            plan,
            cfg,
            clients,
            cursor_path,
            health,
            Arc::new(RepairCounters::new()),
        )
    }

    /// [`InProcRepair::spawn`], but publishing progress through
    /// instruments registered in `registry` under `repair_*` names.
    /// Counters in the registry are cumulative across runs; the
    /// `planned`/`watermark` gauges reflect the latest run.
    pub fn spawn_registered<C>(
        plan: RepairPlan,
        cfg: DriverConfig,
        clients: Vec<C>,
        cursor_path: Option<PathBuf>,
        health: Option<HealthMap>,
        registry: &fab_obs::Registry,
    ) -> std::io::Result<InProcRepair>
    where
        C: RegisterClient + Send + 'static,
    {
        Self::spawn_inner(
            plan,
            cfg,
            clients,
            cursor_path,
            health,
            Arc::new(RepairCounters::registered(registry)),
        )
    }

    fn spawn_inner<C>(
        plan: RepairPlan,
        cfg: DriverConfig,
        clients: Vec<C>,
        cursor_path: Option<PathBuf>,
        health: Option<HealthMap>,
        counters: Arc<RepairCounters>,
    ) -> std::io::Result<InProcRepair>
    where
        C: RegisterClient + Send + 'static,
    {
        let cursor = match cursor_path {
            Some(path) => Some(RepairCursor::open(&path, plan.hash)?),
            None => None,
        };
        let mut driver = RepairDriver::with_counters(plan, cfg, Arc::clone(&counters));
        if let Some(c) = &cursor {
            driver = driver.resume_from(c.watermark());
        }
        if let Some(h) = health {
            driver = driver.with_health(h);
        }
        let abort = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let complete = Arc::new(AtomicBool::new(false));
        let handle = {
            let abort = Arc::clone(&abort);
            let done = Arc::clone(&done);
            let complete = Arc::clone(&complete);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let outcome = orchestrate(driver, clients, cursor, &abort, &counters);
                complete.store(outcome.complete, Ordering::Release);
                done.store(true, Ordering::Release);
                outcome
            })
        };
        Ok(InProcRepair {
            counters,
            abort,
            done,
            complete,
            handle: Some(handle),
        })
    }

    /// Point-in-time stats (lock-free; callable from an event loop).
    pub fn status(&self) -> RepairStats {
        self.counters.snapshot()
    }

    /// Whether the job has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Whether the job finished with every stripe repaired or skipped.
    pub fn is_complete(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }

    /// Asks the job to stop after in-flight scrubs drain (lock-free).
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    /// Waits for the job and returns its outcome. `None` if the repair
    /// thread panicked (a bug — the driver itself never panics) or the
    /// handle was already consumed. (Named `wait`, not `join`: the static
    /// lint engine resolves calls by method name, and thread-handle
    /// `join()` calls elsewhere would otherwise appear to reach this.)
    pub fn wait(mut self) -> Option<RepairOutcome> {
        self.handle.take()?.join().ok()
    }
}

/// One scrub result flowing back from a worker.
struct WorkerResult {
    stripe: StripeId,
    result: OpResult,
}

/// The repair thread: polls the driver, fans scrubs out to worker
/// threads (one per client), and checkpoints the cursor as the
/// watermark advances.
fn orchestrate<C>(
    mut driver: RepairDriver,
    clients: Vec<C>,
    mut cursor: Option<RepairCursor>,
    abort: &AtomicBool,
    counters: &Arc<RepairCounters>,
) -> RepairOutcome
where
    C: RegisterClient + Send + 'static,
{
    let started = Instant::now();
    let (job_tx, job_rx) = channel::unbounded::<StripeId>();
    let (result_tx, result_rx) = channel::unbounded::<WorkerResult>();
    let workers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let jobs = job_rx.clone();
            let results = result_tx.clone();
            let counters = Arc::clone(counters);
            std::thread::spawn(move || {
                while let Ok(stripe) = jobs.recv() {
                    let t0 = Instant::now();
                    let result = client.scrub(stripe);
                    counters.record_scrub_micros(as_micros(t0.elapsed()));
                    if results.send(WorkerResult { stripe, result }).is_err() {
                        break;
                    }
                }
            })
        })
        .collect();
    drop(result_tx);
    loop {
        if abort.load(Ordering::Acquire) {
            driver.abort();
        }
        // Absorb anything that has already landed.
        while let Ok(done) = result_rx.try_recv() {
            driver.on_scrub_result(done.stripe, &done.result, as_micros(started.elapsed()));
            maybe_checkpoint(&mut cursor, driver.watermark(), CHECKPOINT_EVERY);
        }
        let now = as_micros(started.elapsed());
        match driver.poll(now) {
            Action::Scrub(stripe) => {
                if job_tx.send(stripe).is_err() {
                    // All workers died (client panic); give up cleanly.
                    driver.abort();
                }
            }
            Action::Wait { until_micros } => {
                let timeout = Duration::from_micros(until_micros.saturating_sub(now));
                if let Ok(done) = result_rx.recv_timeout(timeout) {
                    driver.on_scrub_result(done.stripe, &done.result, as_micros(started.elapsed()));
                    maybe_checkpoint(&mut cursor, driver.watermark(), CHECKPOINT_EVERY);
                }
            }
            Action::Idle => {
                // Results are the only thing that can unblock us; the
                // timeout keeps abort responsive.
                if let Ok(done) = result_rx.recv_timeout(Duration::from_millis(50)) {
                    driver.on_scrub_result(done.stripe, &done.result, as_micros(started.elapsed()));
                    maybe_checkpoint(&mut cursor, driver.watermark(), CHECKPOINT_EVERY);
                }
            }
            Action::Done => break,
        }
    }
    drop(job_tx);
    for w in workers {
        let _ = w.join();
    }
    final_checkpoint(&mut cursor, driver.watermark());
    driver.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fab_core::{OpResult, RegisterConfig, StripeValue};

    /// A scripted in-memory client: pre-written stripes scrub to data,
    /// the rest to nil.
    #[derive(Debug, Clone)]
    struct FakeClient {
        written: std::collections::BTreeSet<u64>,
    }

    impl RegisterClient for FakeClient {
        fn config(&self) -> RegisterConfig {
            RegisterConfig::new(2, 4, 16).unwrap()
        }
        fn read_stripe(&mut self, _stripe: StripeId) -> OpResult {
            OpResult::Stripe(StripeValue::Nil)
        }
        fn write_stripe(&mut self, _stripe: StripeId, _blocks: Vec<Bytes>) -> OpResult {
            OpResult::Written
        }
        fn read_block(&mut self, _stripe: StripeId, _j: usize) -> OpResult {
            OpResult::Block(fab_core::BlockValue::Nil)
        }
        fn write_block(&mut self, _stripe: StripeId, _j: usize, _block: Bytes) -> OpResult {
            OpResult::Written
        }
        fn read_blocks(&mut self, _stripe: StripeId, _js: Vec<usize>) -> OpResult {
            OpResult::Blocks(Vec::new())
        }
        fn write_blocks(&mut self, _stripe: StripeId, _updates: Vec<(usize, Bytes)>) -> OpResult {
            OpResult::Written
        }
        fn scrub(&mut self, stripe: StripeId) -> OpResult {
            if self.written.contains(&stripe.0) {
                OpResult::Stripe(StripeValue::Data(vec![Bytes::from_static(&[7; 16]); 2]))
            } else {
                OpResult::Stripe(StripeValue::Nil)
            }
        }
    }

    fn plan(n: u64) -> RepairPlan {
        RepairPlan {
            stripes: (0..n).map(StripeId).collect(),
            bytes_per_stripe: 32,
            hash: 99,
        }
    }

    #[test]
    fn synchronous_runner_completes_and_counts() {
        let mut driver = RepairDriver::new(plan(8), DriverConfig::default());
        let mut client = FakeClient {
            written: [0u64, 3, 5].into_iter().collect(),
        };
        let out = run_with_client(&mut driver, &mut client, None, CHECKPOINT_EVERY);
        assert!(out.complete);
        assert_eq!(out.stats.repaired, 3);
        assert_eq!(out.stats.skipped, 5);
        assert_eq!(out.stats.bytes_reconstructed, 3 * 32);
    }

    #[test]
    fn threaded_runner_completes_over_multiple_workers() {
        let clients: Vec<FakeClient> = (0..3)
            .map(|_| FakeClient {
                written: (0..64).collect(),
            })
            .collect();
        let cfg = DriverConfig {
            max_inflight: 3,
            ..DriverConfig::default()
        };
        let job = InProcRepair::spawn(plan(64), cfg, clients, None, None).unwrap();
        let out = job.wait().expect("repair thread finished");
        assert!(out.complete);
        assert_eq!(out.stats.repaired, 64);
        assert_eq!(out.stats.watermark, 64);
    }

    #[test]
    fn abort_stops_a_threaded_run() {
        let clients = vec![FakeClient {
            written: (0..100_000).collect(),
        }];
        let cfg = DriverConfig {
            stripes_per_sec: 20, // slow enough that abort lands mid-run
            ..DriverConfig::default()
        };
        let job = InProcRepair::spawn(plan(100_000), cfg, clients, None, None).unwrap();
        job.abort();
        let out = job.wait().expect("repair thread finished");
        assert!(!out.complete);
        assert!(out.stats.finished() < 100_000);
    }

    #[test]
    fn cursor_resume_after_simulated_crash_misses_no_stripe() {
        let path = std::env::temp_dir().join(format!(
            "fab-repair-inproc-resume-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // First run: repair the first half, then "crash" (abort without
        // a final checkpoint path — emulated by running a driver
        // manually and checkpointing every stripe).
        let mut cursor = RepairCursor::open(&path, 99).unwrap();
        let mut driver = RepairDriver::new(plan(40), DriverConfig::default());
        let mut client = FakeClient {
            written: (0..40).collect(),
        };
        let mut issued = 0;
        loop {
            let now = 0;
            match driver.poll(now) {
                Action::Scrub(s) => {
                    let r = client.scrub(s);
                    driver.on_scrub_result(s, &r, now);
                    cursor.checkpoint(driver.watermark()).unwrap();
                    issued += 1;
                    if issued == 17 {
                        break; // crash: no further checkpoints, no epilogue
                    }
                }
                _ => break,
            }
        }
        drop(cursor);
        drop(driver);
        // Restart: resume from the durable watermark via spawn().
        let job = InProcRepair::spawn(
            plan(40),
            DriverConfig::default(),
            vec![client],
            Some(path.clone()),
            None,
        )
        .unwrap();
        let out = job.wait().expect("repair thread finished");
        assert!(out.complete);
        assert_eq!(
            out.stats.repaired + out.stats.skipped,
            40 - 17,
            "resume repairs exactly the un-checkpointed suffix"
        );
        assert_eq!(out.stats.watermark, 40);
        std::fs::remove_file(&path).unwrap();
    }
}
