//! Background rebuild for FAB clusters: when a brick's disk is
//! replaced, every stripe it hosted runs degraded until the §3 scrub
//! operation reconstructs it. This crate turns the single-stripe
//! `scrub` primitive into an operable subsystem:
//!
//! * [`planner`] — which stripes need repair ([`SegmentMap`] placement,
//!   [`RepairPlan`] enumeration, full-volume scrub mode);
//! * [`driver`] — the sans-io [`RepairDriver`] state machine: bounded
//!   in-flight scrubs, token-bucket throttles (stripes/sec, bytes/sec),
//!   capped-exponential retry of aborted scrubs, degraded-stripe
//!   prioritization;
//! * [`cursor`] — the durable [`RepairCursor`] watermark, so a crashed
//!   driver resumes instead of rescanning;
//! * [`health`] — the shared [`HealthMap`] fed by recovery-path reads;
//! * [`stats`] — lock-free [`RepairCounters`] and [`RepairStats`]
//!   snapshots for `repair-status` and the bench harness;
//! * [`inproc`] — blocking runners over any
//!   [`RegisterClient`](fab_volume::RegisterClient): the same driver
//!   repairs a simulated cluster and a TCP cluster.
//!
//! Everything outside [`inproc`] is deterministic (no clocks, no
//! threads, no ambient randomness): torture campaigns drive the state
//! machine on simulated time and stay bit-identical.

pub mod cursor;
pub mod driver;
pub mod health;
pub mod inproc;
pub mod planner;
pub mod stats;

pub use cursor::RepairCursor;
pub use driver::{Action, DriverConfig, RepairDriver, RepairOutcome};
pub use health::HealthMap;
pub use inproc::{run_with_client, InProcRepair, CHECKPOINT_EVERY};
pub use planner::{plan_brick_rebuild, plan_full_scrub, PlanError, RepairPlan, SegmentMap};
pub use stats::{RepairCounters, RepairStats};
