//! Repair planning: which stripes must be scrubbed after a brick is
//! replaced, and in what order.
//!
//! A FAB cluster scatters each stripe's n segments over a *segment
//! group* of bricks ([`SegmentMap`]). When a brick's disk is replaced
//! (wiped), every stripe whose group includes that brick has lost one
//! segment and runs degraded until a scrub reconstructs the stripe and
//! re-stores a fresh segment on the newcomer (§3 of the paper). The
//! [`RepairPlan`] enumerates exactly those stripes; the driver then
//! paces the scrubs against foreground traffic.

use fab_core::StripeId;
use fab_volume::VolumeGeometry;

/// How stripes are placed on bricks.
///
/// Stripe `s`'s segment group is the `group_size` bricks starting at
/// `s % num_bricks`, wrapping around — a rotated round-robin placement
/// that spreads rebuild load over the whole cluster. When `group_size ==
/// num_bricks` (the common small-cluster case in this repo, where every
/// brick hosts a segment of every stripe) the group is the full cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMap {
    /// Bricks in the cluster.
    pub num_bricks: u32,
    /// Bricks per segment group (the register code's n).
    pub group_size: u32,
}

/// Errors constructing a [`SegmentMap`] or a [`RepairPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// `group_size` must be in `1..=num_bricks`.
    BadGroupSize {
        /// Cluster size.
        num_bricks: u32,
        /// Requested group size.
        group_size: u32,
    },
    /// The target brick id is not a cluster member.
    UnknownBrick {
        /// Cluster size.
        num_bricks: u32,
        /// Requested brick.
        brick: u32,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadGroupSize {
                num_bricks,
                group_size,
            } => write!(
                f,
                "segment group size {group_size} invalid for {num_bricks} bricks"
            ),
            PlanError::UnknownBrick { num_bricks, brick } => {
                write!(f, "brick {brick} not in cluster of {num_bricks}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl SegmentMap {
    /// A placement over `num_bricks` bricks with `group_size`-brick
    /// segment groups.
    pub fn new(num_bricks: u32, group_size: u32) -> Result<Self, PlanError> {
        if group_size == 0 || group_size > num_bricks {
            return Err(PlanError::BadGroupSize {
                num_bricks,
                group_size,
            });
        }
        Ok(SegmentMap {
            num_bricks,
            group_size,
        })
    }

    /// A full-cluster placement: every brick hosts a segment of every
    /// stripe (the layout of this repo's n-brick register clusters).
    pub fn full(num_bricks: u32) -> Result<Self, PlanError> {
        SegmentMap::new(num_bricks, num_bricks)
    }

    /// The bricks hosting `stripe`'s segments, in segment order.
    pub fn group(&self, stripe: StripeId) -> Vec<u32> {
        let start = (stripe.0 % u64::from(self.num_bricks)) as u32;
        (0..self.group_size)
            .map(|k| (start + k) % self.num_bricks)
            .collect()
    }

    /// Whether `brick` hosts a segment of `stripe`.
    pub fn contains(&self, stripe: StripeId, brick: u32) -> bool {
        if brick >= self.num_bricks {
            return false;
        }
        let start = (stripe.0 % u64::from(self.num_bricks)) as u32;
        // Distance from the group start to `brick`, wrapping.
        let dist = (brick + self.num_bricks - start) % self.num_bricks;
        dist < self.group_size
    }
}

/// An ordered list of stripes to scrub, with enough identity to detect
/// a stale cursor file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// Stripes to scrub, ascending. The durable cursor's watermark is an
    /// index into this order, so the order must be a pure function of
    /// the plan inputs.
    pub stripes: Vec<StripeId>,
    /// Bytes of logical data reconstructed per repaired stripe
    /// (`m * block_size`), used for byte-rate throttling and stats.
    pub bytes_per_stripe: u64,
    /// Fingerprint of the plan inputs. A cursor checkpointed under a
    /// different hash is ignored on load: resuming an old plan's
    /// watermark into a new plan would silently skip stripes.
    pub hash: u64,
}

/// FNV-1a, the cursor/plan fingerprint hash. Stability across runs and
/// processes is what matters here, not collision resistance.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn plan_hash(geom: &VolumeGeometry, map: &SegmentMap, target: u64) -> u64 {
    fnv1a(&[
        geom.stripe_base,
        geom.stripe_count,
        geom.m as u64,
        geom.block_size as u64,
        u64::from(map.num_bricks),
        u64::from(map.group_size),
        target,
    ])
}

/// Plans the rebuild of a replaced/wiped brick: every stripe of the
/// volume whose segment group includes `brick`, each exactly once, in
/// ascending stripe order.
pub fn plan_brick_rebuild(
    geom: &VolumeGeometry,
    map: &SegmentMap,
    brick: u32,
) -> Result<RepairPlan, PlanError> {
    if brick >= map.num_bricks {
        return Err(PlanError::UnknownBrick {
            num_bricks: map.num_bricks,
            brick,
        });
    }
    let stripes = (geom.stripe_base..geom.stripe_base + geom.stripe_count)
        .map(StripeId)
        .filter(|&s| map.contains(s, brick))
        .collect();
    Ok(RepairPlan {
        stripes,
        bytes_per_stripe: geom.m as u64 * geom.block_size as u64,
        hash: plan_hash(geom, map, u64::from(brick)),
    })
}

/// Plans a full-volume scrub: every stripe of the volume, in ascending
/// order, regardless of placement (background integrity pass).
pub fn plan_full_scrub(geom: &VolumeGeometry, map: &SegmentMap) -> RepairPlan {
    let stripes = (geom.stripe_base..geom.stripe_base + geom.stripe_count)
        .map(StripeId)
        .collect();
    RepairPlan {
        stripes,
        bytes_per_stripe: geom.m as u64 * geom.block_size as u64,
        hash: plan_hash(geom, map, u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_volume::Layout;

    fn geom(stripes: u64) -> VolumeGeometry {
        VolumeGeometry::new(stripes, 3, 64, Layout::Interleaved)
    }

    #[test]
    fn full_map_includes_every_brick_in_every_stripe() {
        let map = SegmentMap::full(5).unwrap();
        for s in 0..20 {
            for b in 0..5 {
                assert!(map.contains(StripeId(s), b));
            }
            assert_eq!(map.group(StripeId(s)).len(), 5);
        }
    }

    #[test]
    fn rotated_groups_wrap_and_agree_with_contains() {
        let map = SegmentMap::new(7, 3).unwrap();
        assert_eq!(map.group(StripeId(5)), vec![5, 6, 0]);
        for s in 0..30u64 {
            let group = map.group(StripeId(s));
            for b in 0..7u32 {
                assert_eq!(
                    group.contains(&b),
                    map.contains(StripeId(s), b),
                    "stripe {s} brick {b}"
                );
            }
        }
    }

    #[test]
    fn brick_rebuild_plan_is_exact() {
        let map = SegmentMap::new(7, 3).unwrap();
        let g = geom(40);
        let plan = plan_brick_rebuild(&g, &map, 2).unwrap();
        // Exactly the stripes containing brick 2, ascending, no dups.
        let expect: Vec<StripeId> = (0..40)
            .map(StripeId)
            .filter(|&s| map.contains(s, 2))
            .collect();
        assert_eq!(plan.stripes, expect);
        assert!(plan.stripes.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(plan.bytes_per_stripe, 3 * 64);
    }

    #[test]
    fn full_cluster_rebuild_covers_whole_volume() {
        let map = SegmentMap::full(5).unwrap();
        let g = geom(12);
        let plan = plan_brick_rebuild(&g, &map, 4).unwrap();
        assert_eq!(plan.stripes.len(), 12);
        let scrub = plan_full_scrub(&g, &map);
        assert_eq!(scrub.stripes, (0..12).map(StripeId).collect::<Vec<_>>());
        assert_ne!(plan.hash, scrub.hash, "rebuild and scrub are distinct plans");
    }

    #[test]
    fn stripe_base_is_respected() {
        let map = SegmentMap::full(4).unwrap();
        let g = VolumeGeometry::new(6, 2, 32, Layout::Linear).with_base(100);
        let plan = plan_brick_rebuild(&g, &map, 0).unwrap();
        assert!(plan.stripes.iter().all(|s| (100..106).contains(&s.0)));
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        assert!(matches!(
            SegmentMap::new(4, 5),
            Err(PlanError::BadGroupSize { .. })
        ));
        assert!(matches!(
            SegmentMap::new(4, 0),
            Err(PlanError::BadGroupSize { .. })
        ));
        let map = SegmentMap::full(4).unwrap();
        assert!(matches!(
            plan_brick_rebuild(&geom(4), &map, 9),
            Err(PlanError::UnknownBrick { .. })
        ));
    }

    #[test]
    fn hash_distinguishes_plan_inputs() {
        let map = SegmentMap::full(5).unwrap();
        let a = plan_brick_rebuild(&geom(10), &map, 1).unwrap();
        let b = plan_brick_rebuild(&geom(10), &map, 2).unwrap();
        let c = plan_brick_rebuild(&geom(11), &map, 1).unwrap();
        assert_ne!(a.hash, b.hash);
        assert_ne!(a.hash, c.hash);
        let again = plan_brick_rebuild(&geom(10), &map, 1).unwrap();
        assert_eq!(a.hash, again.hash, "hash is a pure function of inputs");
    }
}
