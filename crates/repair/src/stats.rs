//! Repair observability: lock-free counters updated by the driver and
//! its workers, snapshotted into a [`RepairStats`] for `repair-status`
//! replies and the `repair_throughput` bench.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets (`2^0 .. 2^63` microseconds).
const BUCKETS: usize = 64;

/// Live repair counters. All fields are atomics so the driver thread,
/// scrub workers, and a status-serving event loop can share one
/// `Arc<RepairCounters>` without locks (lock-free by construction — no
/// lock-order obligations on the `fab-net` event loop).
#[derive(Debug)]
pub struct RepairCounters {
    /// Stripes in the plan.
    pub planned: AtomicU64,
    /// Stripes reconstructed and re-stored (scrub returned data).
    pub repaired: AtomicU64,
    /// Stripes that were never written — scrub was a clean no-op.
    pub skipped: AtomicU64,
    /// Scrub attempts retried after an abort (conflict with foreground
    /// writes, or recovery contention).
    pub retried: AtomicU64,
    /// Stripes given up on after the retry budget (outside the fault
    /// model; reported, never silently dropped).
    pub failed: AtomicU64,
    /// Logical bytes reconstructed (`m * block_size` per repaired stripe).
    pub bytes_reconstructed: AtomicU64,
    /// Times the driver had to wait on the token-bucket throttle.
    pub throttle_waits: AtomicU64,
    /// Contiguous-prefix progress through the plan (stripes).
    pub watermark: AtomicU64,
    /// Log2 histogram of per-scrub latency in microseconds.
    hist: [AtomicU64; BUCKETS],
}

impl Default for RepairCounters {
    fn default() -> Self {
        RepairCounters::new()
    }
}

impl RepairCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        RepairCounters {
            planned: AtomicU64::new(0),
            repaired: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            bytes_reconstructed: AtomicU64::new(0),
            throttle_waits: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one scrub's wall-clock latency.
    pub fn record_scrub_micros(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros()) as usize;
        let Some(slot) = self.hist.get(bucket.min(BUCKETS - 1)) else {
            return;
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot. Individual fields are read relaxed; a
    /// snapshot taken while scrubs are in flight is approximate, which
    /// is fine for status reporting.
    pub fn snapshot(&self) -> RepairStats {
        let hist: Vec<u64> = self
            .hist
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        RepairStats {
            planned: self.planned.load(Ordering::Relaxed),
            repaired: self.repaired.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            bytes_reconstructed: self.bytes_reconstructed.load(Ordering::Relaxed),
            throttle_waits: self.throttle_waits.load(Ordering::Relaxed),
            watermark: self.watermark.load(Ordering::Relaxed),
            scrub_p50_micros: percentile(&hist, 50),
            scrub_p99_micros: percentile(&hist, 99),
        }
    }
}

/// Approximate percentile from the log2 histogram: the upper bound of
/// the bucket containing the p-th sample.
fn percentile(hist: &[u64], p: u64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    // Index of the p-th percentile sample, 1-based, rounding up.
    let target = (total * p).div_ceil(100).max(1);
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= target {
            // Bucket i holds latencies in [2^(i-1), 2^i); report 2^i.
            return 1u64.checked_shl(i as u32).unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// A point-in-time view of a repair run, the payload of the
/// `RepairStatus` admin reply and of `BENCH_repair.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Stripes in the plan.
    pub planned: u64,
    /// Stripes reconstructed and re-stored.
    pub repaired: u64,
    /// Never-written stripes (clean no-op scrubs).
    pub skipped: u64,
    /// Retried scrub attempts.
    pub retried: u64,
    /// Stripes exhausted of retries.
    pub failed: u64,
    /// Logical bytes reconstructed.
    pub bytes_reconstructed: u64,
    /// Throttle-induced waits.
    pub throttle_waits: u64,
    /// Durable-cursor watermark (contiguous plan prefix done).
    pub watermark: u64,
    /// Median per-scrub latency (log2-bucket upper bound), microseconds.
    pub scrub_p50_micros: u64,
    /// 99th-percentile per-scrub latency, microseconds.
    pub scrub_p99_micros: u64,
}

impl RepairStats {
    /// Stripes in a terminal state.
    pub fn finished(&self) -> u64 {
        self.repaired + self.skipped + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_round_trip() {
        let c = RepairCounters::new();
        c.planned.store(10, Ordering::Relaxed);
        c.repaired.fetch_add(4, Ordering::Relaxed);
        c.skipped.fetch_add(2, Ordering::Relaxed);
        c.bytes_reconstructed.fetch_add(4096, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.planned, 10);
        assert_eq!(s.finished(), 6);
        assert_eq!(s.bytes_reconstructed, 4096);
    }

    #[test]
    fn percentiles_come_from_log2_buckets() {
        let c = RepairCounters::new();
        // 99 fast scrubs (~100us) and one slow outlier (~1s).
        for _ in 0..99 {
            c.record_scrub_micros(100);
        }
        c.record_scrub_micros(1_000_000);
        let s = c.snapshot();
        assert!(s.scrub_p50_micros >= 100 && s.scrub_p50_micros <= 256);
        assert!(s.scrub_p99_micros >= 100, "p99 {}", s.scrub_p99_micros);
        assert!(
            s.scrub_p99_micros < 1 << 21,
            "p99 {} should not include the single outlier",
            s.scrub_p99_micros
        );
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = RepairCounters::new().snapshot();
        assert_eq!(s.scrub_p50_micros, 0);
        assert_eq!(s.scrub_p99_micros, 0);
    }
}
