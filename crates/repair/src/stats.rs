//! Repair observability: lock-free counters updated by the driver and
//! its workers, snapshotted into a [`RepairStats`] for `repair-status`
//! replies and the `repair_throughput` bench.
//!
//! The instruments are `fab-obs` types. A standalone
//! [`RepairCounters::new`] keeps every field private to the repair run;
//! [`RepairCounters::registered`] shares the same instruments with a
//! node's [`fab_obs::Registry`] so they ride the `stats-snapshot` admin
//! exposition under `repair_*` names without any bridging code.

use std::sync::Arc;

use fab_obs::{Counter, Gauge, Histogram, Registry};

/// Live repair counters. All instruments are lock-free atomics so the
/// driver thread, scrub workers, and a status-serving event loop can
/// share one `Arc<RepairCounters>` without locks (lock-free by
/// construction — no lock-order obligations on the `fab-net` event
/// loop).
#[derive(Debug)]
pub struct RepairCounters {
    /// Stripes in the plan.
    pub planned: Arc<Gauge>,
    /// Stripes reconstructed and re-stored (scrub returned data).
    pub repaired: Arc<Counter>,
    /// Stripes that were never written — scrub was a clean no-op.
    pub skipped: Arc<Counter>,
    /// Scrub attempts retried after an abort (conflict with foreground
    /// writes, or recovery contention).
    pub retried: Arc<Counter>,
    /// Stripes given up on after the retry budget (outside the fault
    /// model; reported, never silently dropped).
    pub failed: Arc<Counter>,
    /// Logical bytes reconstructed (`m * block_size` per repaired stripe).
    pub bytes_reconstructed: Arc<Counter>,
    /// Times the driver had to wait on the token-bucket throttle.
    pub throttle_waits: Arc<Counter>,
    /// Contiguous-prefix progress through the plan (stripes).
    pub watermark: Arc<Gauge>,
    /// Log2 histogram of per-scrub latency in microseconds.
    scrub_micros: Arc<Histogram>,
}

impl Default for RepairCounters {
    fn default() -> Self {
        RepairCounters::new()
    }
}

impl RepairCounters {
    /// Fresh zeroed counters, private to this repair run.
    pub fn new() -> Self {
        RepairCounters {
            planned: Arc::new(Gauge::new()),
            repaired: Arc::new(Counter::new()),
            skipped: Arc::new(Counter::new()),
            retried: Arc::new(Counter::new()),
            failed: Arc::new(Counter::new()),
            bytes_reconstructed: Arc::new(Counter::new()),
            throttle_waits: Arc::new(Counter::new()),
            watermark: Arc::new(Gauge::new()),
            scrub_micros: Arc::new(Histogram::new()),
        }
    }

    /// Counters whose instruments live in `registry` under `repair_*`
    /// names, so a stats snapshot of the registry sees repair progress
    /// with no copying.
    pub fn registered(registry: &Registry) -> Self {
        RepairCounters {
            planned: registry.gauge("repair_planned"),
            repaired: registry.counter("repair_repaired"),
            skipped: registry.counter("repair_skipped"),
            retried: registry.counter("repair_retried"),
            failed: registry.counter("repair_failed"),
            bytes_reconstructed: registry.counter("repair_bytes_reconstructed"),
            throttle_waits: registry.counter("repair_throttle_waits"),
            watermark: registry.gauge("repair_watermark"),
            scrub_micros: registry.histogram("repair_scrub_micros"),
        }
    }

    /// Records one scrub's wall-clock latency.
    pub fn record_scrub_micros(&self, micros: u64) {
        self.scrub_micros.record(micros);
    }

    /// A point-in-time snapshot. Individual instruments are read
    /// relaxed; a snapshot taken while scrubs are in flight is
    /// approximate, which is fine for status reporting.
    pub fn snapshot(&self) -> RepairStats {
        let scrub = self.scrub_micros.snapshot();
        RepairStats {
            planned: self.planned.get(),
            repaired: self.repaired.get(),
            skipped: self.skipped.get(),
            retried: self.retried.get(),
            failed: self.failed.get(),
            bytes_reconstructed: self.bytes_reconstructed.get(),
            throttle_waits: self.throttle_waits.get(),
            watermark: self.watermark.get(),
            scrub_p50_micros: scrub.p50,
            scrub_p99_micros: scrub.p99,
        }
    }
}

/// A point-in-time view of a repair run, the payload of the
/// `RepairStatus` admin reply and of `BENCH_repair.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Stripes in the plan.
    pub planned: u64,
    /// Stripes reconstructed and re-stored.
    pub repaired: u64,
    /// Never-written stripes (clean no-op scrubs).
    pub skipped: u64,
    /// Retried scrub attempts.
    pub retried: u64,
    /// Stripes exhausted of retries.
    pub failed: u64,
    /// Logical bytes reconstructed.
    pub bytes_reconstructed: u64,
    /// Throttle-induced waits.
    pub throttle_waits: u64,
    /// Durable-cursor watermark (contiguous plan prefix done).
    pub watermark: u64,
    /// Median per-scrub latency (log2-bucket upper bound), microseconds.
    pub scrub_p50_micros: u64,
    /// 99th-percentile per-scrub latency, microseconds.
    pub scrub_p99_micros: u64,
}

impl RepairStats {
    /// Stripes in a terminal state.
    pub fn finished(&self) -> u64 {
        self.repaired + self.skipped + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_round_trip() {
        let c = RepairCounters::new();
        c.planned.set(10);
        c.repaired.add(4);
        c.skipped.add(2);
        c.bytes_reconstructed.add(4096);
        let s = c.snapshot();
        assert_eq!(s.planned, 10);
        assert_eq!(s.finished(), 6);
        assert_eq!(s.bytes_reconstructed, 4096);
    }

    #[test]
    fn percentiles_come_from_log2_buckets() {
        let c = RepairCounters::new();
        // 99 fast scrubs (~100us) and one slow outlier (~1s).
        for _ in 0..99 {
            c.record_scrub_micros(100);
        }
        c.record_scrub_micros(1_000_000);
        let s = c.snapshot();
        assert!(s.scrub_p50_micros >= 100 && s.scrub_p50_micros <= 256);
        assert!(s.scrub_p99_micros >= 100, "p99 {}", s.scrub_p99_micros);
        assert!(
            s.scrub_p99_micros < 1 << 21,
            "p99 {} should not include the single outlier",
            s.scrub_p99_micros
        );
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = RepairCounters::new().snapshot();
        assert_eq!(s.scrub_p50_micros, 0);
        assert_eq!(s.scrub_p99_micros, 0);
    }

    #[test]
    fn registered_counters_surface_in_the_registry_snapshot() {
        let registry = Registry::new();
        let c = RepairCounters::registered(&registry);
        c.planned.set(7);
        c.repaired.add(3);
        c.record_scrub_micros(150);
        let snap = registry.export();
        assert_eq!(snap.counter("repair_repaired"), Some(3));
        let planned = snap
            .gauges
            .iter()
            .find(|(name, _)| *name == "repair_planned")
            .map(|(_, v)| *v);
        assert_eq!(planned, Some(7));
        let scrub = snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "repair_scrub_micros")
            .map(|(_, h)| *h)
            .expect("histogram registered");
        assert_eq!(scrub.count, 1);
        // Same instrument: recording through the counters is visible in
        // later registry snapshots.
        c.record_scrub_micros(150);
        assert_eq!(
            registry
                .export()
                .histograms
                .iter()
                .find(|(name, _)| *name == "repair_scrub_micros")
                .map(|(_, h)| h.count),
            Some(2)
        );
    }
}
