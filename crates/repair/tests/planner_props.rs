//! Property coverage for the repair planner: over arbitrary volume
//! geometries and segment placements, a brick-rebuild plan contains
//! every stripe whose segment group includes the target brick exactly
//! once, and no others.

use fab_core::StripeId;
use fab_repair::{plan_brick_rebuild, plan_full_scrub, SegmentMap};
use fab_volume::{Layout, VolumeGeometry};
use proptest::prelude::*;

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop_oneof![Just(Layout::Linear), Just(Layout::Interleaved)]
}

prop_compose! {
    fn arb_geometry()(
        stripe_count in 1u64..200,
        m in 1usize..8,
        block_size in 1usize..512,
        layout in arb_layout(),
        stripe_base in 0u64..1000,
    ) -> VolumeGeometry {
        VolumeGeometry::new(stripe_count, m, block_size, layout).with_base(stripe_base)
    }
}

prop_compose! {
    fn arb_map()(num_bricks in 1u32..16)(
        num_bricks in Just(num_bricks),
        group_size in 1u32..=num_bricks,
    ) -> SegmentMap {
        SegmentMap::new(num_bricks, group_size).expect("valid by construction")
    }
}

proptest! {
    #[test]
    fn rebuild_plan_is_exactly_the_brick_stripes(
        geom in arb_geometry(),
        map in arb_map(),
        brick_seed in 0u32..16,
    ) {
        let brick = brick_seed % map.num_bricks;
        let plan = plan_brick_rebuild(&geom, &map, brick).expect("brick is a member");

        // Every stripe whose group includes the brick appears...
        let volume: Vec<StripeId> =
            (geom.stripe_base..geom.stripe_base + geom.stripe_count).map(StripeId).collect();
        let expected: Vec<StripeId> =
            volume.iter().copied().filter(|&s| map.contains(s, brick)).collect();
        prop_assert_eq!(&plan.stripes, &expected);

        // ...exactly once (strictly ascending implies no duplicates)...
        prop_assert!(plan.stripes.windows(2).all(|w| w[0].0 < w[1].0));

        // ...and none others: membership cross-checked against group().
        for &s in &plan.stripes {
            prop_assert!(map.group(s).contains(&brick), "{s:?} planned but not hosted");
        }
        for &s in &volume {
            if !plan.stripes.contains(&s) {
                prop_assert!(!map.group(s).contains(&brick), "{s:?} hosted but not planned");
            }
        }

        prop_assert_eq!(
            plan.bytes_per_stripe,
            geom.m as u64 * geom.block_size as u64
        );
    }

    #[test]
    fn group_size_bounds_plan_fraction(
        geom in arb_geometry(),
        map in arb_map(),
    ) {
        // Rotated placement spreads load: a brick hosts at most
        // ceil(group_size / num_bricks * stripe_count) + group_size stripes.
        let plan = plan_brick_rebuild(&geom, &map, 0).expect("brick 0 always a member");
        let per_rotation = u64::from(map.group_size);
        let rotations = geom.stripe_count / u64::from(map.num_bricks) + 2;
        prop_assert!(plan.stripes.len() as u64 <= per_rotation * rotations);
    }

    #[test]
    fn full_scrub_covers_the_volume_once(
        geom in arb_geometry(),
        map in arb_map(),
    ) {
        let plan = plan_full_scrub(&geom, &map);
        let expected: Vec<StripeId> =
            (geom.stripe_base..geom.stripe_base + geom.stripe_count).map(StripeId).collect();
        prop_assert_eq!(plan.stripes, expected);
    }

    #[test]
    fn plan_hash_is_stable_and_input_sensitive(
        geom in arb_geometry(),
        map in arb_map(),
    ) {
        let a = plan_brick_rebuild(&geom, &map, 0).expect("member");
        let b = plan_brick_rebuild(&geom, &map, 0).expect("member");
        prop_assert_eq!(a.hash, b.hash, "hash must be a pure function of inputs");
        let scrub = plan_full_scrub(&geom, &map);
        prop_assert_ne!(a.hash, scrub.hash, "distinct plans must not share a cursor");
    }
}
