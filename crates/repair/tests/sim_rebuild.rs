//! End-to-end rebuild proof on the deterministic simulator (n=5, m=3):
//! wipe one brick's entire replica state (replaced disk), run the
//! repair driver over the live cluster with foreground writes
//! interleaved, and verify that afterwards every previously written
//! stripe reads via the fast path — including through the replaced
//! brick — and that a mid-repair crash resumes from the durable cursor
//! without missing a stripe.

use std::collections::BTreeMap;

use bytes::Bytes;
use fab_core::{OpResult, RegisterConfig, SimCluster, StripeId, StripeValue};
use fab_repair::{
    plan_brick_rebuild, Action, DriverConfig, RepairCursor, RepairDriver, SegmentMap,
};
use fab_simnet::SimConfig;
use fab_timestamp::ProcessId;
use fab_volume::{Layout, VolumeGeometry};

const N: usize = 5;
const M: usize = 3;
const BLOCK: usize = 16;
const STRIPES: u64 = 24;

fn pid(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn blocks(seed: u8) -> Vec<Bytes> {
    (0..M)
        .map(|i| Bytes::from(vec![seed.wrapping_add(i as u8); BLOCK]))
        .collect()
}

fn cluster(seed: u64) -> SimCluster {
    SimCluster::new(
        RegisterConfig::new(M, N, BLOCK).unwrap(),
        SimConfig::ideal(seed),
    )
}

fn geometry() -> VolumeGeometry {
    VolumeGeometry::new(STRIPES, M, BLOCK, Layout::Interleaved)
}

/// Drives the sans-io driver over the simulated cluster, scrubbing via
/// rotating live coordinators. `crash_after` stops the driver (as if
/// the process died) after that many scrub completions; `cursor` is
/// checkpointed on every watermark advance so the crash is as harsh as
/// possible for the resume logic. Interleaves a foreground write every
/// `fg_every` scrubs, recording it in `expected`.
#[allow(clippy::too_many_arguments)]
fn drive(
    cluster: &mut SimCluster,
    driver: &mut RepairDriver,
    cursor: Option<&mut RepairCursor>,
    crash_after: Option<u64>,
    fg_every: u64,
    expected: &mut BTreeMap<StripeId, u8>,
    next_seed: &mut u8,
) {
    let mut scrubbed = 0u64;
    let mut coord = 0u32;
    let mut cursor = cursor;
    loop {
        let now = cluster.sim().now();
        match driver.poll(now) {
            Action::Scrub(stripe) => {
                coord = (coord + 1) % N as u32;
                let result = cluster.scrub(pid(coord), stripe);
                driver.on_scrub_result(stripe, &result, cluster.sim().now());
                if let Some(c) = cursor.as_mut() {
                    c.checkpoint(driver.watermark()).unwrap();
                }
                scrubbed += 1;
                if scrubbed.is_multiple_of(fg_every) {
                    // Foreground traffic keeps flowing mid-rebuild.
                    let stripe = StripeId(scrubbed % STRIPES);
                    let seed = *next_seed;
                    *next_seed = next_seed.wrapping_add(1);
                    if cluster.write_stripe(pid(coord), stripe, blocks(seed)) == OpResult::Written {
                        expected.insert(stripe, seed);
                    }
                }
                if Some(scrubbed) == crash_after {
                    return; // simulated driver crash: no epilogue at all
                }
            }
            Action::Wait { until_micros } => {
                let now = cluster.sim().now();
                cluster.sim_mut().run_until(until_micros.max(now + 1));
            }
            Action::Idle => unreachable!("synchronous scrubs never stay in flight"),
            Action::Done => return,
        }
    }
}

/// Writes a workload, wipes a brick, and returns the expected contents.
fn written_cluster(seed: u64) -> (SimCluster, BTreeMap<StripeId, u8>) {
    let mut c = cluster(seed);
    let mut expected = BTreeMap::new();
    // Write 2/3 of the stripes; the rest stay never-written.
    for i in 0..STRIPES {
        if i % 3 == 2 {
            continue;
        }
        let seed = 10 + i as u8;
        assert_eq!(
            c.write_stripe(pid((i % N as u64) as u32), StripeId(i), blocks(seed)),
            OpResult::Written
        );
        expected.insert(StripeId(i), seed);
    }
    (c, expected)
}

fn assert_fast_path_reads(c: &mut SimCluster, victim: ProcessId, expected: &BTreeMap<StripeId, u8>) {
    for (&stripe, &seed) in expected {
        let done = c.read_stripe_completion(victim, stripe);
        assert!(
            !done.recovered,
            "post-repair read of {stripe:?} took the recovery path"
        );
        assert_eq!(
            done.result,
            OpResult::Stripe(StripeValue::Data(blocks(seed))),
            "post-repair contents of {stripe:?}"
        );
    }
}

#[test]
fn wiped_brick_rebuilds_under_foreground_load() {
    let (mut c, mut expected) = written_cluster(7);
    let victim = pid(4);
    c.wipe(victim);

    let plan = plan_brick_rebuild(&geometry(), &SegmentMap::full(N as u32).unwrap(), 4).unwrap();
    assert_eq!(plan.stripes.len() as u64, STRIPES);
    let mut driver = RepairDriver::new(plan, DriverConfig::default());
    let mut seed = 100u8;
    drive(&mut c, &mut driver, None, None, 5, &mut expected, &mut seed);

    assert!(driver.is_done());
    let out = driver.outcome();
    assert!(out.complete, "failed stripes: {:?}", out.failed);
    let written = expected.len() as u64;
    assert_eq!(out.stats.repaired + out.stats.skipped, STRIPES);
    assert!(out.stats.repaired >= written.min(STRIPES));
    assert_eq!(driver.watermark(), STRIPES);

    // Every written stripe now reads fast-path through the replaced brick.
    assert_fast_path_reads(&mut c, victim, &expected);
    // Never-written stripes are still Nil (the scrub no-op satellite).
    for i in 0..STRIPES {
        if !expected.contains_key(&StripeId(i)) {
            assert_eq!(
                c.read_stripe(pid(0), StripeId(i)),
                OpResult::Stripe(StripeValue::Nil)
            );
        }
    }
}

#[test]
fn mid_repair_crash_resumes_from_cursor_without_missing_stripes() {
    let dir = std::env::temp_dir().join(format!("fab-repair-sim-{}", std::process::id()));
    let _ = std::fs::remove_file(&dir);
    let (mut c, mut expected) = written_cluster(11);
    let victim = pid(4);
    c.wipe(victim);

    let plan = plan_brick_rebuild(&geometry(), &SegmentMap::full(N as u32).unwrap(), 4).unwrap();
    let hash = plan.hash;
    let mut seed = 100u8;

    // First driver run crashes mid-plan.
    let mut cursor = RepairCursor::open(&dir, hash).unwrap();
    let mut driver = RepairDriver::new(plan.clone(), DriverConfig::default());
    drive(
        &mut c,
        &mut driver,
        Some(&mut cursor),
        Some(9),
        4,
        &mut expected,
        &mut seed,
    );
    assert!(!driver.is_done(), "crash landed mid-plan");
    let durable = cursor.watermark();
    assert!(durable > 0 && durable < STRIPES);
    drop(cursor);
    drop(driver);

    // Restart: a fresh driver resumes from the durable watermark and
    // re-repairs anything uncheckpointed (idempotent).
    let mut cursor = RepairCursor::open(&dir, hash).unwrap();
    assert_eq!(cursor.watermark(), durable);
    let mut driver =
        RepairDriver::new(plan, DriverConfig::default()).resume_from(cursor.watermark());
    drive(
        &mut c,
        &mut driver,
        Some(&mut cursor),
        None,
        6,
        &mut expected,
        &mut seed,
    );
    assert!(driver.is_done());
    let out = driver.outcome();
    assert!(out.complete, "failed stripes: {:?}", out.failed);
    assert_eq!(
        out.stats.repaired + out.stats.skipped,
        STRIPES - durable,
        "second run covers exactly the un-checkpointed suffix"
    );

    // No stripe was missed: every written stripe reads fast-path via the
    // replaced brick, with the right contents.
    assert_fast_path_reads(&mut c, victim, &expected);
    std::fs::remove_file(&dir).unwrap();
}

#[test]
fn rescrubbing_a_repaired_stripe_is_idempotent() {
    let (mut c, expected) = written_cluster(13);
    let victim = pid(4);
    c.wipe(victim);
    let stripe = *expected.keys().next().unwrap();
    let first = c.scrub(pid(0), stripe);
    let again = c.scrub(pid(1), stripe);
    assert_eq!(first, again, "re-repair returns the same recovered value");
    let seed = expected[&stripe];
    assert_eq!(
        first,
        OpResult::Stripe(StripeValue::Data(blocks(seed)))
    );
    let done = c.read_stripe_completion(victim, stripe);
    assert!(!done.recovered);
}

#[test]
fn throttled_rebuild_waits_on_simulated_time() {
    let (mut c, mut expected) = written_cluster(17);
    c.wipe(pid(4));
    let plan = plan_brick_rebuild(&geometry(), &SegmentMap::full(N as u32).unwrap(), 4).unwrap();
    let cfg = DriverConfig {
        stripes_per_sec: 2,
        ..DriverConfig::default()
    };
    let mut driver = RepairDriver::new(plan, cfg);
    let start = c.sim().now();
    let mut seed = 200u8;
    drive(&mut c, &mut driver, None, None, 999, &mut expected, &mut seed);
    assert!(driver.is_done());
    let elapsed = c.sim().now() - start;
    // 24 stripes at 2/sec with a 2-stripe burst: at least ~11 seconds of
    // simulated time must have passed.
    assert!(
        elapsed >= 10_000_000,
        "throttle must pace the rebuild (elapsed {elapsed} us)"
    );
    assert!(driver.counters().snapshot().throttle_waits > 0);
}
