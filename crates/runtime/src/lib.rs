//! Threaded in-process cluster runtime for the storage-register protocol.
//!
//! The simulator (`fab-simnet`) exists to test the protocol under
//! controlled asynchrony; this crate exists to *run* it: every brick is a
//! thread, the network is crossbeam channels, timers are real deadlines,
//! and `newTS` clock hints come from a monotonic microsecond clock. The
//! protocol logic — [`fab_core::Coordinator`] and [`fab_core::Replica`] —
//! is byte-for-byte the same code that runs under simulation; only the
//! [`Effects`] implementation differs. That is the payoff of the sans-io
//! design: asynchrony bugs are hunted deterministically, then the same
//! state machines are deployed on threads.
//!
//! [`RuntimeCluster`] owns the brick threads; [`RuntimeClient`] is a
//! cloneable blocking handle implementing the same operations as the
//! simulated cluster (and pluggable under `fab_volume::Volume` via its
//! `RegisterClient` trait). Fault injection mirrors the simulator: bricks
//! can be "crashed" (they drop traffic and lose coordinator state, keeping
//! replica state — NVRAM/disk survive real crashes) and recovered, and the
//! channel layer can drop messages probabilistically.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use fab_core::{
    Completion, Coordinator, Effects, Envelope, OpResult, Payload, RegisterConfig, Replica,
    StripeId,
};
use fab_simnet::FaultPlan;
use fab_store::{BrickStore, CommitPipeline, CommitStats, CommitStatsHandle};
use fab_timestamp::ProcessId;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Compact a brick's log once it accumulates this many records (matches
/// `fab-net`'s threshold, so both runtimes exhibit the same I/O pattern).
const COMPACT_THRESHOLD: u64 = 50_000;

/// An event delivered to a brick thread.
enum Event {
    /// A protocol message from another brick.
    Net { from: ProcessId, env: Envelope },
    /// A client request.
    Invoke {
        spec: OpSpec,
        reply: Sender<Result<OpResult, RuntimeError>>,
    },
    /// Emulate a crash: drop coordinator state, ignore traffic.
    Crash,
    /// Emulate recovery.
    Recover,
    /// Stop the thread.
    Shutdown,
}

/// A client-requested operation.
#[derive(Debug, Clone)]
enum OpSpec {
    ReadStripe(StripeId),
    WriteStripe(StripeId, Vec<Bytes>),
    ReadBlock(StripeId, usize),
    WriteBlock(StripeId, usize, Bytes),
    ReadBlocks(StripeId, Vec<usize>),
    WriteBlocks(StripeId, Vec<(usize, Bytes)>),
    Scrub(StripeId),
}

/// The I/O half of a brick thread: channel sends, deadline timers, clock,
/// randomness. Implements [`Effects`] for the protocol state machines.
struct NetIo {
    pid: ProcessId,
    peers: Vec<Sender<Event>>,
    epoch: Instant,
    rng: SmallRng,
    next_timer: u64,
    timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    cancelled: HashSet<u64>,
    faults: Arc<FaultPlan>,
}

impl std::fmt::Debug for NetIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetIo")
            .field("pid", &self.pid)
            .field("pending_timers", &self.timers.len())
            .finish()
    }
}

/// A send whose drop decision and channel capture happened on the event
/// loop (keeping the fault-injection RNG single-threaded) but whose actual
/// delivery is deferred — e.g. until the commit pipeline reports the
/// covering fsync. `None` means the fair-loss channel dropped it.
type DeferredSend = Option<(Sender<Event>, ProcessId, Envelope)>;

fn fire(send: DeferredSend) {
    if let Some((tx, from, env)) = send {
        let _ = tx.send(Event::Net { from, env });
    }
}

impl NetIo {
    fn next_deadline(&self) -> Option<Instant> {
        self.timers.peek().map(|r| r.0 .0)
    }

    /// Decides the fate of a send now (fault injection consumes RNG on the
    /// event loop) and captures everything needed to deliver it later.
    fn defer_send(&mut self, to: ProcessId, env: Envelope) -> DeferredSend {
        if to != self.pid && self.faults.should_drop(self.rng.gen_range(0..1_000_000)) {
            return None; // fair-loss channel drops this transmission
        }
        self.peers
            .get(to.index())
            .map(|tx| (tx.clone(), self.pid, env))
    }

    /// Pops timers whose deadlines have passed, skipping cancelled ones.
    fn due_timers(&mut self) -> Vec<u64> {
        let now = Instant::now();
        let mut due = Vec::new();
        while let Some(std::cmp::Reverse((at, id))) = self.timers.peek().copied() {
            if at > now {
                break;
            }
            self.timers.pop();
            if !self.cancelled.remove(&id) {
                due.push(id);
            }
        }
        due
    }
}

impl Effects for NetIo {
    fn send(&mut self, to: ProcessId, env: Envelope) {
        fire(self.defer_send(to, env));
    }

    fn set_timer(&mut self, delay: u64) -> u64 {
        self.next_timer += 1;
        let id = self.next_timer;
        let at = Instant::now() + Duration::from_micros(delay);
        self.timers.push(std::cmp::Reverse((at, id)));
        id
    }

    fn cancel_timer(&mut self, id: u64) {
        self.cancelled.insert(id);
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn rand_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

/// One brick thread's state.
struct BrickServer {
    cfg: Arc<RegisterConfig>,
    replicas: HashMap<StripeId, Replica>,
    coordinator: Coordinator,
    io: NetIo,
    inbox: Receiver<Event>,
    /// Client reply channels, by operation id.
    waiting: HashMap<u64, Sender<Result<OpResult, RuntimeError>>>,
    crashed: bool,
    /// Durable backing (the paper's `store(var)`); `None` = volatile-only
    /// bricks whose replica state survives emulated crashes in memory.
    /// When present, the pipeline group-commits appends off the event loop
    /// and replica replies are withheld until the covering fsync lands
    /// (log-before-send).
    pipeline: Option<CommitPipeline>,
}

impl BrickServer {
    fn run(mut self) {
        loop {
            let event = match self.io.next_deadline() {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    match self.inbox.recv_timeout(timeout) {
                        Ok(ev) => Some(ev),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.inbox.recv() {
                    Ok(ev) => Some(ev),
                    Err(_) => return,
                },
            };
            // A failed commit fences the pipeline: nothing later will ever
            // be durable, so the brick fail-stops (clients fail over).
            if self.pipeline.as_ref().is_some_and(CommitPipeline::is_fenced) {
                return;
            }
            if let Some(event) = event {
                match event {
                    Event::Shutdown => return,
                    Event::Crash => {
                        self.crashed = true;
                        self.coordinator.on_crash();
                        self.waiting.clear();
                        if self.pipeline.is_some() {
                            // A durable brick loses its memory entirely;
                            // recovery reloads from the on-disk log.
                            self.replicas.clear();
                        } else {
                            for r in self.replicas.values_mut() {
                                r.on_crash();
                            }
                        }
                    }
                    Event::Recover => {
                        self.crashed = false;
                        if self.pipeline.is_some() {
                            self.load_from_store();
                        }
                    }
                    _ if self.crashed => {} // a dead brick is silent
                    Event::Net { from, env } => self.on_net(from, &env),
                    Event::Invoke { spec, reply } => self.on_invoke(spec, reply),
                }
            }
            if !self.crashed {
                for id in self.io.due_timers() {
                    self.coordinator.on_timer(&mut self.io, id);
                }
            }
            self.deliver_completions();
        }
    }

    /// Rebuilds the replica map from the durable store (recovery path),
    /// and advances the coordinator's clock past every recovered
    /// timestamp so post-restart operations order after pre-crash ones
    /// without conflict storms.
    fn load_from_store(&mut self) {
        let Some(pipeline) = &self.pipeline else { return };
        let pid = self.io.pid;
        let cfg = self.cfg.clone();
        let mut newest = fab_timestamp::Timestamp::LOW;
        // `states()` is a FIFO barrier on the committer: every append
        // submitted before this call is reflected in the snapshot.
        self.replicas = pipeline
            // xtask-allow(no-blocking-on-event-loop): recovery runs before the brick serves traffic; the barrier on the committer is the point of load_from_store
            .states()
            .into_iter()
            .map(|(stripe, st)| {
                newest = newest.max(st.ord_ts).max(st.log.max_ts());
                let mut r = Replica::from_parts(pid, cfg.clone(), st.ord_ts, st.log);
                r.enable_persistence();
                (stripe, r)
            })
            .collect();
        self.coordinator.observe_timestamp(newest);
    }

    fn on_net(&mut self, from: ProcessId, env: &Envelope) {
        match &env.kind {
            Payload::Request(req) => {
                let stripe = env.stripe;
                let round = env.round;
                let pid = ProcessId::new(self.io.pid.value());
                let cfg = self.cfg.clone();
                let durable = self.pipeline.is_some();
                let replica = self.replicas.entry(stripe).or_insert_with(|| {
                    let mut r = Replica::new(pid, cfg);
                    if durable {
                        r.enable_persistence();
                    }
                    r
                });
                let reply = replica.handle(req);
                let reply_env = reply.map(|reply| Envelope {
                    stripe,
                    round,
                    kind: Payload::Reply(reply),
                });
                if let Some(pipeline) = &self.pipeline {
                    // Log-before-send: the reply (even one with no new
                    // persist events — it still acknowledges durable state)
                    // leaves only after the fsync covering this request's
                    // records. Group commit coalesces concurrent requests
                    // into one write + one sync on the committer thread.
                    let records: Vec<_> = self
                        .replicas
                        .get_mut(&stripe)
                        .expect("just inserted")
                        .take_persist_events()
                        .into_iter()
                        .map(|event| (stripe, event))
                        .collect();
                    let send = reply_env.map(|env| self.io.defer_send(from, env));
                    if records.is_empty() && send.is_none() {
                        return;
                    }
                    pipeline.submit(records, move |is_durable| {
                        if is_durable {
                            if let Some(send) = send {
                                fire(send);
                            }
                        }
                    });
                } else if let Some(env) = reply_env {
                    fire(self.io.defer_send(from, env));
                }
            }
            Payload::Reply(_) => {
                self.coordinator.on_reply(&mut self.io, from, env);
            }
        }
    }

    fn on_invoke(&mut self, spec: OpSpec, reply: Sender<Result<OpResult, RuntimeError>>) {
        let op = match spec {
            OpSpec::ReadStripe(s) => Ok(self.coordinator.invoke_read_stripe(&mut self.io, s)),
            OpSpec::WriteStripe(s, blocks) => {
                self.coordinator
                    .invoke_write_stripe(&mut self.io, s, blocks)
            }
            OpSpec::ReadBlock(s, j) => self.coordinator.invoke_read_block(&mut self.io, s, j),
            OpSpec::WriteBlock(s, j, b) => {
                self.coordinator.invoke_write_block(&mut self.io, s, j, b)
            }
            OpSpec::ReadBlocks(s, js) => self.coordinator.invoke_read_blocks(&mut self.io, s, js),
            OpSpec::WriteBlocks(s, updates) => {
                self.coordinator
                    .invoke_write_blocks(&mut self.io, s, updates)
            }
            OpSpec::Scrub(s) => Ok(self.coordinator.invoke_scrub(&mut self.io, s)),
        };
        match op {
            Ok(id) => {
                self.waiting.insert(id, reply);
            }
            Err(_) => {
                let _ = reply.send(Err(RuntimeError::InvalidRequest));
            }
        }
    }

    fn deliver_completions(&mut self) {
        for Completion { op, result, .. } in self.coordinator.drain_completions() {
            if let Some(reply) = self.waiting.remove(&op) {
                let _ = reply.send(Ok(result));
            }
        }
    }
}

/// Errors from client-side operations against a [`RuntimeCluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No brick answered within the client timeout (all contacted bricks
    /// crashed or unreachable).
    Timeout,
    /// The invocation was rejected as malformed (wrong stripe shape or
    /// block index).
    InvalidRequest,
    /// The cluster has been shut down.
    Closed,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Timeout => write!(f, "no brick answered within the client timeout"),
            RuntimeError::InvalidRequest => write!(f, "malformed request"),
            RuntimeError::Closed => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A running cluster of brick threads.
///
/// # Examples
///
/// ```
/// use fab_runtime::RuntimeCluster;
/// use fab_core::{OpResult, RegisterConfig, StripeId, StripeValue};
/// use bytes::Bytes;
///
/// let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 64)?);
/// let mut client = cluster.client();
/// let stripe: Vec<Bytes> = vec![Bytes::from(vec![1u8; 64]), Bytes::from(vec![2u8; 64])];
/// let w = client.write_stripe(StripeId(0), stripe.clone())?;
/// assert_eq!(w, OpResult::Written);
/// let r = client.read_stripe(StripeId(0))?;
/// assert_eq!(r, OpResult::Stripe(StripeValue::Data(stripe)));
/// cluster.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RuntimeCluster {
    senders: Vec<Sender<Event>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    cfg: Arc<RegisterConfig>,
    faults: Arc<FaultPlan>,
    next_coordinator: AtomicU32,
    /// Per-brick commit-pipeline observers (empty slots for volatile
    /// clusters).
    commit_stats: Vec<Option<CommitStatsHandle>>,
    /// Per-brick metrics registries: op-lifecycle instruments from the
    /// coordinator plus (on durable clusters) the commit pipeline's
    /// `store_*` instruments.
    obs: Vec<Arc<fab_obs::Registry>>,
}

impl RuntimeCluster {
    /// Spawns `cfg.n()` brick threads with volatile (in-memory) replica
    /// state.
    ///
    /// Retransmission intervals below 5 ms are raised to 20 ms: the
    /// simulator's tick-scale default would thrash real channels.
    pub fn new(cfg: RegisterConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Spawns `cfg.n()` brick threads whose replica state is durably
    /// backed by append-only logs under `dir` (`brick-<i>.log`). State
    /// written before a shutdown — or before an emulated crash — is
    /// recovered on the next start (or on [`RuntimeCluster::recover`]).
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created or a brick log cannot be
    /// opened/replayed.
    pub fn with_persistence<P: AsRef<std::path::Path>>(cfg: RegisterConfig, dir: P) -> Self {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).expect("create brick store directory");
        Self::build(cfg, Some(&dir))
    }

    fn build(mut cfg: RegisterConfig, store_dir: Option<&std::path::Path>) -> Self {
        if cfg.retransmit_interval < 5_000 {
            cfg.retransmit_interval = 20_000;
        }
        let cfg = Arc::new(cfg);
        let n = cfg.n();
        let faults = Arc::new(FaultPlan::new());
        let epoch = Instant::now();
        let channels: Vec<(Sender<Event>, Receiver<Event>)> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Event>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let mut handles = Vec::with_capacity(n);
        let mut commit_stats = Vec::with_capacity(n);
        let mut obs = Vec::with_capacity(n);
        for (i, (_, inbox)) in channels.into_iter().enumerate() {
            let pid = ProcessId::new(i as u32);
            let registry = Arc::new(fab_obs::Registry::new());
            let pipeline = store_dir.map(|dir| {
                let store = BrickStore::open(dir.join(format!("brick-{i}.log")))
                    .expect("open brick store");
                CommitPipeline::spawn_registered(store, COMPACT_THRESHOLD, &registry)
            });
            commit_stats.push(pipeline.as_ref().map(CommitPipeline::stats_handle));
            let mut coordinator = Coordinator::new(pid, cfg.clone());
            coordinator.set_metrics(fab_core::OpMetrics::register(&registry));
            obs.push(registry);
            let mut server = BrickServer {
                cfg: cfg.clone(),
                replicas: HashMap::new(),
                coordinator,
                io: NetIo {
                    pid,
                    peers: senders.clone(),
                    epoch,
                    rng: SmallRng::seed_from_u64(0x5eed ^ i as u64),
                    next_timer: 0,
                    timers: BinaryHeap::new(),
                    cancelled: HashSet::new(),
                    faults: faults.clone(),
                },
                inbox,
                waiting: HashMap::new(),
                crashed: false,
                pipeline,
            };
            server.load_from_store();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fab-brick-{i}"))
                    .spawn(move || server.run())
                    .expect("spawn brick thread"),
            );
        }
        RuntimeCluster {
            senders,
            handles: Mutex::new(handles),
            cfg,
            faults,
            next_coordinator: AtomicU32::new(0),
            commit_stats,
            obs,
        }
    }

    /// Brick `pid`'s metrics registry: coordinator op-lifecycle
    /// instruments (`op_*`) plus, on durable clusters, the commit
    /// pipeline's `store_*` instruments. `None` if `pid` is out of range.
    #[must_use]
    pub fn obs_registry(&self, pid: ProcessId) -> Option<Arc<fab_obs::Registry>> {
        self.obs.get(pid.index()).cloned()
    }

    /// A snapshot of brick `pid`'s group-commit counters, or `None` for
    /// volatile clusters. `committed / syncs` is the achieved group-commit
    /// factor.
    #[must_use]
    pub fn commit_stats(&self, pid: ProcessId) -> Option<CommitStats> {
        self.commit_stats
            .get(pid.index())?
            .as_ref()
            .map(CommitStatsHandle::stats)
    }

    /// The shared register configuration.
    pub fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    /// Creates a blocking client handle.
    pub fn client(&self) -> RuntimeClient {
        RuntimeClient {
            senders: self.senders.clone(),
            cfg: self.cfg.clone(),
            next: self.next_coordinator.fetch_add(1, Ordering::Relaxed),
            timeout: Duration::from_secs(5),
        }
    }

    /// Sets the probability that any inter-brick message transmission is
    /// dropped (fair-loss fault injection, shared [`FaultPlan`] semantics:
    /// values are clamped into `[0, 1]`).
    pub fn set_drop_probability(&self, p: f64) {
        self.faults.set_drop_probability(p);
    }

    /// The shared fault-injection plan, for harnesses that drive several
    /// transports from one plan.
    #[must_use]
    pub fn fault_plan(&self) -> Arc<FaultPlan> {
        self.faults.clone()
    }

    /// Emulates a crash of `pid`: coordinator state is lost, replica state
    /// (the paper's persistent `ord-ts` and log) survives, and the brick
    /// ignores all traffic until [`RuntimeCluster::recover`].
    pub fn crash(&self, pid: ProcessId) {
        let _ = self.senders[pid.index()].send(Event::Crash);
    }

    /// Recovers a crashed brick.
    pub fn recover(&self, pid: ProcessId) {
        let _ = self.senders[pid.index()].send(Event::Recover);
    }

    /// Stops all brick threads and joins them.
    pub fn shutdown(&self) {
        for s in &self.senders {
            let _ = s.send(Event::Shutdown);
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RuntimeCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A blocking client for a [`RuntimeCluster`]. Cloneable; coordinators are
/// rotated per request.
#[derive(Debug, Clone)]
pub struct RuntimeClient {
    senders: Vec<Sender<Event>>,
    cfg: Arc<RegisterConfig>,
    next: u32,
    /// Per-attempt wait before trying the next brick.
    pub timeout: Duration,
}

impl RuntimeClient {
    /// The register configuration.
    pub fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    fn invoke(&mut self, spec: &OpSpec) -> Result<OpResult, RuntimeError> {
        let n = self.senders.len();
        // Try up to n bricks: a crashed brick never answers, the next one
        // will (client-side failover needs no failure detector — §1.3).
        for _ in 0..n {
            let target = (self.next as usize) % n;
            self.next = self.next.wrapping_add(1);
            let (tx, rx) = bounded(1);
            if self.senders[target]
                .send(Event::Invoke {
                    spec: spec.clone(),
                    reply: tx,
                })
                .is_err()
            {
                return Err(RuntimeError::Closed);
            }
            match rx.recv_timeout(self.timeout) {
                Ok(result) => return result,
                // A crashed brick drops the channel without answering;
                // fail over to the next brick, like a timeout.
                Err(RecvTimeoutError::Disconnected) => continue,
                Err(RecvTimeoutError::Timeout) => continue,
            }
        }
        Err(RuntimeError::Timeout)
    }

    /// Reads a whole stripe.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on timeout, malformed request, or shutdown.
    pub fn read_stripe(&mut self, stripe: StripeId) -> Result<OpResult, RuntimeError> {
        self.invoke(&OpSpec::ReadStripe(stripe))
    }

    /// Writes a whole stripe.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on timeout, malformed request, or shutdown.
    pub fn write_stripe(
        &mut self,
        stripe: StripeId,
        blocks: Vec<Bytes>,
    ) -> Result<OpResult, RuntimeError> {
        self.invoke(&OpSpec::WriteStripe(stripe, blocks))
    }

    /// Reads one block.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on timeout, malformed request, or shutdown.
    pub fn read_block(&mut self, stripe: StripeId, j: usize) -> Result<OpResult, RuntimeError> {
        self.invoke(&OpSpec::ReadBlock(stripe, j))
    }

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on timeout, malformed request, or shutdown.
    pub fn write_block(
        &mut self,
        stripe: StripeId,
        j: usize,
        block: Bytes,
    ) -> Result<OpResult, RuntimeError> {
        self.invoke(&OpSpec::WriteBlock(stripe, j, block))
    }

    /// Reads several blocks of one stripe in one operation.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on timeout, malformed request, or shutdown.
    pub fn read_blocks(
        &mut self,
        stripe: StripeId,
        js: Vec<usize>,
    ) -> Result<OpResult, RuntimeError> {
        self.invoke(&OpSpec::ReadBlocks(stripe, js))
    }

    /// Writes several blocks of one stripe in one operation.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on timeout, malformed request, or shutdown.
    pub fn write_blocks(
        &mut self,
        stripe: StripeId,
        updates: Vec<(usize, Bytes)>,
    ) -> Result<OpResult, RuntimeError> {
        self.invoke(&OpSpec::WriteBlocks(stripe, updates))
    }

    /// Scrubs one stripe: recovers the current value and writes it back to
    /// every reachable brick (maintenance after brick recovery or
    /// replacement).
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on timeout or shutdown.
    pub fn scrub(&mut self, stripe: StripeId) -> Result<OpResult, RuntimeError> {
        self.invoke(&OpSpec::Scrub(stripe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_core::{BlockValue, StripeValue};

    fn blocks(m: usize, seed: u8, size: usize) -> Vec<Bytes> {
        (0..m)
            .map(|i| Bytes::from(vec![seed.wrapping_add(i as u8); size]))
            .collect()
    }

    #[test]
    fn write_read_round_trip_on_threads() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 32).unwrap());
        let mut client = cluster.client();
        let data = blocks(2, 7, 32);
        assert_eq!(
            client.write_stripe(StripeId(0), data.clone()).unwrap(),
            OpResult::Written
        );
        assert_eq!(
            client.read_stripe(StripeId(0)).unwrap(),
            OpResult::Stripe(StripeValue::Data(data))
        );
        cluster.shutdown();
    }

    #[test]
    fn block_ops_on_threads() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(3, 5, 16).unwrap());
        let mut client = cluster.client();
        let b = Bytes::from(vec![0x42; 16]);
        assert_eq!(
            client.write_block(StripeId(3), 1, b.clone()).unwrap(),
            OpResult::Written
        );
        assert_eq!(
            client.read_block(StripeId(3), 1).unwrap(),
            OpResult::Block(BlockValue::Data(b))
        );
        // Sibling still reads as zeros (either as explicit data from a
        // slow-path materialization or as the nil initial value).
        match client.read_block(StripeId(3), 0).unwrap() {
            OpResult::Block(v) => {
                assert_eq!(v.materialize(16), Some(Bytes::from(vec![0u8; 16])));
            }
            other => panic!("unexpected {other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn multiple_clients_share_the_cluster() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 16).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let mut client = cluster.client();
            handles.push(std::thread::spawn(move || {
                // Each thread owns its own stripe: no conflicts.
                let stripe = StripeId(u64::from(t));
                for i in 0..10u8 {
                    let data = blocks(2, t.wrapping_mul(31).wrapping_add(i), 16);
                    let w = client.write_stripe(stripe, data.clone()).unwrap();
                    assert_eq!(w, OpResult::Written);
                    let r = client.read_stripe(stripe).unwrap();
                    assert_eq!(r, OpResult::Stripe(StripeValue::Data(data)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        cluster.shutdown();
    }

    #[test]
    fn survives_message_loss() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 16).unwrap());
        cluster.set_drop_probability(0.10);
        let mut client = cluster.client();
        for i in 0..5u8 {
            let data = blocks(2, i, 16);
            assert_eq!(
                client.write_stripe(StripeId(0), data.clone()).unwrap(),
                OpResult::Written
            );
            assert_eq!(
                client.read_stripe(StripeId(0)).unwrap(),
                OpResult::Stripe(StripeValue::Data(data))
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn crashed_brick_fails_over_and_recovers() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 16).unwrap());
        let mut client = cluster.client();
        client.timeout = Duration::from_millis(500);
        let data = blocks(2, 9, 16);
        client.write_stripe(StripeId(0), data.clone()).unwrap();

        cluster.crash(ProcessId::new(0));
        // Reads still succeed (some attempts may fail over past brick 0).
        for _ in 0..4 {
            let r = client.read_stripe(StripeId(0)).unwrap();
            assert_eq!(r, OpResult::Stripe(StripeValue::Data(data.clone())));
        }
        cluster.recover(ProcessId::new(0));
        let data2 = blocks(2, 21, 16);
        assert_eq!(
            client.write_stripe(StripeId(0), data2.clone()).unwrap(),
            OpResult::Written
        );
        assert_eq!(
            client.read_stripe(StripeId(0)).unwrap(),
            OpResult::Stripe(StripeValue::Data(data2))
        );
        cluster.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 16).unwrap());
        let mut client = cluster.client();
        let err = client
            .write_stripe(StripeId(0), blocks(1, 0, 16))
            .unwrap_err();
        assert_eq!(err, RuntimeError::InvalidRequest);
        let err = client.read_block(StripeId(0), 9).unwrap_err();
        assert_eq!(err, RuntimeError::InvalidRequest);
        cluster.shutdown();
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fab-runtime-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistent_cluster_recovers_across_restart() {
        let dir = scratch_dir("restart");
        let data = blocks(2, 5, 16);
        {
            let cluster =
                RuntimeCluster::with_persistence(RegisterConfig::new(2, 4, 16).unwrap(), &dir);
            let mut client = cluster.client();
            assert_eq!(
                client.write_stripe(StripeId(0), data.clone()).unwrap(),
                OpResult::Written
            );
            cluster.shutdown();
        }
        // A brand-new cluster over the same logs serves the old value.
        let cluster =
            RuntimeCluster::with_persistence(RegisterConfig::new(2, 4, 16).unwrap(), &dir);
        let mut client = cluster.client();
        assert_eq!(
            client.read_stripe(StripeId(0)).unwrap(),
            OpResult::Stripe(StripeValue::Data(data))
        );
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_brick_survives_crash_with_memory_loss() {
        let dir = scratch_dir("crash");
        let cluster =
            RuntimeCluster::with_persistence(RegisterConfig::new(2, 4, 16).unwrap(), &dir);
        let mut client = cluster.client();
        client.timeout = Duration::from_millis(500);
        let data = blocks(2, 11, 16);
        client.write_stripe(StripeId(0), data.clone()).unwrap();

        // A durable brick loses *all* in-memory state on crash and must
        // replay its log on recovery.
        cluster.crash(ProcessId::new(1));
        cluster.recover(ProcessId::new(1));
        assert_eq!(
            client.read_stripe(StripeId(0)).unwrap(),
            OpResult::Stripe(StripeValue::Data(data))
        );
        let data2 = blocks(2, 13, 16);
        assert_eq!(
            client.write_stripe(StripeId(0), data2.clone()).unwrap(),
            OpResult::Written
        );
        assert_eq!(
            client.read_stripe(StripeId(0)).unwrap(),
            OpResult::Stripe(StripeValue::Data(data2))
        );
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_counters_are_coherent_under_concurrency() {
        let dir = scratch_dir("group");
        let cluster = std::sync::Arc::new(RuntimeCluster::with_persistence(
            RegisterConfig::new(2, 4, 16).unwrap(),
            &dir,
        ));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let mut client = cluster.client();
            handles.push(std::thread::spawn(move || {
                let stripe = StripeId(u64::from(t));
                for i in 0..8u8 {
                    let data = blocks(2, t.wrapping_mul(17).wrapping_add(i), 16);
                    assert_eq!(
                        client.write_stripe(stripe, data).unwrap(),
                        OpResult::Written
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every acked write was preceded by a covering fsync; the pipeline
        // never synced more often than it committed records.
        let mut total_committed = 0;
        for i in 0..4 {
            let stats = cluster.commit_stats(ProcessId::new(i)).unwrap();
            assert_eq!(stats.failed, 0);
            assert!(stats.syncs <= stats.committed.max(1));
            total_committed += stats.committed;
        }
        assert!(total_committed > 0);
        assert!(cluster.commit_stats(ProcessId::new(99)).is_none());
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn volatile_cluster_reports_no_commit_stats() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 16).unwrap());
        assert!(cluster.commit_stats(ProcessId::new(0)).is_none());
        cluster.shutdown();
    }

    #[test]
    fn op_metrics_reconcile_with_client_completions() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 16).unwrap());
        let mut client = cluster.client();
        let data = blocks(2, 3, 16);
        for _ in 0..3 {
            assert_eq!(
                client.write_stripe(StripeId(0), data.clone()).unwrap(),
                OpResult::Written
            );
        }
        for _ in 0..5 {
            assert_eq!(
                client.read_stripe(StripeId(0)).unwrap(),
                OpResult::Stripe(StripeValue::Data(data.clone()))
            );
        }
        // Client retries can only add completions on more bricks, never
        // lose one: summed across bricks, the coordinators completed at
        // least as many ops as the client observed, and every registry
        // entry is well-formed.
        let (mut reads, mut writes) = (0u64, 0u64);
        for i in 0..4 {
            let reg = cluster.obs_registry(ProcessId::new(i)).unwrap();
            let snap = reg.export();
            reads += snap.counter("op_reads_fastpath").unwrap_or(0)
                + snap.counter("op_reads_recovered").unwrap_or(0);
            writes += snap.counter("op_writes_committed").unwrap_or(0);
        }
        assert!(reads >= 5, "reads counted {reads}");
        assert!(writes >= 3, "writes counted {writes}");
        assert!(cluster.obs_registry(ProcessId::new(99)).is_none());
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let cluster = RuntimeCluster::new(RegisterConfig::new(2, 4, 16).unwrap());
        cluster.shutdown();
        cluster.shutdown();
        drop(cluster);
    }
}
