//! Simulation configuration: the network model of §2.
//!
//! The paper's system model is asynchronous (no bound on message delay or
//! process step time), with fair-loss channels that may reorder or drop —
//! but not corrupt — messages, and crash-recovery processes. [`SimConfig`]
//! parameterizes how harsh an instance of that model a run simulates.

use serde::{Deserialize, Serialize};

/// Network and scheduling parameters for a simulation run.
///
/// Delays are in abstract *ticks*; the Table-1 benchmarks set
/// `min_delay = max_delay = δ` so operation latencies come out in exact
/// multiples of δ, while correctness tests widen the interval (and add
/// drops and duplicates) to exercise asynchrony.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed for the simulation's deterministic RNG. Same seed + same
    /// scheduled inputs ⇒ identical run.
    pub seed: u64,
    /// Minimum one-way message delay between distinct processes, in ticks.
    pub min_delay: u64,
    /// Maximum one-way message delay between distinct processes, in ticks
    /// (inclusive). Random per-message delays in `[min_delay, max_delay]`
    /// model asynchrony and reordering.
    pub max_delay: u64,
    /// Delivery delay for messages a process sends to itself.
    pub local_delay: u64,
    /// Probability in `[0, 1]` that a message is silently dropped
    /// (fair-loss: independent per transmission, so retransmission
    /// eventually succeeds).
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a delivered message is delivered twice.
    pub duplicate_probability: f64,
}

impl SimConfig {
    /// A benign network: fixed unit delay, no loss. This is the
    /// configuration under which Table 1's failure-free costs are measured
    /// (latency in exact multiples of δ = 1 tick).
    pub fn ideal(seed: u64) -> Self {
        SimConfig {
            seed,
            min_delay: 1,
            max_delay: 1,
            local_delay: 0,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }

    /// An adversarial network: wide delay spread (heavy reordering), 10%
    /// loss, 5% duplication. Correctness tests default to this.
    pub fn harsh(seed: u64) -> Self {
        SimConfig {
            seed,
            min_delay: 1,
            max_delay: 50,
            local_delay: 0,
            drop_probability: 0.10,
            duplicate_probability: 0.05,
        }
    }

    /// Sets the delay interval, returning `self` for chaining.
    pub fn delays(mut self, min: u64, max: u64) -> Self {
        assert!(min <= max, "min_delay must not exceed max_delay");
        self.min_delay = min;
        self.max_delay = max;
        self
    }

    /// Sets the drop probability, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)` — probability 1 would violate
    /// fair-loss (no message would ever arrive).
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        self.drop_probability = p;
        self
    }

    /// Sets the duplicate probability, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability must be in [0,1]"
        );
        self.duplicate_probability = p;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::ideal(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_deterministic_unit_delay() {
        let c = SimConfig::ideal(1);
        assert_eq!(c.min_delay, 1);
        assert_eq!(c.max_delay, 1);
        assert_eq!(c.drop_probability, 0.0);
    }

    #[test]
    fn builders_chain() {
        let c = SimConfig::ideal(0)
            .delays(2, 9)
            .drop_probability(0.5)
            .duplicate_probability(0.25);
        assert_eq!((c.min_delay, c.max_delay), (2, 9));
        assert_eq!(c.drop_probability, 0.5);
        assert_eq!(c.duplicate_probability, 0.25);
    }

    #[test]
    #[should_panic(expected = "min_delay")]
    fn inverted_delays_panic() {
        let _ = SimConfig::ideal(0).delays(5, 2);
    }

    #[test]
    #[should_panic(expected = "[0,1)")]
    fn total_loss_panics() {
        let _ = SimConfig::ideal(0).drop_probability(1.0);
    }

    #[test]
    fn default_is_ideal_seed_zero() {
        assert_eq!(SimConfig::default(), SimConfig::ideal(0));
    }
}
