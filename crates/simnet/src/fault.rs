//! Shared fault-injection and retry-pacing types for *real* transports.
//!
//! The simulator injects faults through [`SimConfig`](crate::SimConfig);
//! the threaded runtime (`fab-runtime`, crossbeam channels) and the TCP
//! transport (`fab-net`, sockets) need the same knobs but share them with
//! concurrently running I/O threads. [`FaultPlan`] is that shared,
//! atomically updatable plan: a probability that any single inter-brick
//! transmission is silently dropped (the paper's fair-loss channel, §2).
//! [`Backoff`] is the companion reconnect/retry pacing schedule — a pure
//! capped-exponential calculator (no clocks, no sleeping) so it stays
//! usable from deterministic code and real threads alike.

use std::sync::atomic::{AtomicU64, Ordering};

/// Probability scale: drop probabilities are stored in parts-per-million.
const PPM: u64 = 1_000_000;

/// A shared, thread-safe fault-injection plan for message transports.
///
/// Mirrors the simulator's fair-loss fault API for real transports: every
/// transmission is independently dropped with the configured probability,
/// so retransmission eventually succeeds. The plan is updated atomically
/// and may be shared (`Arc<FaultPlan>`) between a cluster handle and its
/// I/O threads.
///
/// # Examples
///
/// ```
/// use fab_simnet::FaultPlan;
///
/// let plan = FaultPlan::default();
/// assert_eq!(plan.drop_ppm(), 0);
/// plan.set_drop_probability(0.25);
/// assert_eq!(plan.drop_ppm(), 250_000);
/// // A uniform roll in [0, 1e6) decides each transmission's fate.
/// assert!(plan.should_drop(249_999));
/// assert!(!plan.should_drop(250_000));
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Probability (parts per million) that a transmission is dropped.
    drop_ppm: AtomicU64,
}

impl FaultPlan {
    /// Creates a plan with no injected faults.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the probability that any single inter-brick transmission is
    /// dropped. Values are clamped into `[0, 1]` and quantized to parts
    /// per million.
    pub fn set_drop_probability(&self, p: f64) {
        let clamped = p.clamp(0.0, 1.0);
        // Quantize to ppm. The product is in [0, 1e6] so the cast is exact.
        let ppm = (clamped * 1e6).round().min(1e6) as u64;
        self.drop_ppm.store(ppm, Ordering::Relaxed);
    }

    /// The configured drop probability in parts per million.
    #[must_use]
    pub fn drop_ppm(&self) -> u64 {
        self.drop_ppm.load(Ordering::Relaxed)
    }

    /// Decides one transmission's fate from a uniform roll in
    /// `[0, 1_000_000)`: `true` means drop it.
    ///
    /// The caller supplies the roll so the decision source stays seedable
    /// (the runtime uses its per-brick seeded RNG; tests can force either
    /// outcome).
    #[must_use]
    pub fn should_drop(&self, roll: u64) -> bool {
        let ppm = self.drop_ppm();
        ppm > 0 && roll % PPM < ppm
    }
}

/// A capped exponential backoff schedule, as a pure calculator.
///
/// `delay_micros(attempt)` returns `base * factor^attempt`, saturating at
/// `max`. The type never sleeps and never reads a clock: callers own the
/// waiting, which keeps the schedule usable both from real reconnect loops
/// (`fab-net`) and from simulated or test code that just inspects it.
///
/// # Examples
///
/// ```
/// use fab_simnet::Backoff;
///
/// let b = Backoff::default(); // 10 ms, ×2, capped at 2 s
/// assert_eq!(b.delay_micros(0), 10_000);
/// assert_eq!(b.delay_micros(1), 20_000);
/// assert_eq!(b.delay_micros(31), 2_000_000); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry, in microseconds.
    pub base_micros: u64,
    /// Multiplier applied per successive attempt.
    pub factor: u32,
    /// Upper bound on any single delay, in microseconds.
    pub max_micros: u64,
}

impl Default for Backoff {
    /// 10 ms base, doubling, capped at 2 s — a sane reconnect cadence for
    /// LAN brick clusters.
    fn default() -> Self {
        Backoff {
            base_micros: 10_000,
            factor: 2,
            max_micros: 2_000_000,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based), in microseconds.
    #[must_use]
    pub fn delay_micros(&self, attempt: u32) -> u64 {
        let mut delay = self.base_micros.min(self.max_micros);
        let mut i = 0;
        while i < attempt {
            match delay.checked_mul(u64::from(self.factor)) {
                Some(next) if next < self.max_micros => delay = next,
                _ => return self.max_micros,
            }
            i += 1;
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_probability_clamps_and_quantizes() {
        let plan = FaultPlan::new();
        plan.set_drop_probability(-1.0);
        assert_eq!(plan.drop_ppm(), 0);
        plan.set_drop_probability(2.0);
        assert_eq!(plan.drop_ppm(), PPM);
        plan.set_drop_probability(0.5);
        assert_eq!(plan.drop_ppm(), 500_000);
    }

    #[test]
    fn should_drop_thresholds() {
        let plan = FaultPlan::new();
        assert!(!plan.should_drop(0), "zero probability never drops");
        plan.set_drop_probability(1.0);
        assert!(plan.should_drop(999_999));
        plan.set_drop_probability(0.001);
        assert!(plan.should_drop(999));
        assert!(!plan.should_drop(1_000));
        // Rolls beyond the scale are reduced, not trusted.
        assert!(plan.should_drop(PPM + 999));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff {
            base_micros: 100,
            factor: 3,
            max_micros: 1_000,
        };
        assert_eq!(b.delay_micros(0), 100);
        assert_eq!(b.delay_micros(1), 300);
        assert_eq!(b.delay_micros(2), 900);
        assert_eq!(b.delay_micros(3), 1_000);
        assert_eq!(b.delay_micros(100), 1_000);
    }

    #[test]
    fn backoff_survives_overflow_and_degenerate_factors() {
        let b = Backoff {
            base_micros: u64::MAX / 2,
            factor: 2,
            max_micros: u64::MAX,
        };
        assert_eq!(b.delay_micros(5), u64::MAX, "mul overflow saturates at max");
        let frozen = Backoff {
            base_micros: 50,
            factor: 1,
            max_micros: 1_000,
        };
        assert_eq!(frozen.delay_micros(9), 50, "factor 1 never grows");
        let zero = Backoff {
            base_micros: 0,
            factor: 0,
            max_micros: 7,
        };
        assert_eq!(zero.delay_micros(3), 0, "zero base stays zero (caller's choice)");
    }
}
