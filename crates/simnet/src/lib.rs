//! Deterministic discrete-event simulation of the paper's system model
//! (§2): asynchronous message passing over fair-loss channels between
//! crash-recovery processes.
//!
//! The simulator is the test and measurement substrate for the storage
//! register protocol:
//!
//! * **Asynchrony** — per-message random delays in a configurable interval
//!   reorder messages arbitrarily; there is no bound the protocol may rely
//!   on.
//! * **Fair loss** — each transmission is dropped independently with a
//!   configured probability, so a retransmitting sender eventually gets
//!   through (the assumption behind the paper's non-blocking `quorum()`
//!   primitive).
//! * **Crash-recovery** — processes crash (losing volatile state, keeping
//!   whatever the actor models as persistent) and later recover, matching
//!   the paper's fault model where *correct* processes eventually stop
//!   crashing.
//! * **Determinism** — one seeded RNG drives all randomness and events are
//!   totally ordered, so every run replays exactly; `fingerprint()`
//!   digests the event history for determinism checks.
//!
//! See [`Simulation`] for the event loop, [`Actor`] for the process
//! interface, and [`SimConfig`] for the network model.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod config;
pub mod fault;
pub mod metrics;
pub mod sim;

pub use config::SimConfig;
pub use fault::{Backoff, FaultPlan};
pub use metrics::{NetMetrics, WireSize};
pub use sim::{Actor, Context, SimTime, Simulation, TimerId};
