//! Network metrics, the measurement side of Table 1.
//!
//! The simulator counts every message transmission and its wire size; the
//! protocol crates layer their own disk-I/O counters on top (disk activity
//! is an actor concern, not a network one). Counters can be snapshotted and
//! diffed so a harness can attribute costs to a single operation.

use serde::{Deserialize, Serialize};

/// Cumulative network counters for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetMetrics {
    /// Messages handed to the network (including ones later dropped).
    pub messages_sent: u64,
    /// Messages actually delivered to a running process.
    pub messages_delivered: u64,
    /// Messages dropped by the fair-loss channel.
    pub messages_dropped: u64,
    /// Extra deliveries due to duplication.
    pub messages_duplicated: u64,
    /// Messages discarded because the destination was crashed or the
    /// source-destination pair was partitioned.
    pub messages_suppressed: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
}

impl NetMetrics {
    /// Returns the element-wise difference `self − earlier`.
    ///
    /// Used to attribute costs to one operation: snapshot before, run,
    /// subtract.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter went backwards.
    pub fn since(&self, earlier: &NetMetrics) -> NetMetrics {
        debug_assert!(self.messages_sent >= earlier.messages_sent);
        NetMetrics {
            messages_sent: self.messages_sent - earlier.messages_sent,
            messages_delivered: self.messages_delivered - earlier.messages_delivered,
            messages_dropped: self.messages_dropped - earlier.messages_dropped,
            messages_duplicated: self.messages_duplicated - earlier.messages_duplicated,
            messages_suppressed: self.messages_suppressed - earlier.messages_suppressed,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
        }
    }
}

/// Wire-size accounting for message payloads.
///
/// Table 1 reports network bandwidth in units of the block size `B`;
/// implementing `wire_size` on protocol messages (counting block payloads
/// plus a fixed header) lets the simulator report comparable numbers
/// without actually serializing anything.
pub trait WireSize {
    /// The number of bytes this value would occupy on the wire.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        self.as_ref().map_or(0, WireSize::wire_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let early = NetMetrics {
            messages_sent: 10,
            bytes_sent: 100,
            ..NetMetrics::default()
        };
        let late = NetMetrics {
            messages_sent: 15,
            bytes_sent: 180,
            messages_delivered: 12,
            ..NetMetrics::default()
        };
        let d = late.since(&early);
        assert_eq!(d.messages_sent, 5);
        assert_eq!(d.bytes_sent, 80);
        assert_eq!(d.messages_delivered, 12);
    }

    #[test]
    fn wire_size_impls() {
        assert_eq!(().wire_size(), 0);
        assert_eq!(vec![1u8, 2, 3].wire_size(), 3);
        assert_eq!(Some(vec![1u8, 2]).wire_size(), 2);
        assert_eq!(Option::<Vec<u8>>::None.wire_size(), 0);
    }
}
