//! The deterministic discrete-event simulation engine.
//!
//! A [`Simulation`] hosts `n` actors (the paper's processes `p_1..p_n`),
//! a fair-loss network between them, and a virtual clock. All randomness
//! flows from one seeded RNG and all events are totally ordered by
//! `(time, sequence-number)`, so a run is a pure function of the seed and
//! the scheduled inputs — crash schedules, partitions, and invocations
//! replay identically, which is what makes protocol bugs reproducible.
//!
//! Actors are *sans-io* state machines implementing [`Actor`]: they react
//! to messages, timers, and recovery, and emit effects (sends, timers)
//! through a [`Context`]. Crashes erase volatile state only; whatever the
//! actor models as persistent must survive its `on_crash`.

use crate::config::SimConfig;
use crate::metrics::{NetMetrics, WireSize};
use fab_timestamp::ProcessId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Virtual time in abstract ticks.
pub type SimTime = u64;

/// Identifier of a pending timer, unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// The raw id value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// A process hosted by the simulator.
///
/// Implementations are pure state machines: all I/O goes through the
/// [`Context`]. The simulator calls exactly one handler at a time, so no
/// internal synchronization is needed.
pub trait Actor {
    /// The message type exchanged between actors of this simulation.
    type Msg: Clone + WireSize;

    /// A message from `from` arrived.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: ProcessId, msg: Self::Msg);

    /// A timer set through [`Context::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: TimerId);

    /// The process crashed: discard volatile state. State the actor models
    /// as *persistent* (the paper's `store(var)` data) must survive.
    fn on_crash(&mut self) {}

    /// The process recovered and may re-arm timers or send messages.
    fn on_recover(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Effects an actor requests during one handler invocation.
enum Effect<M> {
    Send { to: ProcessId, msg: M },
    SetTimer { delay: u64, id: TimerId },
    CancelTimer(TimerId),
}

/// Handler-side view of the simulation: lets an actor send messages,
/// manage timers, read the clock, and draw deterministic randomness.
#[derive(Debug)]
pub struct Context<'a, M> {
    pid: ProcessId,
    now: SimTime,
    rng: &'a mut SmallRng,
    effects: &'a mut Vec<Effect<M>>,
    next_timer: &'a mut u64,
}

impl<M> std::fmt::Debug for Effect<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Effect::Send { to, .. } => write!(f, "Send(to={to})"),
            Effect::SetTimer { delay, id } => write!(f, "SetTimer({delay}, {id:?})"),
            Effect::CancelTimer(id) => write!(f, "CancelTimer({id:?})"),
        }
    }
}

impl<'a, M> Context<'a, M> {
    /// The process this handler runs on.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` over the fair-loss network. Self-sends are
    /// delivered reliably after `local_delay`.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arms a timer that fires after `delay` ticks (unless the process
    /// crashes first or the timer is cancelled).
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        *self.next_timer += 1;
        let id = TimerId(*self.next_timer);
        self.effects.push(Effect::SetTimer { delay, id });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

/// A harness-scheduled invocation on one actor.
type CallFn<A> = Box<dyn FnOnce(&mut A, &mut Context<'_, <A as Actor>::Msg>)>;

enum EventKind<A: Actor> {
    Deliver {
        to: ProcessId,
        from: ProcessId,
        msg: A::Msg,
    },
    Timer {
        pid: ProcessId,
        id: TimerId,
        epoch: u64,
    },
    Crash(ProcessId),
    Recover(ProcessId),
    SetPartition(Vec<u32>),
    Call {
        pid: ProcessId,
        f: CallFn<A>,
    },
}

struct Event<A: Actor> {
    time: SimTime,
    seq: u64,
    kind: EventKind<A>,
}

impl<A: Actor> PartialEq for Event<A> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<A: Actor> Eq for Event<A> {}
impl<A: Actor> PartialOrd for Event<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: Actor> Ord for Event<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct Slot<A> {
    actor: A,
    crashed: bool,
    /// Bumped on every crash; timers from older epochs are stale.
    epoch: u64,
}

/// A deterministic discrete-event simulation of `n` actors on a fair-loss
/// network with crash-recovery faults.
///
/// # Examples
///
/// ```
/// use fab_simnet::{Actor, Context, SimConfig, Simulation, TimerId};
/// use fab_timestamp::ProcessId;
///
/// /// An actor that answers every "ping" with a "pong".
/// struct Echo { seen: usize }
/// impl Actor for Echo {
///     type Msg = Vec<u8>;
///     fn on_message(&mut self, ctx: &mut Context<'_, Vec<u8>>, from: ProcessId, msg: Vec<u8>) {
///         self.seen += 1;
///         if msg == b"ping" {
///             ctx.send(from, b"pong".to_vec());
///         }
///     }
///     fn on_timer(&mut self, _: &mut Context<'_, Vec<u8>>, _: TimerId) {}
/// }
///
/// let mut sim = Simulation::new(SimConfig::ideal(42), vec![Echo { seen: 0 }, Echo { seen: 0 }]);
/// sim.schedule_call(0, ProcessId::new(0), |_, ctx| ctx.send(ProcessId::new(1), b"ping".to_vec()));
/// sim.run_until_idle();
/// assert_eq!(sim.actor(ProcessId::new(0)).seen, 1); // echo came back
/// ```
pub struct Simulation<A: Actor> {
    config: SimConfig,
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Event<A>>,
    slots: Vec<Slot<A>>,
    rng: SmallRng,
    /// Partition group of each process; differing groups cannot exchange
    /// messages.
    partition: Vec<u32>,
    cancelled: BTreeSet<TimerId>,
    next_timer: u64,
    metrics: NetMetrics,
    fingerprint: u64,
    events_processed: u64,
    /// Panic guard against runaway event loops (e.g. unconditional
    /// retransmission). Configurable via [`Simulation::set_event_cap`].
    event_cap: u64,
}

impl<A: Actor> std::fmt::Debug for Simulation<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("actors", &self.slots.len())
            .field("pending_events", &self.heap.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation hosting `actors`, assigned process ids
    /// `p_0..p_{n−1}` in order.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty.
    pub fn new(config: SimConfig, actors: Vec<A>) -> Self {
        assert!(!actors.is_empty(), "simulation needs at least one actor");
        let n = actors.len();
        let rng = SmallRng::seed_from_u64(config.seed);
        Simulation {
            config,
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: actors
                .into_iter()
                .map(|actor| Slot {
                    actor,
                    crashed: false,
                    epoch: 0,
                })
                .collect(),
            rng,
            partition: vec![0; n],
            cancelled: BTreeSet::new(),
            next_timer: 0,
            metrics: NetMetrics::default(),
            fingerprint: 0xcbf29ce484222325,
            events_processed: 0,
            event_cap: 50_000_000,
        }
    }

    /// Number of hosted actors.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the simulation hosts no actors (never true; see
    /// [`Simulation::new`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cumulative network metrics.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// A 64-bit digest of the event history; equal seeds and inputs yield
    /// equal fingerprints (used by determinism tests).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Replaces the runaway-loop guard (default 50 million events).
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Immutable access to an actor.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn actor(&self, pid: ProcessId) -> &A {
        &self.slots[pid.index()].actor
    }

    /// Mutable access to an actor (for harness inspection between runs;
    /// protocol interactions should go through [`Simulation::schedule_call`]).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn actor_mut(&mut self, pid: ProcessId) -> &mut A {
        &mut self.slots[pid.index()].actor
    }

    /// Iterates over `(pid, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (ProcessId, &A)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (ProcessId::new(i as u32), &s.actor))
    }

    /// Returns `true` if `pid` is currently crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.slots[pid.index()].crashed
    }

    fn push(&mut self, time: SimTime, kind: EventKind<A>) {
        self.seq += 1;
        self.heap.push(Event {
            time,
            seq: self.seq,
            kind,
        });
    }

    /// Schedules `pid` to crash at absolute time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, pid: ProcessId) {
        self.push(at, EventKind::Crash(pid));
    }

    /// Schedules `pid` to recover at absolute time `at`.
    pub fn schedule_recovery(&mut self, at: SimTime, pid: ProcessId) {
        self.push(at, EventKind::Recover(pid));
    }

    /// Schedules a network partition at absolute time `at`: processes in
    /// different groups cannot exchange messages. Processes not named in
    /// any group are isolated (each gets its own group).
    pub fn schedule_partition(&mut self, at: SimTime, groups: &[&[ProcessId]]) {
        let mut assignment = vec![u32::MAX; self.slots.len()];
        for (g, members) in groups.iter().enumerate() {
            for p in *members {
                assignment[p.index()] = g as u32;
            }
        }
        // Isolate unnamed processes with unique group ids.
        let mut next = groups.len() as u32;
        for a in &mut assignment {
            if *a == u32::MAX {
                *a = next;
                next += 1;
            }
        }
        self.push(at, EventKind::SetPartition(assignment));
    }

    /// Schedules the healing of all partitions at absolute time `at`.
    pub fn schedule_heal(&mut self, at: SimTime) {
        self.push(at, EventKind::SetPartition(vec![0; self.slots.len()]));
    }

    /// Schedules a closure to run on actor `pid` at absolute time `at`,
    /// with a [`Context`] for sending messages and setting timers. This is
    /// how harnesses invoke operations (the paper's "client requests").
    ///
    /// If `pid` is crashed at `at`, the call is silently skipped — exactly
    /// like a request sent to a dead brick.
    pub fn schedule_call<F>(&mut self, at: SimTime, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut A, &mut Context<'_, A::Msg>) + 'static,
    {
        self.push(
            at,
            EventKind::Call {
                pid,
                f: Box::new(f),
            },
        );
    }

    /// Processes the next event. Returns `false` if no events remain.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (runaway loop guard).
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.heap.pop() else {
            return false;
        };
        assert!(
            self.events_processed < self.event_cap,
            "simulation exceeded event cap ({}) — runaway timer loop?",
            self.event_cap
        );
        self.events_processed += 1;
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.mix_fingerprint(ev.time, ev.seq, &ev.kind);

        match ev.kind {
            EventKind::Deliver { to, from, msg } => self.deliver(to, from, msg),
            EventKind::Timer { pid, id, epoch } => self.fire_timer(pid, id, epoch),
            EventKind::Crash(pid) => {
                let slot = &mut self.slots[pid.index()];
                if !slot.crashed {
                    slot.crashed = true;
                    slot.epoch += 1;
                    slot.actor.on_crash();
                }
            }
            EventKind::Recover(pid) => {
                if self.slots[pid.index()].crashed {
                    self.slots[pid.index()].crashed = false;
                    self.with_context(pid, Actor::on_recover);
                }
            }
            EventKind::SetPartition(assignment) => {
                self.partition = assignment;
            }
            EventKind::Call { pid, f } => {
                if !self.slots[pid.index()].crashed {
                    self.with_context(pid, |actor, ctx| f(actor, ctx));
                }
            }
        }
        true
    }

    /// Runs until no events remain. Returns the final virtual time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until virtual time reaches `until` (or the event queue drains).
    /// Events at exactly `until` are processed.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        while let Some(ev) = self.heap.peek() {
            if ev.time > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
        self.now
    }

    /// Runs until `pred` on the actor at `pid` returns `true`, checking
    /// after every event; gives up when the queue drains or `deadline`
    /// passes. Returns `true` if the predicate held.
    pub fn run_until_actor<F>(&mut self, pid: ProcessId, deadline: SimTime, mut pred: F) -> bool
    where
        F: FnMut(&A) -> bool,
    {
        loop {
            if pred(&self.slots[pid.index()].actor) {
                return true;
            }
            match self.heap.peek() {
                Some(ev) if ev.time <= deadline => {
                    self.step();
                }
                _ => return pred(&self.slots[pid.index()].actor),
            }
        }
    }

    fn deliver(&mut self, to: ProcessId, from: ProcessId, msg: A::Msg) {
        if self.slots[to.index()].crashed || self.blocked(from, to) {
            self.metrics.messages_suppressed += 1;
            return;
        }
        self.metrics.messages_delivered += 1;
        self.with_context(to, |actor, ctx| actor.on_message(ctx, from, msg));
    }

    fn fire_timer(&mut self, pid: ProcessId, id: TimerId, epoch: u64) {
        if self.cancelled.remove(&id) {
            return;
        }
        let slot = &self.slots[pid.index()];
        if slot.crashed || slot.epoch != epoch {
            return; // stale timer from before a crash
        }
        self.with_context(pid, |actor, ctx| actor.on_timer(ctx, id));
    }

    fn blocked(&self, a: ProcessId, b: ProcessId) -> bool {
        self.partition[a.index()] != self.partition[b.index()]
    }

    /// Runs `f` on actor `pid` with a fresh context, then applies the
    /// effects it produced (message sends, timer arms/cancels).
    fn with_context<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut A, &mut Context<'_, A::Msg>),
    {
        let mut effects: Vec<Effect<A::Msg>> = Vec::new();
        {
            let slot = &mut self.slots[pid.index()];
            let mut ctx = Context {
                pid,
                now: self.now,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer: &mut self.next_timer,
            };
            f(&mut slot.actor, &mut ctx);
        }
        let epoch = self.slots[pid.index()].epoch;
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.route(pid, to, msg),
                Effect::SetTimer { delay, id } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { pid, id, epoch });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    fn route(&mut self, from: ProcessId, to: ProcessId, msg: A::Msg) {
        self.metrics.messages_sent += 1;
        self.metrics.bytes_sent += msg.wire_size() as u64;
        if to.index() >= self.slots.len() {
            self.metrics.messages_suppressed += 1;
            return;
        }
        if from == to {
            // Local loopback: reliable, fixed latency.
            let at = self.now + self.config.local_delay;
            self.push(at, EventKind::Deliver { to, from, msg });
            return;
        }
        if self.blocked(from, to) {
            self.metrics.messages_suppressed += 1;
            return;
        }
        if self.config.drop_probability > 0.0
            && self.rng.gen::<f64>() < self.config.drop_probability
        {
            self.metrics.messages_dropped += 1;
            return;
        }
        let delay = if self.config.min_delay == self.config.max_delay {
            self.config.min_delay
        } else {
            self.rng
                .gen_range(self.config.min_delay..=self.config.max_delay)
        };
        let duplicate = self.config.duplicate_probability > 0.0
            && self.rng.gen::<f64>() < self.config.duplicate_probability;
        if duplicate {
            self.metrics.messages_duplicated += 1;
            let extra_delay = if self.config.min_delay == self.config.max_delay {
                self.config.min_delay
            } else {
                self.rng
                    .gen_range(self.config.min_delay..=self.config.max_delay)
            };
            self.push(
                self.now + extra_delay,
                EventKind::Deliver {
                    to,
                    from,
                    msg: msg.clone(),
                },
            );
        }
        self.push(self.now + delay, EventKind::Deliver { to, from, msg });
    }

    fn mix_fingerprint(&mut self, time: SimTime, seq: u64, kind: &EventKind<A>) {
        const PRIME: u64 = 0x100000001b3;
        let tag: u64 = match kind {
            EventKind::Deliver { to, from, .. } => {
                0x10 | (u64::from(to.value()) << 8) | (u64::from(from.value()) << 24)
            }
            EventKind::Timer { pid, id, .. } => 0x20 | (u64::from(pid.value()) << 8) | (id.0 << 24),
            EventKind::Crash(p) => 0x30 | (u64::from(p.value()) << 8),
            EventKind::Recover(p) => 0x40 | (u64::from(p.value()) << 8),
            EventKind::SetPartition(_) => 0x50,
            EventKind::Call { pid, .. } => 0x60 | (u64::from(pid.value()) << 8),
        };
        for word in [time, seq, tag] {
            self.fingerprint ^= word;
            self.fingerprint = self.fingerprint.wrapping_mul(PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test actor that counts messages, echoes pings, and supports
    /// periodic retransmission via timers.
    #[derive(Default)]
    struct Node {
        received: Vec<(ProcessId, Vec<u8>)>,
        timer_fires: usize,
        recovered: usize,
        crashed_count: usize,
        volatile: usize,
    }

    impl Actor for Node {
        type Msg = Vec<u8>;

        fn on_message(&mut self, ctx: &mut Context<'_, Vec<u8>>, from: ProcessId, msg: Vec<u8>) {
            self.volatile += 1;
            if msg == b"ping" && from != ctx.pid() {
                ctx.send(from, b"pong".to_vec());
            }
            self.received.push((from, msg));
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Vec<u8>>, _timer: TimerId) {
            self.timer_fires += 1;
        }

        fn on_crash(&mut self) {
            self.crashed_count += 1;
            self.volatile = 0;
        }

        fn on_recover(&mut self, _ctx: &mut Context<'_, Vec<u8>>) {
            self.recovered += 1;
        }
    }

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn two_nodes(seed: u64) -> Simulation<Node> {
        Simulation::new(
            SimConfig::ideal(seed),
            vec![Node::default(), Node::default()],
        )
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = two_nodes(1);
        sim.schedule_call(0, pid(0), |_, ctx| ctx.send(pid(1), b"ping".to_vec()));
        sim.run_until_idle();
        assert_eq!(sim.actor(pid(1)).received.len(), 1);
        assert_eq!(sim.actor(pid(0)).received[0].1, b"pong");
        // Unit delay each way: pong arrives at t=2.
        assert_eq!(sim.now(), 2);
        let m = sim.metrics();
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.messages_delivered, 2);
        assert_eq!(m.bytes_sent, 8);
    }

    #[test]
    fn self_send_is_local_and_reliable() {
        let mut sim = Simulation::new(
            SimConfig::ideal(0).drop_probability(0.9),
            vec![Node::default()],
        );
        for _ in 0..20 {
            sim.schedule_call(0, pid(0), |_, ctx| {
                let me = ctx.pid();
                ctx.send(me, b"self".to_vec());
            });
        }
        sim.run_until_idle();
        assert_eq!(sim.actor(pid(0)).received.len(), 20, "loopback never drops");
        assert_eq!(sim.now(), 0, "local delay is zero in ideal config");
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct T {
            fired: Vec<u64>,
            cancel_target: Option<TimerId>,
        }
        impl Actor for T {
            type Msg = ();
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: ProcessId, _: ()) {}
            fn on_timer(&mut self, _: &mut Context<'_, ()>, t: TimerId) {
                self.fired.push(t.value());
            }
        }
        let mut sim = Simulation::new(
            SimConfig::ideal(0),
            vec![T {
                fired: vec![],
                cancel_target: None,
            }],
        );
        sim.schedule_call(0, pid(0), |a, ctx| {
            let t1 = ctx.set_timer(10);
            let _t2 = ctx.set_timer(5);
            a.cancel_target = Some(t1);
        });
        sim.schedule_call(1, pid(0), |a, ctx| {
            if let Some(t) = a.cancel_target.take() {
                ctx.cancel_timer(t);
            }
        });
        sim.run_until_idle();
        // Only the 5-tick timer fires; the 10-tick one was cancelled (its
        // queue entry is still popped, so the clock ends at 10).
        assert_eq!(sim.actor(pid(0)).fired.len(), 1);
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn crash_drops_messages_and_timers_recover_restores() {
        let mut sim = two_nodes(3);
        sim.schedule_call(0, pid(0), |_, ctx| {
            ctx.set_timer(100); // will be stale after crash
        });
        sim.schedule_crash(10, pid(0));
        sim.schedule_call(20, pid(1), |_, ctx| ctx.send(pid(0), b"ping".to_vec()));
        sim.schedule_recovery(50, pid(0));
        sim.schedule_call(60, pid(1), |_, ctx| ctx.send(pid(0), b"ping".to_vec()));
        sim.run_until_idle();

        let a = sim.actor(pid(0));
        assert_eq!(a.crashed_count, 1);
        assert_eq!(a.recovered, 1);
        // Only the post-recovery ping arrived; the timer from before the
        // crash never fired.
        assert_eq!(a.received.len(), 1);
        assert_eq!(a.timer_fires, 0);
        assert_eq!(sim.metrics().messages_suppressed, 1);
    }

    #[test]
    fn crash_clears_volatile_state() {
        let mut sim = two_nodes(4);
        sim.schedule_call(0, pid(1), |_, ctx| ctx.send(pid(0), b"x".to_vec()));
        sim.schedule_crash(5, pid(0));
        sim.schedule_recovery(6, pid(0));
        sim.run_until_idle();
        assert_eq!(sim.actor(pid(0)).volatile, 0);
        assert_eq!(sim.actor(pid(0)).received.len(), 1, "durable log kept");
    }

    #[test]
    fn calls_on_crashed_actor_are_skipped() {
        let mut sim = two_nodes(5);
        sim.schedule_crash(0, pid(0));
        sim.schedule_call(1, pid(0), |_, ctx| ctx.send(pid(1), b"never".to_vec()));
        sim.run_until_idle();
        assert_eq!(sim.metrics().messages_sent, 0);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut sim = two_nodes(6);
        sim.schedule_partition(0, &[&[pid(0)], &[pid(1)]]);
        sim.schedule_call(1, pid(0), |_, ctx| ctx.send(pid(1), b"lost".to_vec()));
        sim.schedule_heal(10);
        sim.schedule_call(11, pid(0), |_, ctx| ctx.send(pid(1), b"ok".to_vec()));
        sim.run_until_idle();
        let b = sim.actor(pid(1));
        assert_eq!(b.received.len(), 1);
        assert_eq!(b.received[0].1, b"ok");
        assert_eq!(sim.metrics().messages_suppressed, 1);
    }

    #[test]
    fn unlisted_processes_are_isolated_by_partition() {
        let mut sim = Simulation::new(
            SimConfig::ideal(0),
            vec![Node::default(), Node::default(), Node::default()],
        );
        sim.schedule_partition(0, &[&[pid(0), pid(1)]]);
        sim.schedule_call(1, pid(0), |_, ctx| ctx.send(pid(2), b"x".to_vec()));
        sim.schedule_call(1, pid(0), |_, ctx| ctx.send(pid(1), b"y".to_vec()));
        sim.run_until_idle();
        assert_eq!(sim.actor(pid(2)).received.len(), 0);
        assert_eq!(sim.actor(pid(1)).received.len(), 1);
    }

    #[test]
    fn drops_and_duplicates_are_counted() {
        let mut sim = Simulation::new(
            SimConfig::ideal(9)
                .drop_probability(0.5)
                .duplicate_probability(0.5),
            vec![Node::default(), Node::default()],
        );
        for i in 0..200 {
            sim.schedule_call(i, pid(0), |_, ctx| ctx.send(pid(1), b"m".to_vec()));
        }
        sim.run_until_idle();
        let m = sim.metrics();
        assert_eq!(m.messages_sent, 200);
        assert!(m.messages_dropped > 50, "dropped {}", m.messages_dropped);
        assert!(m.messages_duplicated > 20);
        assert_eq!(
            m.messages_delivered,
            m.messages_sent - m.messages_dropped + m.messages_duplicated
        );
        assert_eq!(
            sim.actor(pid(1)).received.len() as u64,
            m.messages_delivered
        );
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        let run = |seed| {
            let mut sim = Simulation::new(
                SimConfig::harsh(seed),
                vec![Node::default(), Node::default(), Node::default()],
            );
            for i in 0..50 {
                sim.schedule_call(i * 3, pid((i % 3) as u32), move |_, ctx| {
                    let to = pid(((i + 1) % 3) as u32);
                    ctx.send(to, b"ping".to_vec());
                });
            }
            sim.schedule_crash(40, pid(2));
            sim.schedule_recovery(90, pid(2));
            sim.run_until_idle();
            (sim.fingerprint(), sim.metrics(), sim.now())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).0, run(78).0, "different seeds should diverge");
    }

    #[test]
    fn run_until_stops_at_time() {
        let mut sim = two_nodes(0);
        sim.schedule_call(5, pid(0), |_, ctx| ctx.send(pid(1), b"a".to_vec()));
        sim.schedule_call(100, pid(0), |_, ctx| ctx.send(pid(1), b"b".to_vec()));
        sim.run_until(50);
        assert_eq!(sim.now(), 50);
        assert_eq!(sim.actor(pid(1)).received.len(), 1);
        sim.run_until_idle();
        assert_eq!(sim.actor(pid(1)).received.len(), 2);
    }

    #[test]
    fn run_until_actor_predicate() {
        let mut sim = two_nodes(0);
        sim.schedule_call(5, pid(0), |_, ctx| ctx.send(pid(1), b"a".to_vec()));
        let ok = sim.run_until_actor(pid(1), 1000, |a| !a.received.is_empty());
        assert!(ok);
        assert!(sim.now() <= 10);
        let no = sim.run_until_actor(pid(1), 2000, |a| a.received.len() > 5);
        assert!(!no);
    }

    #[test]
    #[should_panic(expected = "event cap")]
    fn event_cap_catches_runaway_loops() {
        struct Loopy;
        impl Actor for Loopy {
            type Msg = ();
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: ProcessId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _: TimerId) {
                ctx.set_timer(1); // re-arms forever
            }
        }
        let mut sim = Simulation::new(SimConfig::ideal(0), vec![Loopy]);
        sim.set_event_cap(1000);
        sim.schedule_call(0, pid(0), |_, ctx| {
            ctx.set_timer(1);
        });
        sim.run_until_idle();
    }

    #[test]
    fn send_to_unknown_pid_is_suppressed() {
        let mut sim = two_nodes(0);
        sim.schedule_call(0, pid(0), |_, ctx| ctx.send(pid(42), b"void".to_vec()));
        sim.run_until_idle();
        assert_eq!(sim.metrics().messages_suppressed, 1);
    }
}
