//! Property tests for the simulator itself: determinism over arbitrary
//! schedules, fair-loss delivery under retransmission, and fault-event
//! consistency.

use fab_simnet::{Actor, Context, SimConfig, Simulation, TimerId, WireSize};
use fab_timestamp::ProcessId;
use proptest::prelude::*;

/// A tiny wire message: (is_ack, sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Msg(bool, u64);

impl WireSize for Msg {
    fn wire_size(&self) -> usize {
        9
    }
}

/// An actor that retransmits queued numbered messages until each is
/// acknowledged — the minimal fair-loss stop-and-wait client.
struct Retx {
    target: ProcessId,
    queue: std::collections::VecDeque<u64>,
    acked: Vec<u64>,
    received: Vec<u64>,
}

impl Retx {
    fn new(target: ProcessId) -> Self {
        Retx {
            target,
            queue: std::collections::VecDeque::new(),
            acked: Vec::new(),
            received: Vec::new(),
        }
    }

    /// Enqueues `seq` and (re)arms transmission.
    fn submit(&mut self, ctx: &mut Context<'_, Msg>, seq: u64) {
        self.queue.push_back(seq);
        if self.queue.len() == 1 {
            ctx.send(self.target, Msg(false, seq));
            ctx.set_timer(50);
        }
    }
}

impl Actor for Retx {
    type Msg = Msg;

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
        let Msg(is_ack, seq) = msg;
        if is_ack {
            if self.queue.front() == Some(&seq) {
                self.queue.pop_front();
                self.acked.push(seq);
                if let Some(&next) = self.queue.front() {
                    ctx.send(self.target, Msg(false, next));
                    ctx.set_timer(50);
                }
            }
        } else {
            self.received.push(seq);
            ctx.send(from, Msg(true, seq));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerId) {
        if let Some(&seq) = self.queue.front() {
            ctx.send(self.target, Msg(false, seq));
            ctx.set_timer(50);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fair loss + retransmission: every message is eventually delivered
    /// and acknowledged, for any drop rate < 1 and any delay spread.
    #[test]
    fn retransmission_beats_any_lossy_channel(
        seed in any::<u64>(),
        drop_pct in 0u32..90,
        max_delay in 1u64..30,
        count in 1u64..12,
    ) {
        let cfg = SimConfig::ideal(seed)
            .delays(1, max_delay)
            .drop_probability(f64::from(drop_pct) / 100.0);
        let mut sim = Simulation::new(
            cfg,
            vec![Retx::new(ProcessId::new(1)), Retx::new(ProcessId::new(0))],
        );
        for seq in 0..count {
            let at = seq * 1_000;
            sim.schedule_call(at, ProcessId::new(0), move |a, ctx| {
                a.submit(ctx, seq);
            });
        }
        sim.run_until_idle();
        let sender = sim.actor(ProcessId::new(0));
        prop_assert_eq!(sender.acked.len() as u64, count, "all acked");
        let receiver = sim.actor(ProcessId::new(1));
        let mut distinct = receiver.received.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len() as u64, count, "all delivered");
    }

    /// Determinism: identical seeds and schedules yield identical
    /// fingerprints and metrics; different seeds (almost surely) diverge
    /// when randomness matters.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>(), drop_pct in 5u32..50) {
        let run = |s: u64| {
            let cfg = SimConfig::ideal(s)
                .delays(1, 20)
                .drop_probability(f64::from(drop_pct) / 100.0);
            let mut sim = Simulation::new(
                cfg,
                vec![Retx::new(ProcessId::new(1)), Retx::new(ProcessId::new(0))],
            );
            for seq in 0..5u64 {
                sim.schedule_call(seq * 100, ProcessId::new(0), move |a, ctx| {
                    a.submit(ctx, seq);
                });
            }
            sim.run_until_idle();
            (sim.fingerprint(), sim.metrics(), sim.now())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Crash/recovery scheduling is consistent: messages to a crashed
    /// process are suppressed, and the suppressed + dropped + delivered
    /// counts account for every send (minus in-flight none at idle).
    #[test]
    fn metric_conservation(
        seed in any::<u64>(),
        crash_at in 50u64..500,
        up_after in 1u64..200,
    ) {
        let cfg = SimConfig::ideal(seed).delays(1, 5).drop_probability(0.2);
        let mut sim = Simulation::new(
            cfg,
            vec![Retx::new(ProcessId::new(1)), Retx::new(ProcessId::new(0))],
        );
        for seq in 0..6u64 {
            sim.schedule_call(seq * 120, ProcessId::new(0), move |a, ctx| {
                a.submit(ctx, seq);
            });
        }
        sim.schedule_crash(crash_at, ProcessId::new(1));
        sim.schedule_recovery(crash_at + up_after, ProcessId::new(1));
        sim.run_until_idle();
        let m = sim.metrics();
        prop_assert_eq!(
            m.messages_sent + m.messages_duplicated,
            m.messages_delivered + m.messages_dropped + m.messages_suppressed,
            "{:?}",
            m
        );
        // Liveness: once the receiver is back, everything completes.
        prop_assert_eq!(sim.actor(ProcessId::new(0)).acked.len(), 6);
    }
}
